"""Reproduce the paper's data acquisition: scrape, then analyze.

Section 3.1 of the paper built its dataset by listing active probes via
the RIPE Atlas probe-archive API and scraping each probe's monthly
connection-history pages.  This example does the same against the
simulated API: paginate the archive, fetch every month's page, parse the
entries back into a connection log, and verify the analysis over the
scraped data matches the analysis over the in-memory data exactly.

Run with::

    python examples/atlas_scrape.py
"""

from repro.atlas.api import (
    AtlasApi,
    scrape_connection_log,
    scrape_probe_ids,
)
from repro.core.pipeline import AnalysisPipeline, pipeline_for_world
from repro.core.report import render_table2
from repro.experiments.scenarios import small_world
from repro.util.timeutil import DAY


def main() -> None:
    world = small_world(seed=21)
    api = AtlasApi(world.archive, world.connlog)

    probe_ids = scrape_probe_ids(api, page_size=10)
    print("Probe archive lists %d probes (fetched in pages of 10)"
          % len(probe_ids))

    scraped_log = scrape_connection_log(
        api, probe_ids, world.config.start, world.config.end)
    print("Scraped %d connection-log entries across %d probes\n"
          % (scraped_log.entry_count(), len(probe_ids)))

    scraped_results = AnalysisPipeline(
        scraped_log, world.archive, world.kroot, world.uptime,
        world.ip2as, min_connected=4 * DAY).run()
    direct_results = pipeline_for_world(world).run()

    print(render_table2(scraped_results.table2_rows()))
    print()
    if scraped_results.table2_rows() == direct_results.table2_rows():
        print("Scraped and direct analyses agree exactly.")
    else:
        print("WARNING: scraped and direct analyses differ!")


if __name__ == "__main__":
    main()
