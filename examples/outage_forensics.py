"""Forensics walkthrough: why did this probe's address change?

Takes one probe from a small simulated world and replays the paper's
attribution process step by step, printing the evidence at each stage:

1. the connection-log gaps and the address on each side;
2. the k-root ping rounds inside each gap (loss + LTS);
3. any uptime-counter reset (reboot) inside the gap;
4. the resulting classification: network outage, power outage, or none.

Run with::

    python examples/outage_forensics.py
"""

from repro.core.association import GapCause, associate_probe_gaps
from repro.core.pipeline import pipeline_for_world
from repro.core.reboots import detect_reboots
from repro.experiments.scenarios import small_world
from repro.util import timeutil


def main() -> None:
    world = small_world(seed=11)
    results = pipeline_for_world(world).run()

    # Pick the analyzable probe with the most attributed outages.
    def outage_count(pid):
        return sum(1 for e in results.gap_events_by_probe.get(pid, [])
                   if e.cause is not GapCause.NONE)

    probe_id = max(results.gap_events_by_probe, key=outage_count)
    truth = world.truth[probe_id]
    print("Probe %d (ISP: %s)\n" % (probe_id, truth.isp_names[0]))

    entries = results.filter_report.verdicts[probe_id].entries
    series = world.kroot.series(probe_id)
    reboots = detect_reboots(world.uptime.records(probe_id))
    events = associate_probe_gaps(entries, series, reboots)

    shown = 0
    for previous, current, event in zip(entries, entries[1:], events):
        if event.cause is GapCause.NONE and not event.address_changed:
            continue
        shown += 1
        if shown > 8:
            print("... (further gaps elided)")
            break
        print("Gap %s .. %s" % (timeutil.format_log_time(event.gap_start),
                                timeutil.format_log_time(event.gap_end)))
        print("  address %s -> %s%s" % (
            previous.address, current.address,
            "  (CHANGED)" if event.address_changed else ""))
        records = series.records(event.gap_start - 480,
                                 event.gap_end + 480)
        lost = [r for r in records if r.all_lost]
        if lost:
            print("  k-root: %d/%d rounds all-lost, LTS %d..%d s"
                  % (len(lost), len(records), lost[0].lts, lost[-1].lts))
        elif len(records) < (event.gap_end - event.gap_start) // 240:
            print("  k-root: rounds missing (probe was dark)")
        gap_reboots = [r for r in reboots
                       if event.gap_start - 480 <= r.time <= event.gap_end]
        for reboot in gap_reboots:
            print("  uptime reset -> reboot at %s"
                  % timeutil.format_log_time(reboot.time))
        print("  verdict: %s%s\n" % (
            event.cause.value,
            ", ~%.0f min outage" % (event.outage_duration / 60)
            if event.outage_duration else ""))

    stats = results.stats_by_probe.get(probe_id)
    if stats is not None:
        print("Summary: P(change|network outage) = %.2f over %d outages; "
              "P(change|power outage) = %.2f over %d outages"
              % (stats.p_change_given_network, stats.network_outages,
                 stats.p_change_given_power, stats.power_outages))


if __name__ == "__main__":
    main()
