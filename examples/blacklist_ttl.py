"""How long can an IP-based blacklist entry be trusted?

The paper's motivating application: operators blacklist addresses seen
misbehaving, implicitly assuming the address keeps identifying the same
host.  This example runs the pipeline over the paper scenario and derives,
per ISP:

* a recommended blacklist TTL — the ISP's periodic renumbering interval
  when one exists, else the median measured address duration;
* the *escape rate* of prefix-widened blacklists — how often a renumbered
  host lands outside its old BGP prefix, /16 and even /8 (Section 6 shows
  widening to a /8 still fails for a third of changes).

Run with::

    python examples/blacklist_ttl.py [scale]
"""

import sys

from repro.core.periodicity import classify_probe
from repro.experiments.scenarios import paper_results
from repro.util.stats import median
from repro.util.tables import percent, render_table
from repro.util.timeutil import HOUR


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.2
    results = paper_results(scale=scale)
    overall, prefix_rows = results.table7(top=None)
    prefix_by_asn = {row.asn: row for row in prefix_rows}

    rows = []
    for asn in sorted(set(results.asn_by_probe.values())):
        durations = []
        periods = []
        for pid, probe_durations in results.as_level_durations().items():
            if results.asn_by_probe[pid] != asn:
                continue
            durations.extend(probe_durations)
            verdict = classify_probe(pid, probe_durations)
            if verdict.is_periodic:
                periods.append(verdict.period)
        if len(durations) < 10:
            continue
        if periods and len(periods) >= 3:
            ttl = min(periods)
            basis = "periodic"
        else:
            ttl = median(durations)
            basis = "median duration"
        prefix_row = prefix_by_asn.get(asn)
        escape = (percent(prefix_row.pct_slash8)
                  if prefix_row and prefix_row.total_changes else "n/a")
        rows.append([
            results.as_names.get(asn, "AS%d" % asn),
            "%.0f h" % (ttl / HOUR), basis, escape,
        ])

    rows.sort(key=lambda row: float(row[1].split()[0]))
    print(render_table(
        ["ISP", "suggested TTL", "basis", "/8-blacklist escape"],
        rows, title="Blacklist TTL guidance per ISP"))
    print()
    print("Across all ISPs, %s of address changes leave even the /8 — "
          "prefix-widened blacklists cannot contain renumbering."
          % percent(overall.pct_slash8))


if __name__ == "__main__":
    main()
