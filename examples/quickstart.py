"""Quickstart: simulate a small world and run the full analysis pipeline.

Builds a 40-day scenario with three ISPs (a daily PPP renumberer, a
reactive PPP ISP, and a stable DHCP cable ISP) plus a handful of
confounder probes, then runs the paper's pipeline end to end and prints:

* the Table 2-style filtering summary,
* each ISP's dominant address duration,
* one probe's connection log rendered like the paper's Table 1.

Run with::

    python examples/quickstart.py
"""

from repro.core import report
from repro.core.pipeline import pipeline_for_world
from repro.core.timefraction import dominant_duration
from repro.experiments.scenarios import small_world
from repro.sim.world import ProbeRole
from repro.util.timeutil import HOUR


def main() -> None:
    world = small_world(seed=7)
    print("Simulated %d probes, %d connection-log entries\n"
          % (len(world.archive), world.connlog.entry_count()))

    results = pipeline_for_world(world).run()

    print(report.render_table2(results.table2_rows()))
    print()

    print("Dominant address duration per ISP:")
    for profile in world.config.profiles:
        asn = profile.spec.asn
        group = results.as_group_durations(asn)
        found = dominant_duration(list(group.durations))
        if found is None:
            print("  %-14s no measurable durations" % profile.spec.name)
            continue
        duration, fraction = found
        print("  %-14s %6.1f h holds %4.0f%% of address time"
              % (profile.spec.name, duration / HOUR, fraction * 100))
    print()

    periodic_probes = [
        truth.probe_id for truth in world.truth.values()
        if truth.role is ProbeRole.DYNAMIC
        and truth.isp_names[0] == "Daily-DSL"
    ]
    probe_id = periodic_probes[0]
    print("Connection log sample for probe %d (Daily-DSL):" % probe_id)
    print(world.connlog.render_paper_style(probe_id, limit=6))


if __name__ == "__main__":
    main()
