"""Infer each ISP's access technology from observed renumbering behaviour.

Section 5.3 of the paper closes with: *"We expect that this property can
be used as evidence in inferring a device's link type."*  This example
implements that inference: an ISP whose probes renumber periodically or on
outages of any duration behaves like a PPP/Radius plant; one that
preserves addresses through short outages and renumbers mostly after long
ones behaves like DHCP with RFC 2131 preservation.

The simulation's ground-truth access technology is known, so the script
also reports the inference's accuracy.

Run with::

    python examples/isp_policy_survey.py [scale]
"""

import sys
from collections import defaultdict

from repro.core.association import GapCause
from repro.core.periodicity import classify_probe
from repro.experiments.scenarios import paper_results, paper_world
from repro.isp.spec import AccessTechnology
from repro.util.stats import fraction
from repro.util.tables import render_table
from repro.util.timeutil import HOUR


def infer_access(periodic_share: float, short_outage_change: float,
                 outage_samples: int) -> str:
    """Classify an ISP's plant from its observable behaviour."""
    if periodic_share > 0.3:
        return "ppp"
    if outage_samples >= 10 and short_outage_change > 0.5:
        return "ppp"
    if outage_samples >= 10 and short_outage_change < 0.2:
        return "dhcp"
    return "unclear"


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.2
    world = paper_world(scale=scale)
    results = paper_results(scale=scale)
    truth_by_asn = {profile.spec.asn: profile.spec.access
                    for profile in world.config.profiles}

    # Per-AS evidence: share of periodic probes, and how often short
    # (< 1 h) outages changed the address.
    periodic = defaultdict(int)
    changed_probes = defaultdict(int)
    short_total = defaultdict(int)
    short_changed = defaultdict(int)
    for pid, asn in results.asn_by_probe.items():
        durations = results.as_level_durations().get(pid, [])
        changed_probes[asn] += 1
        if durations and classify_probe(pid, durations).is_periodic:
            periodic[asn] += 1
        for event in results.gap_events_by_probe.get(pid, []):
            if event.cause is GapCause.NONE:
                continue
            if event.outage_duration < 1 * HOUR:
                short_total[asn] += 1
                short_changed[asn] += event.address_changed

    rows = []
    correct = total = 0
    for asn in sorted(truth_by_asn):
        if changed_probes.get(asn, 0) < 5:
            continue
        periodic_share = fraction(periodic[asn], changed_probes[asn])
        short_change = fraction(short_changed[asn], short_total[asn])
        verdict = infer_access(periodic_share, short_change,
                               short_total[asn])
        actual = truth_by_asn[asn].value
        if verdict != "unclear":
            total += 1
            correct += verdict == actual
        rows.append([
            results.as_names.get(asn, "AS%d" % asn),
            "%.0f%%" % (periodic_share * 100),
            "%.0f%%" % (short_change * 100),
            verdict, actual,
            "ok" if verdict == actual else
            ("?" if verdict == "unclear" else "WRONG"),
        ])

    print(render_table(
        ["ISP", "periodic probes", "short-outage changes", "inferred",
         "actual", ""],
        rows, title="Access-technology inference from renumbering behaviour"))
    print()
    if total:
        print("Accuracy on confident verdicts: %d/%d (%.0f%%)"
              % (correct, total, 100 * correct / total))


if __name__ == "__main__":
    main()
