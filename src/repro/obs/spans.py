"""Lightweight span tracing for the execution pipeline.

A *span* is one named, timed region of work — a stage, a shard task, a
whole run — recorded into a process-local :class:`SpanCollector`.  The
collector is deliberately trivial: an append-only list behind a
``getpid()`` guard, so it is safe under both ``fork`` (a forked worker
inherits the parent's module state; the pid check discards it on first
access, so worker spans never duplicate parent spans) and ``spawn``
(each worker starts with an empty module and builds its own collector).

Worker processes do not share memory with the driver, so their spans are
*shipped*: a shard task calls :func:`drain_spans` at the end and returns
the list with its payload, and the executor absorbs the shipped spans
into the parent collector in shard order — a deterministic merge that
does not depend on worker scheduling.

Timestamps are :func:`time.perf_counter` readings: monotonic, highest
available resolution, and on the platforms we shard on (Linux
``CLOCK_MONOTONIC``) a single system-wide timebase, so parent and worker
spans interleave correctly on one trace timeline.  Spans are
observability output only — nothing derived from them may feed an
analysis result, which is exactly the boundary RPR006 enforces (any
stage function calling into this module stops inferring PURE).
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from typing import Iterable, Iterator


@dataclass(frozen=True)
class Span:
    """One completed timed region.

    ``start``/``end`` are ``perf_counter`` readings in seconds; ``attrs``
    is a sorted tuple of key/value pairs (kept as a tuple so spans are
    hashable and safely shared after being shipped between processes).

    Spans cross the worker pickle boundary inside ``ShardResult``, so
    the field layout is a wire contract (RPR010).
    """

    __wire_contract__ = "obs-span"

    name: str
    category: str
    start: float
    end: float
    pid: int
    attrs: tuple[tuple[str, object], ...] = ()

    @property
    def seconds(self) -> float:
        """Wall-clock duration of the span."""
        return self.end - self.start

    def attr(self, key: str, default: object = None) -> object:
        """Look up one attribute value."""
        for name, value in self.attrs:
            if name == key:
                return value
        return default

    def with_attrs(self, **attrs: object) -> "Span":
        """A copy with extra attributes (used to tag shipped spans)."""
        merged = dict(self.attrs)
        merged.update(attrs)
        return replace(self, attrs=tuple(sorted(merged.items())))


class SpanHandle:
    """Mutable attribute sink for a span that is still open.

    ``span()`` yields one so callers can attach facts they only learn
    mid-region (a cache hit, a shard count) before the span is sealed.
    """

    def __init__(self, attrs: dict[str, object]) -> None:
        self.attrs = attrs

    def set(self, **attrs: object) -> None:
        """Attach attributes to the span being recorded."""
        # A handle never leaves the ``with span(...)`` body that created
        # it, so only the thread that opened the span mutates it.
        self.attrs.update(attrs)  # repro: noqa[RPR011] -- handle is confined to the opening thread's with-block; it is sealed into an immutable Span before crossing threads


@dataclass
class SpanCollector:
    """Process-local span sink (create via :func:`collector`).

    Coordinator handler threads and the driver's main thread record
    into the same collector, so every ``_spans`` access holds ``_lock``.
    """

    pid: int = field(default_factory=os.getpid)
    _spans: list[Span] = field(default_factory=list)
    _lock: threading.Lock = field(default_factory=threading.Lock,
                                  repr=False, compare=False)

    def record(self, span: Span) -> None:
        """Append one completed span."""
        with self._lock:
            self._spans.append(span)

    def absorb(self, spans: Iterable[Span]) -> None:
        """Append spans shipped from elsewhere (a worker, a sub-run)."""
        with self._lock:
            self._spans.extend(spans)

    def spans(self) -> tuple[Span, ...]:
        """Everything recorded so far, in record order."""
        with self._lock:
            return tuple(self._spans)

    def drain(self) -> list[Span]:
        """Return all recorded spans and clear the collector."""
        with self._lock:
            drained = list(self._spans)
            self._spans.clear()
            return drained


_collector: SpanCollector | None = None
_collector_lock = threading.Lock()


def collector() -> SpanCollector:
    """The process-local collector, fork/spawn-safe.

    A stale collector (inherited through ``fork``, so its pid differs
    from ours) is replaced with a fresh one rather than reused — the
    parent keeps its own copy, and the child must not re-ship spans the
    parent already holds.
    """
    global _collector
    with _collector_lock:
        if _collector is None or _collector.pid != os.getpid():
            _collector = SpanCollector()
        return _collector


@contextmanager
def span(name: str, category: str = "stage",
         **attrs: object) -> Iterator[SpanHandle]:
    """Record a :class:`Span` around a ``with`` body.

    The span is sealed and recorded when the body exits, whether
    normally or by exception; attributes passed here and set on the
    yielded handle are merged and sorted.
    """
    handle = SpanHandle(dict(attrs))
    started = time.perf_counter()
    try:
        yield handle
    finally:
        collector().record(Span(
            name=name, category=category, start=started,
            end=time.perf_counter(), pid=os.getpid(),
            attrs=tuple(sorted(handle.attrs.items()))))


def current_spans() -> tuple[Span, ...]:
    """All spans recorded in this process so far."""
    return collector().spans()


def drain_spans() -> list[Span]:
    """Return and clear this process's spans (worker-side shipping)."""
    return collector().drain()


def absorb_spans(spans: Iterable[Span]) -> None:
    """Merge shipped spans into this process's collector."""
    collector().absorb(spans)
