"""Human-readable summary of one run's trace file.

``repro-obs report trace.json`` renders, from the spans and metrics a
traced run exported:

* per-stage wall time with execution mode and share of total;
* shard skew per fan-out stage (min/mean/max shard seconds — a high
  max/mean ratio means one shard straggled and capped the speedup);
* cache effectiveness (hits, misses, stores, evictions, corrupt-entry
  heals, bytes written);
* distributed-run accounting when the trace came from ``repro-dist``
  (workers seen, leases granted and reassigned, per-worker lease skew,
  bytes over the wire);
* ingest accounting (parsed / repaired / quarantined per dataset, with
  the loss fraction) and injected-fault counts when present.

Everything here is pure rendering over the loaded payload; the numbers
were fixed when the trace was written.
"""

from __future__ import annotations

_MICROSECONDS = 1e6


def _stage_lines(events: list[dict]) -> list[str]:
    stages = [event for event in events if event.get("cat") == "stage"]
    if not stages:
        return ["(no stage spans recorded)"]
    total = sum(event["dur"] for event in stages) or 1.0
    lines = ["%-8s  %9s  %6s  %s" % ("stage", "seconds", "share", "mode")]
    for event in stages:
        args = event.get("args", {})
        mode = ("cached" if args.get("cached")
                else "sharded" if args.get("sharded") else "inline")
        lines.append("%-8s  %9.3f  %5.1f%%  %s"
                     % (event["name"], event["dur"] / _MICROSECONDS,
                        100.0 * event["dur"] / total, mode))
    return lines


def _skew_lines(events: list[dict]) -> list[str]:
    by_stage: dict[str, list[float]] = {}
    for event in events:
        if event.get("cat") != "shard":
            continue
        stage = str(event.get("args", {}).get("stage", event["name"]))
        by_stage.setdefault(stage, []).append(
            event["dur"] / _MICROSECONDS)
    if not by_stage:
        return []
    lines = ["%-8s  %6s  %9s  %9s  %9s  %s"
             % ("stage", "shards", "min s", "mean s", "max s", "skew")]
    for stage, durations in by_stage.items():
        mean = sum(durations) / len(durations)
        skew = (max(durations) / mean) if mean else 1.0
        lines.append("%-8s  %6d  %9.3f  %9.3f  %9.3f  %.2fx"
                     % (stage, len(durations), min(durations), mean,
                        max(durations), skew))
    return lines


def _cache_lines(counters: dict[str, float],
                 gauges: dict[str, float]) -> list[str]:
    if not any(name.startswith("cache.") for name in counters):
        return []
    hits = counters.get("cache.hits", 0)
    misses = counters.get("cache.misses", 0)
    looked = hits + misses
    rate = (100.0 * hits / looked) if looked else 0.0
    lines = ["hits %d  misses %d  (%.1f%% hit rate)  stores %d"
             % (hits, misses, rate, counters.get("cache.stores", 0)),
             "evictions %d  corrupt-entry heals %d  bytes stored %d"
             % (counters.get("cache.evictions", 0),
                counters.get("cache.heals", 0),
                counters.get("cache.bytes_stored", 0))]
    if "cache.bytes_on_disk" in gauges:
        lines.append("bytes on disk %d" % gauges["cache.bytes_on_disk"])
    return lines


def _ingest_lines(counters: dict[str, float]) -> list[str]:
    datasets: dict[str, dict[str, float]] = {}
    for name, value in counters.items():
        parts = name.split(".")
        if len(parts) == 3 and parts[0] == "ingest":
            datasets.setdefault(parts[2], {})[parts[1]] = value
    if not datasets:
        return []
    lines = ["%-12s %8s %9s %12s %7s"
             % ("dataset", "parsed", "repaired", "quarantined", "loss")]
    for dataset in sorted(datasets):
        row = datasets[dataset]
        parsed = row.get("parsed", 0)
        repaired = row.get("repaired", 0)
        quarantined = row.get("quarantined", 0)
        total = parsed + repaired + quarantined
        loss = (100.0 * quarantined / total) if total else 0.0
        lines.append("%-12s %8d %9d %12d %6.2f%%"
                     % (dataset, parsed, repaired, quarantined, loss))
    return lines


def _resilience_lines(events: list[dict], counters: dict[str, float],
                      gauges: dict[str, float]) -> list[str]:
    """Supervision account: retries, reassignments, quarantine, resume.

    Fed by the ``runtime.*`` counters the supervisor emits plus its
    ``supervisor``-category spans (one per supervised fan-out stage).
    """
    supervised = [event for event in events
                  if event.get("cat") == "supervisor"]
    names = ("runtime.retries", "runtime.reassignments",
             "runtime.quarantined_shards", "runtime.pool.respawns",
             "runtime.checkpoints.loaded", "runtime.checkpoints.stored")
    if not supervised and not any(name in counters for name in names):
        return []
    lines = ["retries %d  reassignments %d  pool respawns %d"
             % (counters.get("runtime.retries", 0),
                counters.get("runtime.reassignments", 0),
                counters.get("runtime.pool.respawns", 0)),
             "checkpoints stored %d  resumed %d"
             % (counters.get("runtime.checkpoints.stored", 0),
                counters.get("runtime.checkpoints.loaded", 0))]
    failures = {name.split(".", 3)[3]: value
                for name, value in counters.items()
                if name.startswith("runtime.shard.failures.")}
    if failures:
        lines.append("shard failures  " + "  ".join(
            "%s %d" % (cause, failures[cause])
            for cause in sorted(failures)))
    quarantined = counters.get("runtime.quarantined_shards", 0)
    if quarantined or gauges.get("runtime.degraded"):
        lines.append("DEGRADED: %d shard(s) quarantined, %d probe(s) lost"
                     % (quarantined,
                        gauges.get("runtime.quarantined_probes", 0)))
    for event in supervised:
        args = event.get("args", {})
        lines.append("%-18s  shards %d  retries %d  reassigned %d  "
                     "abandoned %d"
                     % (event.get("name", "?"), args.get("shards", 0),
                        args.get("retries", 0),
                        args.get("reassignments", 0),
                        args.get("abandoned", 0)))
    return lines


def _dist_lines(events: list[dict],
                counters: dict[str, float]) -> list[str]:
    """Distributed-run account: workers, leases, skew, wire traffic.

    Fed by the ``dist.*`` counters the coordinator emits plus its
    ``dist``-category spans (one per stage served over the wire).
    """
    served = [event for event in events if event.get("cat") == "dist"]
    if not served and not any(name.startswith("dist.")
                              for name in counters):
        return []
    lines = ["workers seen %d  leases granted %d  reassignments %d"
             % (counters.get("dist.workers.seen", 0),
                counters.get("dist.leases.granted", 0),
                counters.get("dist.leases.reassigned", 0)),
             "bytes sent %d  bytes received %d"
             % (counters.get("dist.bytes.sent", 0),
                counters.get("dist.bytes.received", 0))]
    anomalies = []
    for name, label in (("dist.results.duplicate", "duplicate results"),
                        ("dist.results.late", "late results"),
                        ("dist.results.stray", "stray results"),
                        ("dist.results.cache_hits", "cache-hit leases"),
                        ("dist.workers.disconnects", "disconnects")):
        if counters.get(name):
            anomalies.append("%s %d" % (label, counters[name]))
    if anomalies:
        lines.append("  ".join(anomalies))
    per_worker = {name.split(".", 3)[3]: value
                  for name, value in counters.items()
                  if name.startswith("dist.leases.worker.")}
    if per_worker:
        granted = sum(per_worker.values()) or 1.0
        mean = granted / len(per_worker)
        lines.append("lease skew      " + "  ".join(
            "%s %d (%.2fx)" % (worker, per_worker[worker],
                               per_worker[worker] / mean)
            for worker in sorted(per_worker)))
    for event in served:
        args = event.get("args", {})
        lines.append("%-18s  leases %d  retries %d  reassigned %d  "
                     "abandoned %d"
                     % (event.get("name", "?"), args.get("leases", 0),
                        args.get("retries", 0),
                        args.get("reassignments", 0),
                        args.get("abandoned", 0)))
    return lines


def _fault_lines(counters: dict[str, float]) -> list[str]:
    kinds = {name.split(".", 2)[2]: value
             for name, value in counters.items()
             if name.startswith("faults.injected.")}
    if not kinds:
        return []
    return ["%-24s %d" % (kind, kinds[kind]) for kind in sorted(kinds)]


def _run_lines(gauges: dict[str, float],
               meta: dict[str, object]) -> list[str]:
    lines: list[str] = []
    if "runtime.jobs.effective" in gauges:
        jobs = int(gauges["runtime.jobs.effective"])
        cpus = int(gauges.get("runtime.cpu_count", 0))
        line = "jobs %d" % jobs
        if cpus:
            line += " of %d cpu%s" % (cpus, "" if cpus == 1 else "s")
        if gauges.get("runtime.oversubscribed"):
            line += "  OVERSUBSCRIBED (timings reflect time-slicing)"
        lines.append(line)
    for key in ("start_method", "fingerprint", "results_digest"):
        if meta.get(key):
            lines.append("%s %s" % (key.replace("_", " "), meta[key]))
    return lines


def render_report(payload: dict) -> str:
    """The full ``repro-obs report`` text for one loaded trace."""
    events = [event for event in payload.get("traceEvents", [])
              if isinstance(event, dict)]
    stores = payload.get("metrics", {})
    counters = dict(stores.get("counters", {}))
    gauges = dict(stores.get("gauges", {}))
    meta = dict(payload.get("meta", {}))

    sections: list[tuple[str, list[str]]] = [
        ("run", _run_lines(gauges, meta)),
        ("stages", _stage_lines(events)),
        ("shard skew", _skew_lines(events)),
        ("cache", _cache_lines(counters, gauges)),
        ("resilience", _resilience_lines(events, counters, gauges)),
        ("dist", _dist_lines(events, counters)),
        ("ingest", _ingest_lines(counters)),
        ("faults injected", _fault_lines(counters)),
    ]
    blocks = []
    for title, lines in sections:
        if not lines:
            continue
        blocks.append("\n".join(["== %s" % title] + lines))
    return "\n\n".join(blocks) if blocks else "(empty trace)"
