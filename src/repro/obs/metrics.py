"""Process-local counter/gauge metrics registry.

Counters accumulate monotonically (cache hits, quarantined records,
injected faults); gauges record last-written values (effective job
count, bytes on disk).  Like the span collector, the registry lives
behind a ``getpid()`` guard so a forked worker starts from zero instead
of double-counting inherited parent state, and worker registries are
*shipped* back with shard results (:meth:`MetricsRegistry.drain`) and
merged into the parent with :meth:`MetricsRegistry.absorb` — counters
add, gauges last-write-wins in shard order, so the merge is
deterministic.

The lifting helpers at the bottom (:func:`record_ingest`,
:func:`record_cache`) translate the pipeline's existing accounting
objects (``IngestReport`` rows, ``CacheStats``) into the metric
namespace.  They duck-type their arguments on purpose: ``repro.obs`` is
a leaf layer and must not import the layers it observes.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass, field


@dataclass
class MetricsRegistry:
    """Flat name -> value stores for counters and gauges.

    Counted from coordinator handler threads and worker serve loops
    alike, so every store access holds ``_lock`` (an RLock: ``drain``
    re-enters through ``snapshot``).
    """

    pid: int = field(default_factory=os.getpid)
    _counters: dict[str, float] = field(default_factory=dict)
    _gauges: dict[str, float] = field(default_factory=dict)
    _lock: threading.RLock = field(default_factory=threading.RLock,
                                   repr=False, compare=False)

    def count(self, name: str, amount: float = 1) -> None:
        """Add ``amount`` to a counter (created at zero)."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + amount

    def gauge(self, name: str, value: float) -> None:
        """Set a gauge to ``value`` (last write wins)."""
        with self._lock:
            self._gauges[name] = float(value)

    def counters(self) -> dict[str, float]:
        """Copy of the counter store."""
        with self._lock:
            return dict(self._counters)

    def gauges(self) -> dict[str, float]:
        """Copy of the gauge store."""
        with self._lock:
            return dict(self._gauges)

    def snapshot(self) -> dict[str, dict[str, float]]:
        """JSON-friendly view of both stores (sorted for stable output)."""
        with self._lock:
            return {
                "counters": {name: self._counters[name]
                             for name in sorted(self._counters)},
                "gauges": {name: self._gauges[name]
                           for name in sorted(self._gauges)},
            }

    def drain(self) -> dict[str, dict[str, float]]:
        """Snapshot then clear (worker-side shipping)."""
        with self._lock:
            snapshot = self.snapshot()
            self._counters.clear()
            self._gauges.clear()
            return snapshot

    def absorb(self, snapshot: dict[str, dict[str, float]]) -> None:
        """Merge a shipped snapshot: counters add, gauges overwrite."""
        for name, value in snapshot.get("counters", {}).items():
            self.count(name, value)
        for name, value in snapshot.get("gauges", {}).items():
            self.gauge(name, value)


_registry: MetricsRegistry | None = None
_registry_lock = threading.Lock()


def metrics() -> MetricsRegistry:
    """The process-local registry, fork/spawn-safe (see module doc)."""
    global _registry
    with _registry_lock:
        if _registry is None or _registry.pid != os.getpid():
            _registry = MetricsRegistry()
        return _registry


def count(name: str, amount: float = 1) -> None:
    """Add to a counter in the process registry."""
    metrics().count(name, amount)


def gauge(name: str, value: float) -> None:
    """Set a gauge in the process registry."""
    metrics().gauge(name, value)


def metrics_snapshot() -> dict[str, dict[str, float]]:
    """Snapshot of the process registry."""
    return metrics().snapshot()


# -- lifting: existing accounting objects -> metric namespace ---------------

def record_ingest(report) -> None:
    """Mirror an ``IngestReport``'s per-dataset accounting into counters.

    Expects the report to expose ``datasets()`` rows with ``name`` /
    ``parsed`` / ``repaired`` / ``quarantined`` — duck-typed so this
    leaf layer needs no import of :mod:`repro.util.ingest`.
    """
    for ingest in report.datasets():
        count("ingest.parsed.%s" % ingest.name, ingest.parsed)
        count("ingest.repaired.%s" % ingest.name, ingest.repaired)
        count("ingest.quarantined.%s" % ingest.name, ingest.quarantined)


def record_cache(stats, bytes_on_disk: float | None = None) -> None:
    """Mirror an artifact-cache ``CacheStats`` into counters.

    ``heals`` counts corrupt entries the cache deleted and treated as
    misses; ``bytes_stored`` is cumulative artifact bytes written by
    this handle.
    """
    count("cache.hits", stats.hits)
    count("cache.misses", stats.misses)
    count("cache.stores", stats.stores)
    count("cache.evictions", stats.evicted)
    count("cache.heals", stats.healed)
    count("cache.bytes_stored", stats.bytes_stored)
    if bytes_on_disk is not None:
        gauge("cache.bytes_on_disk", bytes_on_disk)
