"""repro.obs — observability: spans, metrics, trace export, run reports.

A leaf layer (rank 1, above only ``errors``) that every other layer may
import, providing:

* :mod:`repro.obs.spans` — a lightweight span/trace API with a
  process-local, fork/spawn-safe collector; worker spans are shipped
  back with shard results and merged deterministically;
* :mod:`repro.obs.metrics` — a counter/gauge registry plus lifting
  helpers for the pipeline's existing accounting objects (ingest
  reports, cache stats);
* :mod:`repro.obs.trace` — Chrome ``trace_event`` JSON export and
  schema validation (``repro-run --trace out.json``);
* :mod:`repro.obs.report` / :mod:`repro.obs.cli` — the ``repro-obs``
  CLI that summarizes a trace: per-stage wall time, shard skew, cache
  effectiveness, ingest losses.

The boundary rule (DESIGN.md §11): instrumentation lives at the
executor/driver boundary, never inside the pure per-probe kernels.
Everything here is deliberately impure (clocks, process state), and
repro-lint's RPR006 enforces the boundary — a stage function that grows
a call into this package stops inferring PURE and is reported with the
witness chain ending at the clock read.  For the same reason ``obs`` is
deliberately absent from ``CODE_VERSION_PACKAGES``: its code cannot
influence analysis results, so editing it must not invalidate cached
artifacts.
"""

from repro.obs.metrics import (
    MetricsRegistry,
    count,
    gauge,
    metrics,
    metrics_snapshot,
    record_cache,
    record_ingest,
)
from repro.obs.report import render_report
from repro.obs.spans import (
    Span,
    SpanCollector,
    absorb_spans,
    collector,
    current_spans,
    drain_spans,
    span,
)
from repro.obs.trace import (
    TRACE_SCHEMA,
    load_trace,
    trace_payload,
    validate_trace,
    write_trace,
)

__all__ = [
    "MetricsRegistry",
    "Span",
    "SpanCollector",
    "TRACE_SCHEMA",
    "absorb_spans",
    "collector",
    "count",
    "current_spans",
    "drain_spans",
    "gauge",
    "load_trace",
    "metrics",
    "metrics_snapshot",
    "record_cache",
    "record_ingest",
    "render_report",
    "span",
    "trace_payload",
    "validate_trace",
    "write_trace",
]
