"""``repro-obs``: inspect trace files written by ``repro-run --trace``.

Usage::

    repro-run --data bundle/ --jobs 2 --trace trace.json
    repro-obs report trace.json     # per-stage timing, skew, cache, ingest
    repro-obs validate trace.json   # schema gate (CI)
"""

from __future__ import annotations

import argparse
import sys

from repro.errors import ReproError
from repro.obs.report import render_report
from repro.obs.trace import load_trace


def main(argv: list[str] | None = None) -> int:
    """Validate or summarize one trace file."""
    parser = argparse.ArgumentParser(
        prog="repro-obs",
        description="Summarize or validate the observability trace "
                    "(spans + metrics) a traced repro-run exported")
    commands = parser.add_subparsers(dest="command", required=True)
    for name, help_text in (
            ("report", "render the human-readable run summary"),
            ("validate", "check the trace against the schema and exit")):
        sub = commands.add_parser(name, help=help_text)
        sub.add_argument("trace", help="trace JSON written by --trace")
    args = parser.parse_args(argv)

    try:
        payload = load_trace(args.trace)
    except (OSError, ReproError) as error:
        print(error, file=sys.stderr)
        return 1
    if args.command == "validate":
        print("%s: valid (%d events, %d counters, %d gauges)"
              % (args.trace, len(payload["traceEvents"]),
                 len(payload["metrics"].get("counters", {})),
                 len(payload["metrics"].get("gauges", {}))))
        return 0
    print(render_report(payload))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
