"""Chrome ``trace_event`` export and schema validation.

The trace file is one JSON object in the Trace Event Format's "object"
flavor, loadable by ``chrome://tracing`` / Perfetto, plus two extension
keys those viewers ignore::

    {
      "schema": "repro-obs-trace-1",
      "displayTimeUnit": "ms",
      "traceEvents": [ {"name", "cat", "ph": "X", "ts", "dur",
                        "pid", "tid", "args"}, ... ],
      "metrics": {"counters": {...}, "gauges": {...}},
      "meta": {"jobs": ..., "start_method": ..., ...}
    }

Every event is a complete ("X") event; ``ts``/``dur`` are microseconds,
with ``ts`` rebased so the earliest span starts at zero (perf-counter
readings have an undefined epoch).  ``repro-obs report`` consumes the
same file, so the trace is the single on-disk artifact of a run's
observability.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable

from repro.errors import ObservabilityError
from repro.obs.metrics import metrics_snapshot
from repro.obs.spans import Span, current_spans

#: Schema tag written into (and required from) every trace file.
TRACE_SCHEMA = "repro-obs-trace-1"

_MICROSECONDS = 1e6

#: Fields every trace event must carry, with the types we accept.
_EVENT_FIELDS: tuple[tuple[str, type | tuple[type, ...]], ...] = (
    ("name", str),
    ("cat", str),
    ("ph", str),
    ("ts", (int, float)),
    ("dur", (int, float)),
    ("pid", int),
    ("tid", int),
    ("args", dict),
)

#: The trace-file schema is consumed by external tooling (Perfetto, the
#: test suite's validator), so its tag and event layout are a wire
#: contract (RPR010): changing either requires regenerating
#: ``wire-contracts.json`` with a version bump.
__wire_contract__ = {"obs-trace": ("TRACE_SCHEMA", "_EVENT_FIELDS")}


def trace_events(spans: Iterable[Span]) -> list[dict[str, object]]:
    """Spans as complete trace events, rebased to the earliest start."""
    spans = list(spans)
    if not spans:
        return []
    origin = min(span.start for span in spans)
    return [{
        "name": span.name,
        "cat": span.category,
        "ph": "X",
        "ts": round((span.start - origin) * _MICROSECONDS, 1),
        "dur": round(span.seconds * _MICROSECONDS, 1),
        "pid": span.pid,
        "tid": span.pid,
        "args": dict(span.attrs),
    } for span in spans]


def trace_payload(spans: Iterable[Span],
                  snapshot: dict[str, dict[str, float]],
                  meta: dict[str, object] | None = None
                  ) -> dict[str, object]:
    """Assemble the full trace-file object."""
    return {
        "schema": TRACE_SCHEMA,
        "displayTimeUnit": "ms",
        "traceEvents": trace_events(spans),
        "metrics": snapshot,
        "meta": dict(meta or {}),
    }


def write_trace(path: str | Path,
                spans: Iterable[Span] | None = None,
                snapshot: dict[str, dict[str, float]] | None = None,
                meta: dict[str, object] | None = None) -> dict[str, object]:
    """Write the current process's spans and metrics as a trace file.

    Returns the payload written, for callers that also want to render or
    inspect it.
    """
    payload = trace_payload(
        current_spans() if spans is None else spans,
        metrics_snapshot() if snapshot is None else snapshot,
        meta)
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True)
                          + "\n")
    return payload


def load_trace(path: str | Path) -> dict[str, object]:
    """Read and validate a trace file written by :func:`write_trace`."""
    try:
        payload = json.loads(Path(path).read_text())
    except json.JSONDecodeError as error:
        raise ObservabilityError(
            "%s is not valid JSON: %s" % (path, error)) from error
    validate_trace(payload)
    return payload


def validate_trace(payload: object) -> None:
    """Check a parsed trace against the schema; raise on violation.

    Raises :class:`~repro.errors.ObservabilityError` naming the first
    offending element, so CI's schema gate produces a pointed message
    rather than a diff of two JSON blobs.
    """
    if not isinstance(payload, dict):
        raise ObservabilityError("trace payload must be a JSON object, got %s"
                                 % type(payload).__name__)
    schema = payload.get("schema")
    if schema != TRACE_SCHEMA:
        raise ObservabilityError("unknown trace schema %r (expected %r)"
                                 % (schema, TRACE_SCHEMA))
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        raise ObservabilityError("traceEvents must be a list")
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            raise ObservabilityError("traceEvents[%d] is not an object"
                                     % index)
        for name, types in _EVENT_FIELDS:
            if name not in event:
                raise ObservabilityError(
                    "traceEvents[%d] is missing %r" % (index, name))
            if not isinstance(event[name], types) or isinstance(
                    event[name], bool):
                raise ObservabilityError(
                    "traceEvents[%d].%s has type %s"
                    % (index, name, type(event[name]).__name__))
        if event["ph"] != "X":
            raise ObservabilityError(
                "traceEvents[%d].ph must be 'X' (complete event), got %r"
                % (index, event["ph"]))
        if event["ts"] < 0 or event["dur"] < 0:
            raise ObservabilityError(
                "traceEvents[%d] has negative ts/dur" % index)
    stores = payload.get("metrics")
    if not isinstance(stores, dict):
        raise ObservabilityError("metrics must be an object")
    for kind in ("counters", "gauges"):
        values = stores.get(kind, {})
        if not isinstance(values, dict):
            raise ObservabilityError("metrics.%s must be an object" % kind)
        for name, value in values.items():
            if isinstance(value, bool) or not isinstance(value,
                                                         (int, float)):
                raise ObservabilityError(
                    "metrics.%s[%r] must be numeric, got %s"
                    % (kind, name, type(value).__name__))
    if not isinstance(payload.get("meta", {}), dict):
        raise ObservabilityError("meta must be an object")
