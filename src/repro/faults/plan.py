"""Apply a configurable corruption budget to an on-disk bundle.

:class:`FaultPlan` is a frozen description of *how much* of each fault
kind to inject; :meth:`FaultPlan.apply` corrupts a bundle directory in
place, deterministically from the plan's seed, and returns a
:class:`FaultReport` that accounts every injected fault together with
the pre-corruption record counts — exactly the bookkeeping the
fault-injection suite needs to reconcile an
:class:`~repro.util.ingest.IngestReport` against the damage.

Rates are fractions of eligible record lines (``0.05`` corrupts ~5 % of
lines with that fault); structural faults (missing k-root series,
missing pfx2as months, missing bundle files) are absolute counts.  The
injected target sets are mutually disjoint per file, so each fault's
effect on ingest accounting is independent and exactly predictable.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from pathlib import Path

from repro import obs
from repro.faults.injectors import (
    FaultKind,
    InjectedFault,
    drop_kroot_series,
    duplicate_lines,
    garble_lines,
    garble_uptime_values,
    malform_kroot_series,
    same_probe_adjacent_pairs,
    swap_adjacent_pairs,
    truncate_lines,
    wrap_uptime_counters,
)
from repro.util.rng import substream

#: Bundle files eligible for BUNDLE_MISSING_FILE, with their dataset
#: label (meta.json is excluded: without it no load can even start).
_DROPPABLE = {
    "archive.tsv": "archive",
    "connlog.tsv": "connlog",
    "uptime.tsv": "uptime",
    "kroot.json": "kroot",
}


def _dataset_of(fault: InjectedFault) -> str:
    """Dataset label a fault's record delta applies to."""
    if fault.kind is FaultKind.BUNDLE_MISSING_FILE:
        return _DROPPABLE[Path(fault.target).name]
    return fault.kind.value.split("-")[0]


@dataclass
class FaultReport:
    """Everything a plan injected, plus pre-corruption record counts."""

    seed: int
    #: Record lines per dataset before any corruption was applied.
    written: dict[str, int] = field(default_factory=dict)
    faults: list[InjectedFault] = field(default_factory=list)

    def count(self, kind: FaultKind) -> int:
        """How many faults of one kind were injected."""
        return sum(1 for fault in self.faults if fault.kind is kind)

    def records_delta(self, dataset: str) -> int:
        """Net record-line change the plan caused for one dataset."""
        return sum(fault.records_delta for fault in self.faults
                   if _dataset_of(fault) == dataset)

    def expected_records(self, dataset: str) -> int:
        """Record lines a reader should encounter after corruption.

        This is the right-hand side of the reconciliation invariant:
        ``parsed + repaired + quarantined == written + injected delta``.
        """
        return self.written.get(dataset, 0) + self.records_delta(dataset)

    def render(self) -> str:
        """Human-readable fault listing."""
        lines = ["injected %d faults (seed %d):"
                 % (len(self.faults), self.seed)]
        for fault in self.faults:
            location = fault.target if fault.line is None else (
                "%s:%d" % (fault.target, fault.line))
            lines.append("  %-24s %s: %s"
                         % (fault.kind.value, location, fault.detail))
        return "\n".join(lines)

    def to_dict(self) -> dict[str, object]:
        """JSON-friendly representation for ``repro-faults --json``."""
        return {
            "seed": self.seed,
            "written": dict(self.written),
            "faults": [{
                "kind": fault.kind.value,
                "target": fault.target,
                "line": fault.line,
                "detail": fault.detail,
                "records_delta": fault.records_delta,
            } for fault in self.faults],
        }


def _record_indices(lines: list[str]) -> list[int]:
    """Indices of record lines (skipping blanks and comments)."""
    return [index for index, line in enumerate(lines)
            if line.strip() and not line.strip().startswith("#")]


def _budget(rate: float, population: int) -> int:
    """How many lines a fractional rate corrupts."""
    if rate < 0:
        raise ValueError("negative fault rate %r" % (rate,))
    return min(population, int(round(rate * population)))


def _take(candidates: list[int], count: int, used: set[int],
          rng: random.Random) -> list[int]:
    """Sample ``count`` indices disjoint from ``used``, marking them."""
    free = [index for index in candidates if index not in used]
    chosen = sorted(rng.sample(free, min(count, len(free))))
    used.update(chosen)
    return chosen


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic corruption budget for one bundle directory."""

    seed: int
    connlog_garbled: float = 0.0
    connlog_truncated: float = 0.0
    connlog_duplicated: float = 0.0
    connlog_out_of_order: float = 0.0
    uptime_wrap: float = 0.0
    uptime_garbage: float = 0.0
    kroot_missing_series: int = 0
    kroot_malformed_series: int = 0
    pfx2as_missing_months: int = 0
    pfx2as_bad_lines: float = 0.0
    drop_files: tuple[str, ...] = ()

    @classmethod
    def uniform(cls, seed: int, rate: float) -> "FaultPlan":
        """Every line-level fault at one rate plus one structural gap each."""
        return cls(
            seed=seed,
            connlog_garbled=rate, connlog_truncated=rate,
            connlog_duplicated=rate, connlog_out_of_order=rate,
            uptime_wrap=rate, uptime_garbage=rate,
            kroot_missing_series=1, kroot_malformed_series=1,
            pfx2as_missing_months=1, pfx2as_bad_lines=rate,
        )

    # -- application -------------------------------------------------------

    def apply(self, directory: str | Path) -> FaultReport:
        """Corrupt the bundle in place; returns the fault accounting."""
        root = Path(directory)
        report = FaultReport(seed=self.seed)
        self._measure_written(root, report)
        self._corrupt_connlog(root, report)
        self._corrupt_uptime(root, report)
        self._corrupt_kroot(root, report)
        self._corrupt_pfx2as(root, report)
        self._drop_files(root, report)
        for fault in report.faults:
            obs.count("faults.injected.%s" % fault.kind.value)
        return report

    def _measure_written(self, root: Path, report: FaultReport) -> None:
        """Count pre-corruption record lines per dataset."""
        for name, dataset in (("archive.tsv", "archive"),
                              ("connlog.tsv", "connlog"),
                              ("uptime.tsv", "uptime")):
            path = root / name
            lines = path.read_text().splitlines() if path.exists() else []
            report.written[dataset] = len(_record_indices(lines))
        kroot_path = root / "kroot.json"
        report.written["kroot"] = (
            len(json.loads(kroot_path.read_text()))
            if kroot_path.exists() else 0)
        total = 0
        for path in sorted((root / "pfx2as").glob("*.txt")):
            total += len(_record_indices(path.read_text().splitlines()))
        report.written["pfx2as"] = total

    def _corrupt_connlog(self, root: Path, report: FaultReport) -> None:
        path = root / "connlog.tsv"
        if not path.exists():
            return
        rng = substream(self.seed, "faults", "connlog")
        lines = path.read_text().splitlines()
        records = _record_indices(lines)
        used: set[int] = set()

        pairs = [index for index in same_probe_adjacent_pairs(lines)]
        n_swaps = _budget(self.connlog_out_of_order, len(pairs))
        swap_at: list[int] = []
        for index in rng.sample(pairs, len(pairs)):
            if len(swap_at) == n_swaps:
                break
            if index in used or index + 1 in used:
                continue
            swap_at.append(index)
            used.update((index, index + 1))
        report.faults += swap_adjacent_pairs(
            lines, sorted(swap_at), str(path), FaultKind.CONNLOG_OUT_OF_ORDER)

        report.faults += garble_lines(
            lines, _take(records, _budget(self.connlog_garbled,
                                          len(records)), used, rng),
            rng, str(path), FaultKind.CONNLOG_GARBLED)
        report.faults += truncate_lines(
            lines, _take(records, _budget(self.connlog_truncated,
                                          len(records)), used, rng),
            rng, str(path), FaultKind.CONNLOG_TRUNCATED)
        report.faults += duplicate_lines(
            lines, _take(records, _budget(self.connlog_duplicated,
                                          len(records)), used, rng),
            str(path), FaultKind.CONNLOG_DUPLICATED)
        path.write_text("\n".join(lines) + "\n")

    def _corrupt_uptime(self, root: Path, report: FaultReport) -> None:
        path = root / "uptime.tsv"
        if not path.exists():
            return
        rng = substream(self.seed, "faults", "uptime")
        lines = path.read_text().splitlines()
        records = _record_indices(lines)
        used: set[int] = set()
        report.faults += wrap_uptime_counters(
            lines, _take(records, _budget(self.uptime_wrap, len(records)),
                         used, rng), str(path))
        report.faults += garble_uptime_values(
            lines, _take(records, _budget(self.uptime_garbage,
                                          len(records)), used, rng),
            rng, str(path))
        path.write_text("\n".join(lines) + "\n")

    def _corrupt_kroot(self, root: Path, report: FaultReport) -> None:
        path = root / "kroot.json"
        if not path.exists():
            return
        if not (self.kroot_missing_series or self.kroot_malformed_series):
            return
        rng = substream(self.seed, "faults", "kroot")
        states = json.loads(path.read_text())
        used: set[int] = set()
        indices = list(range(len(states)))
        malformed = _take(indices, self.kroot_malformed_series, used, rng)
        missing = _take(indices, self.kroot_missing_series, used, rng)
        report.faults += malform_kroot_series(states, malformed, rng,
                                              str(path))
        report.faults += drop_kroot_series(states, missing, str(path))
        path.write_text(json.dumps(states))

    def _corrupt_pfx2as(self, root: Path, report: FaultReport) -> None:
        pfx_dir = root / "pfx2as"
        files = sorted(pfx_dir.glob("*.txt"))
        if not files:
            return
        rng = substream(self.seed, "faults", "pfx2as")
        # Never remove the last snapshot: REPAIR's fallback needs at
        # least one month to map the gap onto.
        removable = min(self.pfx2as_missing_months, len(files) - 1)
        for path in rng.sample(files, removable):
            lost = len(_record_indices(path.read_text().splitlines()))
            path.unlink()
            report.faults.append(InjectedFault(
                FaultKind.PFX2AS_MISSING_MONTH, str(path), None,
                "month file removed (%d mappings lost)" % lost,
                records_delta=-lost))
            files.remove(path)
        for path in files:
            lines = path.read_text().splitlines()
            records = _record_indices(lines)
            chosen = _take(records, _budget(self.pfx2as_bad_lines,
                                            len(records)), set(), rng)
            if not chosen:
                continue
            report.faults += garble_lines(lines, chosen, rng, str(path),
                                          FaultKind.PFX2AS_BAD_LINE)
            path.write_text("\n".join(lines) + "\n")

    def _drop_files(self, root: Path, report: FaultReport) -> None:
        for name in self.drop_files:
            if name not in _DROPPABLE:
                raise ValueError(
                    "cannot drop %r (eligible: %s)"
                    % (name, ", ".join(sorted(_DROPPABLE))))
            path = root / name
            if not path.exists():
                continue
            # Count what the file holds *now*: earlier line faults may
            # have changed the record count since `written` was measured.
            if name == "kroot.json":
                lost = len(json.loads(path.read_text()))
            else:
                lost = len(_record_indices(path.read_text().splitlines()))
            path.unlink()
            report.faults.append(InjectedFault(
                FaultKind.BUNDLE_MISSING_FILE, str(path), None,
                "bundle file removed", records_delta=-lost))
