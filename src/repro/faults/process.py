"""Deterministic process-level fault plans for supervised runs.

Where :class:`repro.faults.plan.FaultPlan` corrupts bundle *data* before
ingestion, :class:`ProcessFaultPlan` sabotages the *execution*: worker
crashes (``SIGKILL``), hangs, corrupted result envelopes, and slow
shards, placed deterministically from a seed so every faulted run is
exactly reproducible and every injection exactly accountable.

The plan is inert by design.  It is carried into pool workers inside
:class:`repro.runtime.workers.WorkerContext` and consulted through one
duck-typed method — ``fault_at(stage, shard_index, attempt)`` returning
a :class:`~repro.faults.injectors.FaultKind` value string or ``None`` —
so this package never imports the runtime it sabotages and the runtime
never imports this package from its worker path (the layer DAG stays a
DAG, and RPR003 stays quiet).

Placement draws one uniform per fault kind from
``substream(seed, "procfaults", stage, shard_index)`` in a fixed kind
order, so whether one kind fires never perturbs another kind's draw and
editing one rate leaves the other kinds' placements untouched — the same
independence discipline the bundle corruptor uses for its disjoint
target sets.  By default a fault fires only on ``attempt == 0`` (the
natural transient-fault model: the retry succeeds); ``persistent=True``
makes it fire on *every* attempt, which is how the retries-exhausted /
quarantine path is exercised.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.faults.injectors import FaultKind
from repro.util.rng import substream

#: Process fault kinds in draw order (fixed forever: reordering would
#: silently move every seeded placement).
PROCESS_FAULT_KINDS = (
    FaultKind.WORKER_CRASH,
    FaultKind.WORKER_HANG,
    FaultKind.ENVELOPE_CORRUPT,
    FaultKind.WORKER_SLOW,
)

#: Supervisor failure cause recorded when each kind fires (``None`` for
#: kinds the supervisor recovers without observing a failure).
CAUSE_BY_KIND = {
    FaultKind.WORKER_CRASH: "crash",
    FaultKind.WORKER_HANG: "hang",
    FaultKind.ENVELOPE_CORRUPT: "corrupt",
    FaultKind.WORKER_SLOW: None,
}


@dataclass(frozen=True)
class ProcessFaultPlan:
    """How much execution sabotage to inject, per fault kind.

    Rates are per-(stage, shard) firing probabilities in ``[0, 1]``.
    The plan crosses the ``spawn`` pickle boundary inside the worker
    context, so its field layout is a wire contract (RPR010).
    """

    __wire_contract__ = "process-fault-plan"

    seed: int = 0
    worker_crash: float = 0.0
    worker_hang: float = 0.0
    envelope_corrupt: float = 0.0
    worker_slow: float = 0.0
    #: How long a ``worker-slow`` fault sleeps before computing.
    slow_delay_s: float = 0.05
    #: Fire on every attempt instead of only the first — the model for
    #: a deterministic (non-transient) failure, used to exhaust retries.
    persistent: bool = False

    def __post_init__(self) -> None:
        for name in ("worker_crash", "worker_hang", "envelope_corrupt",
                     "worker_slow"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError("%s rate must be in [0, 1], got %r"
                                 % (name, rate))
        if self.slow_delay_s < 0:
            raise ValueError("slow_delay_s must be >= 0, got %r"
                             % (self.slow_delay_s,))

    def _rate(self, kind: FaultKind) -> float:
        return {
            FaultKind.WORKER_CRASH: self.worker_crash,
            FaultKind.WORKER_HANG: self.worker_hang,
            FaultKind.ENVELOPE_CORRUPT: self.envelope_corrupt,
            FaultKind.WORKER_SLOW: self.worker_slow,
        }[kind]

    def fault_at(self, stage: str, shard_index: int,
                 attempt: int) -> str | None:
        """The fault-kind value string placed at one shard task, if any.

        This is the duck-typed hook the worker preflight calls.  At most
        one kind fires per (stage, shard) — the first in
        :data:`PROCESS_FAULT_KINDS` order whose draw lands under its
        rate — and a transient plan stops firing after attempt 0.
        """
        if attempt > 0 and not self.persistent:
            return None
        rng = substream(self.seed, "procfaults", stage, shard_index)
        placed: str | None = None
        for kind in PROCESS_FAULT_KINDS:
            draw = rng.random()  # one draw per kind, hit or not
            if placed is None and draw < self._rate(kind):
                placed = kind.value
        return placed

    def placements(self, stage: str, shard_count: int
                   ) -> dict[int, FaultKind]:
        """Every fault this plan places on one stage's first attempts.

        Pure accounting view of :meth:`fault_at` — what the tests and
        :func:`reconcile` use to know exactly what *should* have fired.
        """
        placed: dict[int, FaultKind] = {}
        for index in range(shard_count):
            value = self.fault_at(stage, index, 0)
            if value is not None:
                placed[index] = FaultKind(value)
        return placed

    def any_rate(self) -> bool:
        """True when the plan can fire at all."""
        return any(self._rate(kind) > 0 for kind in PROCESS_FAULT_KINDS)


@dataclass
class ProcessFaultReport:
    """Exact account of a faulted supervised run.

    The reconciliation invariant mirrors the bundle corruptor's: every
    injected fault is either *recovered* (its shard still resolved) or
    *abandoned* (its shard was quarantined) — ``injected == recovered +
    abandoned``, kind by kind, with nothing lost and nothing double
    counted.
    """

    seed: int
    injected: dict[str, int] = field(default_factory=dict)
    recovered: dict[str, int] = field(default_factory=dict)
    abandoned: dict[str, int] = field(default_factory=dict)

    def total(self, store: dict[str, int]) -> int:
        return sum(store.values())

    @property
    def reconciled(self) -> bool:
        """Does ``injected == recovered + abandoned`` for every kind?"""
        kinds = set(self.injected) | set(self.recovered) | set(self.abandoned)
        return all(
            self.injected.get(kind, 0)
            == self.recovered.get(kind, 0) + self.abandoned.get(kind, 0)
            for kind in kinds)

    def render(self) -> str:
        lines = ["process faults (seed %d): %d injected, %d recovered, "
                 "%d abandoned" % (self.seed, self.total(self.injected),
                                   self.total(self.recovered),
                                   self.total(self.abandoned))]
        for kind in sorted(self.injected):
            lines.append("  %-18s injected=%d recovered=%d abandoned=%d"
                         % (kind, self.injected.get(kind, 0),
                            self.recovered.get(kind, 0),
                            self.abandoned.get(kind, 0)))
        return "\n".join(lines)

    def to_dict(self) -> dict[str, object]:
        return {
            "seed": self.seed,
            "injected": dict(self.injected),
            "recovered": dict(self.recovered),
            "abandoned": dict(self.abandoned),
            "reconciled": self.reconciled,
        }


def reconcile(plan: ProcessFaultPlan,
              resilience: Iterable[object]) -> ProcessFaultReport:
    """Reconcile a plan against a run's supervision account.

    ``resilience`` rows are duck-typed
    :class:`repro.runtime.supervisor.StageResilience` objects (``stage``,
    ``shards``, ``abandoned``) — duck-typed for the same layering reason
    the plan itself is inert.  Only first-attempt placements are
    counted: a persistent plan re-fires on retries, but those are the
    *same* injected fault still being survived, not new ones.
    """
    report = ProcessFaultReport(seed=plan.seed)
    for row in resilience:
        placed = plan.placements(row.stage, row.shards)
        lost = set(row.abandoned)
        for index, kind in placed.items():
            report.injected[kind.value] = (
                report.injected.get(kind.value, 0) + 1)
            store = (report.abandoned if index in lost
                     else report.recovered)
            store[kind.value] = store.get(kind.value, 0) + 1
    return report
