"""Command-line fault injector: corrupt a dataset bundle in place.

Usage::

    repro-simulate --out data/ --scale 0.1 --seed 2015
    repro-faults data/ --seed 7 --rate 0.05
    repro-experiment table5 --data data/ --read-policy repair
"""

from __future__ import annotations

import argparse
import dataclasses
import json

from repro.faults.plan import FaultPlan


def main(argv: list[str] | None = None) -> int:
    """Apply a uniform fault plan to a bundle and print the accounting."""
    parser = argparse.ArgumentParser(
        description="Deterministically corrupt a dataset bundle written "
                    "by repro-simulate (garbled/truncated/duplicated/"
                    "out-of-order records, wrapped uptime counters, "
                    "missing pfx2as months, damaged k-root series) to "
                    "exercise ReadPolicy.REPAIR ingestion")
    parser.add_argument("bundle", help="bundle directory to corrupt in place")
    parser.add_argument("--seed", type=int, default=0,
                        help="fault-injection seed (default %(default)s)")
    parser.add_argument("--rate", type=float, default=0.05,
                        help="fraction of record lines corrupted per fault "
                             "kind (default %(default)s)")
    parser.add_argument("--drop", action="append", default=[],
                        metavar="FILE",
                        help="also remove a bundle file (repeatable; e.g. "
                             "--drop uptime.tsv)")
    parser.add_argument("--json", action="store_true",
                        help="emit the fault report as JSON")
    args = parser.parse_args(argv)

    plan = dataclasses.replace(FaultPlan.uniform(args.seed, args.rate),
                               drop_files=tuple(args.drop))
    report = plan.apply(args.bundle)
    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(report.render())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
