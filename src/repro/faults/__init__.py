"""Deterministic fault injection for on-disk dataset bundles.

The paper's datasets were scraped operational data: truncated connection
logs, wrapped uptime counters, months missing from CAIDA's pfx2as
archive.  This package corrupts a bundle written by
:func:`repro.sim.io.write_world` the same ways — deterministically, from
a seed, via :func:`repro.util.rng.substream` — so the ingestion layer's
``ReadPolicy.REPAIR`` contract can be exercised against known damage and
its :class:`~repro.util.ingest.IngestReport` reconciled fault-by-fault.

:mod:`repro.faults.injectors` holds the pure line-level corruption
primitives; :mod:`repro.faults.plan` applies a configurable corruption
budget to a bundle directory and returns a :class:`FaultReport`
accounting every injected fault.  :mod:`repro.faults.process` sabotages
pool workers (crash/hang/corrupt envelopes) and
:mod:`repro.faults.network` sabotages the dist transport (dropped,
garbled, delayed messages and torn connections) — both as inert plan
objects the runtime consults, so this package never imports what it
breaks.  The package sits above ``sim`` in the layer DAG: it consumes
bundle layouts, and only tests and the ``repro-faults`` CLI consume it.
"""

from repro.faults.injectors import FaultKind, InjectedFault
from repro.faults.network import (
    NetworkFaultPlan,
    NetworkFaultReport,
    reconcile_network,
)
from repro.faults.plan import FaultPlan, FaultReport
from repro.faults.process import (
    ProcessFaultPlan,
    ProcessFaultReport,
    reconcile,
)

__all__ = [
    "FaultKind",
    "FaultPlan",
    "FaultReport",
    "InjectedFault",
    "NetworkFaultPlan",
    "NetworkFaultReport",
    "ProcessFaultPlan",
    "ProcessFaultReport",
    "reconcile",
    "reconcile_network",
]
