"""Deterministic network-level fault plans for distributed runs.

Where :class:`repro.faults.plan.FaultPlan` corrupts bundle *data* and
:class:`repro.faults.process.ProcessFaultPlan` sabotages pool *workers*,
:class:`NetworkFaultPlan` sabotages the *transport*: messages between a
dist worker and the coordinator are dropped, garbled, delayed, or the
connection is torn down mid-conversation.  The dist protocol must make
all of that survivable — a faulty transport may cost retries and
reassignments, never a wrong ``results_digest``.

The plan is inert by design, exactly like the process plan: it is
consulted by :class:`repro.dist.transport.FaultyChannel` through one
duck-typed method — ``fault_on(channel_id, direction, msg_type, seq)``
returning a :class:`~repro.faults.injectors.FaultKind` value string or
``None`` — so this package never imports the dist runtime it sabotages.

Placement draws one uniform per fault kind from
``substream(seed, "netfaults", channel_id, direction, seq)`` in a fixed
kind order (the same independence discipline the bundle and process
plans use), so editing one rate never perturbs another kind's
placements.  ``seq`` is the channel's per-direction message counter:
placement is a pure function of the message *sequence*, which makes any
single conversation exactly replayable even though the global
interleaving of a concurrent run is not.

Unlike data and process faults, network faults have no pre-computable
global placement account: which sequence numbers ever occur depends on
how the conversation unfolds (a dropped reply changes every later seq).
The exact-reconciliation contract therefore inverts: the *channel* logs
every injection it performs, :func:`reconcile_network` folds those logs
against the coordinator's supervision account, and the invariant is
``injected == observed`` per kind plus the usual
``analyzed + quarantined == total`` accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.faults.injectors import FaultKind
from repro.util.rng import substream

#: Network fault kinds in draw order (fixed forever: reordering would
#: silently move every seeded placement).
NETWORK_FAULT_KINDS = (
    FaultKind.MSG_DROP,
    FaultKind.MSG_GARBLE,
    FaultKind.MSG_DELAY,
    FaultKind.CONN_DISCONNECT,
)


@dataclass(frozen=True)
class NetworkFaultPlan:
    """How much transport sabotage to inject, per fault kind.

    Rates are per-message firing probabilities in ``[0, 1]``, applied on
    the send side of a :class:`~repro.dist.transport.FaultyChannel`.
    The plan travels into worker processes via CLI flags (never pickled
    across the dist socket itself — a faulty channel carrying its own
    fault plan would be unable to deliver it), so its field layout is a
    wire contract (RPR010).
    """

    __wire_contract__ = "network-fault-plan"

    seed: int = 0
    msg_drop: float = 0.0
    msg_garble: float = 0.0
    msg_delay: float = 0.0
    conn_disconnect: float = 0.0
    #: How long a ``msg-delay`` fault sleeps before sending.
    delay_s: float = 0.05

    def __post_init__(self) -> None:
        for name in ("msg_drop", "msg_garble", "msg_delay",
                     "conn_disconnect"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError("%s rate must be in [0, 1], got %r"
                                 % (name, rate))
        if self.delay_s < 0:
            raise ValueError("delay_s must be >= 0, got %r"
                             % (self.delay_s,))

    def _rate(self, kind: FaultKind) -> float:
        return {
            FaultKind.MSG_DROP: self.msg_drop,
            FaultKind.MSG_GARBLE: self.msg_garble,
            FaultKind.MSG_DELAY: self.msg_delay,
            FaultKind.CONN_DISCONNECT: self.conn_disconnect,
        }[kind]

    def fault_on(self, channel_id: str, direction: str,
                 msg_type: str, seq: int) -> str | None:
        """The fault-kind value string placed on one message, if any.

        This is the duck-typed hook the faulty channel calls before each
        send.  At most one kind fires per message — the first in
        :data:`NETWORK_FAULT_KINDS` order whose draw lands under its
        rate.  ``msg_type`` is accepted for the channel's logging but
        deliberately excluded from the draw key: placement by sequence
        position keeps a conversation's fault schedule independent of
        *what* happens to be said at each position.
        """
        rng = substream(self.seed, "netfaults", channel_id, direction, seq)
        placed: str | None = None
        for kind in NETWORK_FAULT_KINDS:
            draw = rng.random()  # one draw per kind, hit or not
            if placed is None and draw < self._rate(kind):
                placed = kind.value
        return placed

    def any_rate(self) -> bool:
        """True when the plan can fire at all."""
        return any(self._rate(kind) > 0 for kind in NETWORK_FAULT_KINDS)


@dataclass
class NetworkFaultReport:
    """Exact account of a network-faulted distributed run.

    ``injected`` counts what the faulty channels logged, kind by kind;
    ``disruptions`` counts the coordinator-side failure charges the run
    absorbed (hangs, disconnects, corrupt envelopes — each one a
    recovered or quarantined lease); ``analyzed``/``quarantined`` carry
    the stage accounting.  ``reconciled`` asserts nothing was silently
    lost: every stage's items are exactly analyzed + quarantined, and
    the channel logs agree with the summaries the workers returned.
    """

    seed: int
    injected: dict[str, int] = field(default_factory=dict)
    disruptions: dict[str, int] = field(default_factory=dict)
    total_items: int = 0
    analyzed_items: int = 0
    quarantined_items: int = 0

    @property
    def accounted(self) -> bool:
        """Does ``analyzed + quarantined == total`` hold overall?"""
        return (self.analyzed_items + self.quarantined_items
                == self.total_items)

    @property
    def degraded(self) -> bool:
        return self.quarantined_items > 0

    def total(self, store: Mapping[str, int]) -> int:
        return sum(store.values())

    def render(self) -> str:
        lines = ["network faults (seed %d): %d injected, %d disruption(s) "
                 "absorbed, %d/%d item(s) analyzed, %d quarantined"
                 % (self.seed, self.total(self.injected),
                    self.total(self.disruptions), self.analyzed_items,
                    self.total_items, self.quarantined_items)]
        for kind in sorted(self.injected):
            lines.append("  %-18s injected=%d"
                         % (kind, self.injected.get(kind, 0)))
        for cause in sorted(self.disruptions):
            lines.append("  %-18s absorbed=%d"
                         % (cause, self.disruptions.get(cause, 0)))
        if not self.accounted:
            lines.append("  UNRECONCILED: analyzed %d + quarantined %d "
                         "!= total %d" % (self.analyzed_items,
                                          self.quarantined_items,
                                          self.total_items))
        return "\n".join(lines)

    def to_dict(self) -> dict[str, object]:
        return {
            "seed": self.seed,
            "injected": dict(self.injected),
            "disruptions": dict(self.disruptions),
            "total_items": self.total_items,
            "analyzed_items": self.analyzed_items,
            "quarantined_items": self.quarantined_items,
            "accounted": self.accounted,
            "degraded": self.degraded,
        }


def reconcile_network(plan: NetworkFaultPlan,
                      injection_logs: Iterable[Mapping[str, int]],
                      resilience: Iterable[object]) -> NetworkFaultReport:
    """Fold channel injection logs and the run's supervision account.

    ``injection_logs`` are per-channel ``{kind: count}`` mappings (each
    :class:`~repro.dist.transport.FaultyChannel` keeps one);
    ``resilience`` rows are duck-typed
    :class:`repro.runtime.supervisor.StageResilience` objects — the same
    inert-consumption discipline :func:`repro.faults.process.reconcile`
    uses, so this package still never imports the runtime.
    """
    report = NetworkFaultReport(seed=plan.seed)
    for log in injection_logs:
        for kind in sorted(log):
            report.injected[kind] = (report.injected.get(kind, 0)
                                     + int(log[kind]))
    for row in resilience:
        report.total_items += row.total_items
        report.analyzed_items += row.analyzed_items
        report.quarantined_items += row.quarantined_items
        for failure in row.failures:
            report.disruptions[failure.cause] = (
                report.disruptions.get(failure.cause, 0) + 1)
    return report
