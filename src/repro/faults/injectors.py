"""Line-level corruption primitives for the bundle fault injector.

Each injector is a pure function over a list of text lines (or k-root
JSON series states): it mutates the list in place and returns one
:class:`InjectedFault` per corruption, so :class:`repro.faults.plan.FaultPlan`
can account exactly what it did.  All randomness comes from the
:class:`random.Random` handed in by the plan (derived via
:func:`repro.util.rng.substream`), keeping every corrupted bundle a pure
function of ``(bundle, seed)``.

The primitives are deliberately *destructive-by-construction*: a garbled
or truncated line can never accidentally still parse, so the ingest
accounting in the fault-injection suite reconciles exactly.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass


class FaultKind(enum.Enum):
    """The DESIGN §6/§13 failure-injection matrix, one entry per fault.

    The ``CONNLOG_*`` .. ``BUNDLE_*`` kinds corrupt bundle *data* before
    ingestion; the ``WORKER_*``/``ENVELOPE_*`` kinds are *process*
    faults, acted on inside pool workers during a supervised run
    (:mod:`repro.faults.process`); the ``MSG_*``/``CONN_*`` kinds are
    *network* faults, acted on by the dist transport during a
    distributed run (:mod:`repro.faults.network`).  The values double as
    the wire-level strings the runtime matches on, so they must stay in
    sync with the ``FAULT_*`` constants in :mod:`repro.runtime.workers`
    and the ``FAULT_*`` constants in :mod:`repro.dist.transport`.
    """

    CONNLOG_GARBLED = "connlog-garbled"
    CONNLOG_TRUNCATED = "connlog-truncated"
    CONNLOG_DUPLICATED = "connlog-duplicated"
    CONNLOG_OUT_OF_ORDER = "connlog-out-of-order"
    UPTIME_WRAP = "uptime-wrap"
    UPTIME_GARBAGE = "uptime-garbage"
    KROOT_MISSING_SERIES = "kroot-missing-series"
    KROOT_MALFORMED_SERIES = "kroot-malformed-series"
    PFX2AS_MISSING_MONTH = "pfx2as-missing-month"
    PFX2AS_BAD_LINE = "pfx2as-bad-line"
    BUNDLE_MISSING_FILE = "bundle-missing-file"
    WORKER_CRASH = "worker-crash"
    WORKER_HANG = "worker-hang"
    WORKER_SLOW = "worker-slow"
    ENVELOPE_CORRUPT = "envelope-corrupt"
    MSG_DROP = "msg-drop"
    MSG_GARBLE = "msg-garble"
    MSG_DELAY = "msg-delay"
    CONN_DISCONNECT = "conn-disconnect"


@dataclass(frozen=True)
class InjectedFault:
    """One corruption applied to a bundle.

    ``records_delta`` is the change in *record-line count* the fault
    causes (+1 for a duplicated line, negative for removed records,
    0 for in-place damage); summing it per dataset is what lets tests
    reconcile ``parsed + repaired + quarantined`` against what was
    written plus what was injected.
    """

    kind: FaultKind
    target: str
    line: int | None
    detail: str
    records_delta: int = 0


#: Counter modulus matching ``repro.atlas.sosuptime.UPTIME_WRAP_MODULUS``
#: (kept as a literal here: faults sits above atlas but must not depend
#: on it to corrupt a bundle the format of which is fixed on disk).
UPTIME_WRAP = 2 ** 32


def _garbage_text(rng: random.Random) -> str:
    """Deterministic junk: never blank, never a comment, never tabbed."""
    return "!corrupt-%06d" % rng.randrange(10 ** 6)


def garble_lines(lines: list[str], indices: list[int], rng: random.Random,
                 target: str, kind: FaultKind) -> list[InjectedFault]:
    """Replace whole lines with unparseable junk."""
    faults = []
    for index in indices:
        lines[index] = _garbage_text(rng)
        faults.append(InjectedFault(kind, target, index + 1,
                                    "line replaced with garbage"))
    return faults


def truncate_lines(lines: list[str], indices: list[int], rng: random.Random,
                   target: str, kind: FaultKind) -> list[InjectedFault]:
    """Cut lines mid-record, guaranteeing too few fields remain."""
    faults = []
    for index in indices:
        fields = lines[index].split("\t")
        keep = rng.randrange(1, len(fields)) if len(fields) > 1 else 1
        text = "\t".join(fields[:keep])
        # Chop the tail of the last surviving field too, as a real
        # truncated write would.
        cut = rng.randrange(1, len(text) + 1)
        lines[index] = text[:cut]
        faults.append(InjectedFault(kind, target, index + 1,
                                    "line truncated to %d bytes" % cut))
    return faults


def duplicate_lines(lines: list[str], indices: list[int],
                    target: str, kind: FaultKind) -> list[InjectedFault]:
    """Insert an exact copy of each chosen line immediately after it."""
    faults = []
    for index in sorted(indices, reverse=True):
        lines.insert(index + 1, lines[index])
        faults.append(InjectedFault(kind, target, index + 1,
                                    "line duplicated", records_delta=1))
    return faults


def swap_adjacent_pairs(lines: list[str], first_indices: list[int],
                        target: str, kind: FaultKind) -> list[InjectedFault]:
    """Swap each line with its successor, making records out of order."""
    faults = []
    for index in first_indices:
        lines[index], lines[index + 1] = lines[index + 1], lines[index]
        faults.append(InjectedFault(
            kind, target, index + 1,
            "swapped with line %d" % (index + 2)))
    return faults


def same_probe_adjacent_pairs(lines: list[str]) -> list[int]:
    """Indices ``i`` where lines ``i`` and ``i+1`` belong to one probe.

    Swapping such a pair disturbs the per-probe time order the dataset
    containers enforce; swapping lines of different probes would not.
    """
    pairs = []
    for index in range(len(lines) - 1):
        first = lines[index].split("\t", 1)[0]
        second = lines[index + 1].split("\t", 1)[0]
        if first and first == second:
            pairs.append(index)
    return pairs


def wrap_uptime_counters(lines: list[str], indices: list[int],
                         target: str) -> list[InjectedFault]:
    """Add 2**32 to the counter field, as a wrapped 32-bit read-out."""
    faults = []
    for index in indices:
        fields = lines[index].split("\t")
        fields[2] = "%.0f" % (float(fields[2]) + UPTIME_WRAP)
        lines[index] = "\t".join(fields)
        faults.append(InjectedFault(FaultKind.UPTIME_WRAP, target, index + 1,
                                    "uptime counter wrapped past 2**32"))
    return faults


def garble_uptime_values(lines: list[str], indices: list[int],
                         rng: random.Random,
                         target: str) -> list[InjectedFault]:
    """Replace the counter field with non-numeric junk."""
    faults = []
    for index in indices:
        fields = lines[index].split("\t")
        fields[2] = _garbage_text(rng)
        lines[index] = "\t".join(fields)
        faults.append(InjectedFault(FaultKind.UPTIME_GARBAGE, target,
                                    index + 1, "uptime counter garbled"))
    return faults


def drop_kroot_series(states: list[dict], indices: list[int],
                      target: str) -> list[InjectedFault]:
    """Delete whole series states (a probe missing from the dataset)."""
    faults = []
    for index in sorted(indices, reverse=True):
        state = states.pop(index)
        faults.append(InjectedFault(
            FaultKind.KROOT_MISSING_SERIES, target, index + 1,
            "series for probe %s removed" % state.get("probe_id"),
            records_delta=-1))
    return faults


def malform_kroot_series(states: list[dict], indices: list[int],
                         rng: random.Random,
                         target: str) -> list[InjectedFault]:
    """Strip one required key from each chosen series state."""
    faults = []
    for index in indices:
        keys = sorted(states[index])
        key = keys[rng.randrange(len(keys))]
        del states[index][key]
        faults.append(InjectedFault(
            FaultKind.KROOT_MALFORMED_SERIES, target, index + 1,
            "series state missing key %r" % key))
    return faults
