"""IP-to-AS mapping with monthly snapshots (CAIDA pfx2as equivalent).

Section 3.3 of the paper maps each newly assigned address to its autonomous
system using CAIDA's *monthly* Routeviews pfx2as dataset: the snapshot for
the month in which the address was assigned is the one consulted.
:class:`IpToAsDataset` reproduces that interface.

Snapshots serialize to the pfx2as text format (``network<TAB>length<TAB>asn``
per line) so tests can exercise round-trips and malformed-input handling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, TextIO

from repro.errors import DatasetError, ParseError
from repro.net.ipv4 import IPv4Address, IPv4Prefix
from repro.net.trie import PrefixTrie
from repro.util import timeutil
from repro.util.colpack import HAVE_NUMPY

if HAVE_NUMPY:
    import numpy as np
from repro.util.ingest import (
    IngestReport,
    ReadPolicy,
    format_line_error,
)

#: Dataset label used in ingest accounting and diagnostics.
DATASET_NAME = "pfx2as"


@dataclass(frozen=True)
class AsMapping:
    """One routed prefix and its origin AS number."""

    prefix: IPv4Prefix
    asn: int

    def __post_init__(self) -> None:
        if self.asn <= 0:
            raise ParseError("ASN must be positive, got %r" % (self.asn,))


#: Sentinel ASN in flattened stab tables for unrouted address space.
UNROUTED = -1


class Pfx2AsSnapshot:
    """A single month's prefix-to-AS table with longest-prefix lookup."""

    def __init__(self, mappings: Iterable[AsMapping] = ()) -> None:
        self._trie: PrefixTrie[AsMapping] = PrefixTrie()
        self._stab: tuple[list[int], list[int]] | None = None
        self._stab_arrays: tuple | None = None
        for mapping in mappings:
            self.add(mapping)

    def __len__(self) -> int:
        return len(self._trie)

    def add(self, mapping: AsMapping) -> None:
        """Insert a mapping, replacing any previous entry for the prefix."""
        self._trie.insert(mapping.prefix, mapping)
        self._stab = None  # flattened table (and its arrays) are stale
        self._stab_arrays = None

    def origin_asn(self, address: IPv4Address) -> int | None:
        """Return the origin ASN for ``address`` or None when unrouted."""
        mapping = self._trie.lookup(address)
        return None if mapping is None else mapping.asn

    def bgp_prefix(self, address: IPv4Address) -> IPv4Prefix | None:
        """Return the longest routed prefix covering ``address``.

        This is the 'BGP prefix' granularity of Table 7.
        """
        mapping = self._trie.lookup(address)
        return None if mapping is None else mapping.prefix

    def mappings(self) -> Iterator[AsMapping]:
        """Yield all mappings in address order."""
        for _prefix, mapping in self._trie.items():
            yield mapping

    def stab_table(self) -> tuple[list[int], list[int]]:
        """The trie flattened into a longest-prefix-match stab table.

        Returns ``(bounds, asns)``: ``bounds`` is a sorted list of
        segment start addresses beginning at 0, and ``asns[i]`` is the
        origin ASN covering ``[bounds[i], bounds[i+1])`` —
        :data:`UNROUTED` where no prefix covers the segment.  Lookup is
        ``asns[bisect_right(bounds, addr) - 1]``, equivalent to
        :meth:`origin_asn` for every address (the vectorized kernels
        batch exactly this with ``numpy.searchsorted``).

        Built lazily from the pre-order :meth:`PrefixTrie.items` walk —
        parents arrive before children and siblings in address order, so
        one stack sweep paints most-specific-wins segments.  Cached
        until the next :meth:`add` invalidates it.
        """
        if self._stab is not None:
            return self._stab
        bounds: list[int] = [0]
        asns: list[int] = [UNROUTED]

        def paint(start: int, asn: int) -> None:
            # Segments arrive with non-decreasing starts; drop zero-width
            # segments and merge equal-valued neighbours.
            if bounds[-1] == start:
                if len(bounds) > 1 and asns[-2] == asn:
                    bounds.pop()
                    asns.pop()
                else:
                    asns[-1] = asn
            elif asns[-1] != asn:
                bounds.append(start)
                asns.append(asn)

        stack: list[tuple[int, int]] = []  # (end address, asn), nested
        for prefix, mapping in self._trie.items():
            start = prefix.network
            end = start + (1 << (32 - prefix.length))
            while stack and stack[-1][0] <= start:
                resumed, _ = stack.pop()
                paint(resumed, stack[-1][1] if stack else UNROUTED)
            paint(start, mapping.asn)
            stack.append((end, mapping.asn))
        while stack:
            resumed, _ = stack.pop()
            paint(resumed, stack[-1][1] if stack else UNROUTED)
        self._stab = (bounds, asns)
        return self._stab

    def stab_arrays(self):
        """:meth:`stab_table` as a pair of int64 numpy arrays.

        The vectorized kernels call this per batch, so the conversion is
        memoized next to the table itself and invalidated by the same
        :meth:`add` — a mutated snapshot can never serve stale arrays.
        """
        if not HAVE_NUMPY:
            raise RuntimeError("stab_arrays requires numpy; gate callers "
                               "on repro.util.colpack.HAVE_NUMPY")
        if self._stab_arrays is None:
            bounds, asns = self.stab_table()
            self._stab_arrays = (np.asarray(bounds, dtype=np.int64),
                                 np.asarray(asns, dtype=np.int64))
        return self._stab_arrays

    def write(self, stream: TextIO) -> None:
        """Serialize in pfx2as text format."""
        for mapping in self.mappings():
            stream.write(
                "%s\t%d\t%d\n"
                % (IPv4Address(mapping.prefix.network), mapping.prefix.length,
                   mapping.asn)
            )

    @staticmethod
    def _parse_line(text: str) -> AsMapping:
        """Parse one record line; raises :class:`ParseError` sans location."""
        fields = text.split("\t")
        if len(fields) != 3:
            raise ParseError("expected 3 fields, got %d" % len(fields))
        network_text, length_text, asn_text = fields
        if not length_text.isdigit() or not asn_text.isdigit():
            raise ParseError("non-numeric length or ASN")
        network = IPv4Address.parse(network_text)
        prefix = IPv4Prefix.containing(network, int(length_text))
        if prefix.network != network.value:
            raise ParseError("host bits set in prefix")
        # AsMapping rejects non-positive ASNs (ParseError).
        return AsMapping(prefix, int(asn_text))

    @classmethod
    def read(cls, stream: TextIO,
             policy: ReadPolicy = ReadPolicy.STRICT,
             report: IngestReport | None = None,
             source: str | None = None) -> "Pfx2AsSnapshot":
        """Parse the pfx2as text format.

        ``STRICT`` rejects the whole snapshot on the first malformed
        line; ``REPAIR`` quarantines bad lines (those prefixes simply go
        unmapped) and accounts them in ``report``.
        """
        source = source or getattr(stream, "name", "<pfx2as>")
        report = report if report is not None else IngestReport()
        snapshot = cls()
        for line_number, line in enumerate(stream, start=1):
            text = line.strip()
            if not text or text.startswith("#"):
                continue
            try:
                snapshot.add(cls._parse_line(text))
            except ParseError as error:
                if policy is ReadPolicy.STRICT:
                    raise ParseError(
                        format_line_error(source, line_number, error)
                    ) from None
                report.quarantined(DATASET_NAME, source, line_number,
                                   str(error))
                continue
            report.parsed(DATASET_NAME)
        return snapshot


class IpToAsDataset:
    """Monthly pfx2as snapshots keyed by ``(year, month)``.

    Lookups take the timestamp of the address assignment and consult the
    snapshot published for that month, as the paper does.  By default a
    missing month raises :class:`DatasetError` — the analysis must not
    *silently* fall back to a different month's routing table.  Under
    ``ReadPolicy.REPAIR`` the bundle loader constructs the dataset with
    ``fallback=True`` after recording the gap, and lookups then use the
    nearest earlier snapshot (or the earliest later one before the first
    registered month), mirroring how the paper coped with gaps in
    CAIDA's monthly archive.
    """

    def __init__(self, fallback: bool = False) -> None:
        self._snapshots: dict[tuple[int, int], Pfx2AsSnapshot] = {}
        self.fallback = fallback

    def __len__(self) -> int:
        return len(self._snapshots)

    def add_snapshot(self, year: int, month: int,
                     snapshot: Pfx2AsSnapshot) -> None:
        """Register the snapshot for a month."""
        if not 1 <= month <= 12:
            raise DatasetError("month out of range: %r" % (month,))
        self._snapshots[(year, month)] = snapshot

    def months(self) -> list[tuple[int, int]]:
        """Return registered ``(year, month)`` keys in order."""
        return sorted(self._snapshots)

    def snapshot_for(self, timestamp: float) -> Pfx2AsSnapshot:
        """Return the snapshot for the month containing ``timestamp``.

        With ``fallback`` enabled a missing month resolves to the nearest
        earlier registered snapshot (or the earliest later one); without
        it, or when no snapshot exists at all, raises
        :class:`DatasetError`.
        """
        key = timeutil.month_of(timestamp)
        try:
            return self._snapshots[key]
        except KeyError:
            if self.fallback and self._snapshots:
                return self._snapshots[self._nearest_month(key)]
            raise DatasetError(
                "no pfx2as snapshot for %04d-%02d" % key
            ) from None

    def _nearest_month(self, key: tuple[int, int]) -> tuple[int, int]:
        """Nearest earlier registered month, else the earliest later one."""
        earlier = [month for month in self._snapshots if month <= key]
        if earlier:
            return max(earlier)
        return min(self._snapshots)

    def origin_asn(self, address: IPv4Address, timestamp: float) -> int | None:
        """ASN originating ``address`` in the month of ``timestamp``."""
        return self.snapshot_for(timestamp).origin_asn(address)

    def bgp_prefix(self, address: IPv4Address,
                   timestamp: float) -> IPv4Prefix | None:
        """Routed prefix covering ``address`` in the month of ``timestamp``."""
        return self.snapshot_for(timestamp).bgp_prefix(address)
