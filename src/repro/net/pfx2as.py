"""IP-to-AS mapping with monthly snapshots (CAIDA pfx2as equivalent).

Section 3.3 of the paper maps each newly assigned address to its autonomous
system using CAIDA's *monthly* Routeviews pfx2as dataset: the snapshot for
the month in which the address was assigned is the one consulted.
:class:`IpToAsDataset` reproduces that interface.

Snapshots serialize to the pfx2as text format (``network<TAB>length<TAB>asn``
per line) so tests can exercise round-trips and malformed-input handling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, TextIO

from repro.errors import DatasetError, ParseError
from repro.net.ipv4 import IPv4Address, IPv4Prefix
from repro.net.trie import PrefixTrie
from repro.util import timeutil


@dataclass(frozen=True)
class AsMapping:
    """One routed prefix and its origin AS number."""

    prefix: IPv4Prefix
    asn: int

    def __post_init__(self) -> None:
        if self.asn <= 0:
            raise ParseError("ASN must be positive, got %r" % (self.asn,))


class Pfx2AsSnapshot:
    """A single month's prefix-to-AS table with longest-prefix lookup."""

    def __init__(self, mappings: Iterable[AsMapping] = ()) -> None:
        self._trie: PrefixTrie[AsMapping] = PrefixTrie()
        for mapping in mappings:
            self.add(mapping)

    def __len__(self) -> int:
        return len(self._trie)

    def add(self, mapping: AsMapping) -> None:
        """Insert a mapping, replacing any previous entry for the prefix."""
        self._trie.insert(mapping.prefix, mapping)

    def origin_asn(self, address: IPv4Address) -> int | None:
        """Return the origin ASN for ``address`` or None when unrouted."""
        mapping = self._trie.lookup(address)
        return None if mapping is None else mapping.asn

    def bgp_prefix(self, address: IPv4Address) -> IPv4Prefix | None:
        """Return the longest routed prefix covering ``address``.

        This is the 'BGP prefix' granularity of Table 7.
        """
        mapping = self._trie.lookup(address)
        return None if mapping is None else mapping.prefix

    def mappings(self) -> Iterator[AsMapping]:
        """Yield all mappings in address order."""
        for _prefix, mapping in self._trie.items():
            yield mapping

    def write(self, stream: TextIO) -> None:
        """Serialize in pfx2as text format."""
        for mapping in self.mappings():
            stream.write(
                "%s\t%d\t%d\n"
                % (IPv4Address(mapping.prefix.network), mapping.prefix.length,
                   mapping.asn)
            )

    @classmethod
    def read(cls, stream: TextIO) -> "Pfx2AsSnapshot":
        """Parse the pfx2as text format, rejecting malformed lines."""
        snapshot = cls()
        for line_number, line in enumerate(stream, start=1):
            text = line.strip()
            if not text or text.startswith("#"):
                continue
            fields = text.split("\t")
            if len(fields) != 3:
                raise ParseError(
                    "pfx2as line %d: expected 3 fields, got %d"
                    % (line_number, len(fields))
                )
            network_text, length_text, asn_text = fields
            if not length_text.isdigit() or not asn_text.isdigit():
                raise ParseError(
                    "pfx2as line %d: non-numeric length or ASN" % line_number
                )
            network = IPv4Address.parse(network_text)
            prefix = IPv4Prefix.containing(network, int(length_text))
            if prefix.network != network.value:
                raise ParseError(
                    "pfx2as line %d: host bits set in prefix" % line_number
                )
            snapshot.add(AsMapping(prefix, int(asn_text)))
        return snapshot


class IpToAsDataset:
    """Monthly pfx2as snapshots keyed by ``(year, month)``.

    Lookups take the timestamp of the address assignment and consult the
    snapshot published for that month, as the paper does.  A missing month
    raises :class:`DatasetError` — the analysis must not silently fall back
    to a different month's routing table.
    """

    def __init__(self) -> None:
        self._snapshots: dict[tuple[int, int], Pfx2AsSnapshot] = {}

    def __len__(self) -> int:
        return len(self._snapshots)

    def add_snapshot(self, year: int, month: int,
                     snapshot: Pfx2AsSnapshot) -> None:
        """Register the snapshot for a month."""
        if not 1 <= month <= 12:
            raise DatasetError("month out of range: %r" % (month,))
        self._snapshots[(year, month)] = snapshot

    def months(self) -> list[tuple[int, int]]:
        """Return registered ``(year, month)`` keys in order."""
        return sorted(self._snapshots)

    def snapshot_for(self, timestamp: float) -> Pfx2AsSnapshot:
        """Return the snapshot for the month containing ``timestamp``."""
        key = timeutil.month_of(timestamp)
        try:
            return self._snapshots[key]
        except KeyError:
            raise DatasetError(
                "no pfx2as snapshot for %04d-%02d" % key
            ) from None

    def origin_asn(self, address: IPv4Address, timestamp: float) -> int | None:
        """ASN originating ``address`` in the month of ``timestamp``."""
        return self.snapshot_for(timestamp).origin_asn(address)

    def bgp_prefix(self, address: IPv4Address,
                   timestamp: float) -> IPv4Prefix | None:
        """Routed prefix covering ``address`` in the month of ``timestamp``."""
        return self.snapshot_for(timestamp).bgp_prefix(address)
