"""IPv4 addressing substrate: value types, trie, pfx2as, BGP synthesis."""

from repro.net.bgpgen import AddressSpaceAllocator, AddressSpacePlan
from repro.net.ipv4 import (
    TESTING_ADDRESS,
    TESTING_ADDRESS_TEXT,
    IPv4Address,
    IPv4Prefix,
)
from repro.net.pfx2as import AsMapping, IpToAsDataset, Pfx2AsSnapshot
from repro.net.trie import PrefixTrie

__all__ = [
    "AddressSpaceAllocator",
    "AddressSpacePlan",
    "AsMapping",
    "IPv4Address",
    "IPv4Prefix",
    "IpToAsDataset",
    "Pfx2AsSnapshot",
    "PrefixTrie",
    "TESTING_ADDRESS",
    "TESTING_ADDRESS_TEXT",
]
