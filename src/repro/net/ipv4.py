"""IPv4 address and prefix value types.

The pipeline compares successive addresses assigned to the same CPE against
three prefix granularities (the originating BGP prefix, the enclosing /16,
and the enclosing /8 — Section 6 of the paper), so addresses and prefixes
are first-class values here rather than raw strings.

We deliberately implement these from scratch instead of wrapping
:mod:`ipaddress`: the trie, pool allocators and dataset writers all want the
integer representation directly, and the value types stay tiny.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import total_ordering
from typing import Iterator

from repro.errors import ParseError

MAX_IPV4 = (1 << 32) - 1

#: Address used by the RIPE NCC to test probes before shipping (Section 3.3).
TESTING_ADDRESS_TEXT = "193.0.0.78"


@total_ordering
@dataclass(frozen=True)
class IPv4Address:
    """An IPv4 address stored as an unsigned 32-bit integer."""

    value: int

    def __post_init__(self) -> None:
        if not 0 <= self.value <= MAX_IPV4:
            raise ParseError("IPv4 value out of range: %r" % (self.value,))

    @classmethod
    def parse(cls, text: str) -> "IPv4Address":
        """Parse dotted-quad text, rejecting malformed input."""
        octets = text.strip().split(".")
        if len(octets) != 4:
            raise ParseError("malformed IPv4 address: %r" % (text,))
        value = 0
        for octet in octets:
            if not octet.isdigit() or (len(octet) > 1 and octet[0] == "0"):
                raise ParseError("malformed IPv4 octet in %r" % (text,))
            part = int(octet)
            if part > 255:
                raise ParseError("IPv4 octet out of range in %r" % (text,))
            value = (value << 8) | part
        return cls(value)

    def __str__(self) -> str:
        return "%d.%d.%d.%d" % (
            (self.value >> 24) & 0xFF,
            (self.value >> 16) & 0xFF,
            (self.value >> 8) & 0xFF,
            self.value & 0xFF,
        )

    def __lt__(self, other: "IPv4Address") -> bool:
        if not isinstance(other, IPv4Address):
            return NotImplemented
        return self.value < other.value

    def prefix(self, length: int) -> "IPv4Prefix":
        """Return the enclosing prefix of the given length."""
        return IPv4Prefix.containing(self, length)

    def slash16(self) -> "IPv4Prefix":
        """Return the enclosing /16 (Table 7's 'Diff /16' granularity)."""
        return self.prefix(16)

    def slash8(self) -> "IPv4Prefix":
        """Return the enclosing /8 (Table 7's 'Diff /8' granularity)."""
        return self.prefix(8)


@total_ordering
@dataclass(frozen=True)
class IPv4Prefix:
    """A CIDR prefix: ``network`` integer plus prefix ``length``.

    The network value must have all host bits clear; :meth:`containing`
    masks them for you.
    """

    network: int
    length: int

    def __post_init__(self) -> None:
        if not 0 <= self.length <= 32:
            raise ParseError("prefix length out of range: %r" % (self.length,))
        if not 0 <= self.network <= MAX_IPV4:
            raise ParseError("prefix network out of range: %r" % (self.network,))
        if self.network & ~self.mask():
            raise ParseError(
                "prefix %s/%d has host bits set"
                % (IPv4Address(self.network), self.length)
            )

    @classmethod
    def parse(cls, text: str) -> "IPv4Prefix":
        """Parse ``a.b.c.d/len`` text."""
        body, slash, length_text = text.strip().partition("/")
        if not slash or not length_text.isdigit():
            raise ParseError("malformed prefix: %r" % (text,))
        address = IPv4Address.parse(body)
        length = int(length_text)
        if length > 32:
            raise ParseError("prefix length out of range in %r" % (text,))
        prefix = cls.containing(address, length)
        if prefix.network != address.value:
            raise ParseError("prefix %r has host bits set" % (text,))
        return prefix

    @classmethod
    def containing(cls, address: IPv4Address, length: int) -> "IPv4Prefix":
        """Return the length-``length`` prefix that contains ``address``."""
        if not 0 <= length <= 32:
            raise ParseError("prefix length out of range: %r" % (length,))
        mask = 0 if length == 0 else (MAX_IPV4 << (32 - length)) & MAX_IPV4
        return cls(address.value & mask, length)

    def mask(self) -> int:
        """Return the netmask as an integer."""
        if self.length == 0:
            return 0
        return (MAX_IPV4 << (32 - self.length)) & MAX_IPV4

    def __str__(self) -> str:
        return "%s/%d" % (IPv4Address(self.network), self.length)

    def __lt__(self, other: "IPv4Prefix") -> bool:
        if not isinstance(other, IPv4Prefix):
            return NotImplemented
        return (self.network, self.length) < (other.network, other.length)

    @property
    def size(self) -> int:
        """Number of addresses covered by the prefix."""
        return 1 << (32 - self.length)

    def contains(self, address: IPv4Address) -> bool:
        """True when ``address`` falls inside the prefix."""
        return (address.value & self.mask()) == self.network

    def contains_prefix(self, other: "IPv4Prefix") -> bool:
        """True when ``other`` is equal to or more specific than this prefix."""
        if other.length < self.length:
            return False
        return (other.network & self.mask()) == self.network

    def first_address(self) -> IPv4Address:
        """Lowest address in the prefix."""
        return IPv4Address(self.network)

    def last_address(self) -> IPv4Address:
        """Highest address in the prefix."""
        return IPv4Address(self.network + self.size - 1)

    def address_at(self, offset: int) -> IPv4Address:
        """Return the address ``offset`` positions into the prefix."""
        if not 0 <= offset < self.size:
            raise ValueError(
                "offset %d outside prefix %s" % (offset, self)
            )
        return IPv4Address(self.network + offset)

    def iter_addresses(self) -> Iterator[IPv4Address]:
        """Iterate every address in the prefix (use only on small prefixes)."""
        for offset in range(self.size):
            yield IPv4Address(self.network + offset)

    def subprefixes(self, length: int) -> Iterator["IPv4Prefix"]:
        """Iterate the length-``length`` subprefixes of this prefix."""
        if length < self.length:
            raise ValueError(
                "cannot split %s into shorter /%d" % (self, length)
            )
        step = 1 << (32 - length)
        for network in range(self.network, self.network + self.size, step):
            yield IPv4Prefix(network, length)


#: The RIPE NCC testing address as a value (Section 3.3 filtering).
TESTING_ADDRESS = IPv4Address.parse(TESTING_ADDRESS_TEXT)
