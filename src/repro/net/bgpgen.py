"""Synthetic BGP address-space generation.

The paper maps addresses to ASes via Routeviews-derived pfx2as tables.  With
no access to a real routing table, we *generate* one: each simulated ISP is
assigned a set of routed prefixes whose grouping into /16s and /8s is
controlled by an :class:`AddressSpacePlan`.  Table 7's cross-prefix rates
then emerge from how the ISP's pool allocator picks among these prefixes.

The allocator hands out address space from genuinely public /8 blocks and
never overlaps two ASes, so longest-prefix matching behaves like the real
dataset.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError
from repro.net.ipv4 import IPv4Prefix
from repro.net.pfx2as import AsMapping, IpToAsDataset, Pfx2AsSnapshot
from repro.util import timeutil

#: Public /8 first octets we carve synthetic space from.  Reserved and
#: special-use ranges (RFC 1122, 1918, 5737, 3927, multicast, class E) are
#: excluded so generated addresses always look like routable unicast space;
#: 193/8 is additionally reserved for the RIPE NCC testing address
#: 193.0.0.78 that Section 3.3 of the paper filters on.
_PUBLIC_SLASH8_OCTETS: tuple[int, ...] = tuple(
    octet for octet in range(1, 224)
    if octet not in (0, 10, 100, 127, 169, 172, 192, 193, 198, 203)
)


@dataclass(frozen=True)
class AddressSpacePlan:
    """How an AS's routed prefixes are laid out.

    ``num_prefixes`` routed prefixes of ``prefix_length`` are distributed
    round-robin over ``slash16_groups`` distinct /16s, which are in turn
    spread over ``slash8_groups`` distinct /8s.  More groups means address
    changes are more likely to cross /16 and /8 boundaries.
    """

    num_prefixes: int
    prefix_length: int = 20
    slash16_groups: int = 2
    slash8_groups: int = 1

    def __post_init__(self) -> None:
        if self.num_prefixes < 1:
            raise SimulationError("plan needs at least one prefix")
        if not 9 <= self.prefix_length <= 24:
            raise SimulationError(
                "prefix_length %d outside supported 9..24" % self.prefix_length
            )
        if self.slash16_groups < 1 or self.slash8_groups < 1:
            raise SimulationError("group counts must be positive")
        if self.slash16_groups > self.num_prefixes:
            raise SimulationError("more /16 groups than prefixes")
        if self.slash8_groups > self.slash16_groups:
            raise SimulationError("more /8 groups than /16 groups")
        per_slash16 = -(-self.num_prefixes // self.slash16_groups)
        if self.prefix_length >= 16:
            capacity = 1 << (self.prefix_length - 16)
            if per_slash16 > capacity:
                raise SimulationError(
                    "cannot fit %d /%d prefixes in one /16"
                    % (per_slash16, self.prefix_length)
                )


class AddressSpaceAllocator:
    """Hands out non-overlapping routed prefixes for ASes.

    Allocation is deterministic given the allocation order: /8 blocks are
    consumed in a fixed shuffled order derived from ``seed``, and /16s
    within a /8 are consumed sequentially.
    """

    def __init__(self, seed: int = 0) -> None:
        from repro.util.rng import substream

        order = list(_PUBLIC_SLASH8_OCTETS)
        substream(seed, "bgpgen", "slash8-order").shuffle(order)
        self._slash8_order = order
        self._next_slash8 = 0
        self._next_slash16: dict[int, int] = {}
        self._allocated: dict[int, list[IPv4Prefix]] = {}

    def allocated(self, asn: int) -> list[IPv4Prefix]:
        """Return prefixes already allocated to ``asn`` (empty when none)."""
        return list(self._allocated.get(asn, ()))

    def _take_slash8(self) -> int:
        if self._next_slash8 >= len(self._slash8_order):
            raise SimulationError("synthetic address space exhausted")
        octet = self._slash8_order[self._next_slash8]
        self._next_slash8 += 1
        return octet

    def _take_slash16(self, slash8_octet: int) -> IPv4Prefix:
        index = self._next_slash16.get(slash8_octet, 0)
        if index >= 256:
            raise SimulationError("/8 %d exhausted of /16s" % slash8_octet)
        self._next_slash16[slash8_octet] = index + 1
        network = (slash8_octet << 24) | (index << 16)
        return IPv4Prefix(network, 16)

    def allocate(self, asn: int, plan: AddressSpacePlan) -> list[IPv4Prefix]:
        """Allocate the prefixes described by ``plan`` to ``asn``.

        For plans with ``prefix_length < 16`` each prefix occupies its own
        block and grouping degenerates to one prefix per /16 group.
        """
        if asn in self._allocated:
            raise SimulationError("AS %d already allocated" % asn)
        slash8s = [self._take_slash8() for _ in range(plan.slash8_groups)]
        slash16s: list[IPv4Prefix] = []
        for index in range(plan.slash16_groups):
            slash16s.append(self._take_slash16(slash8s[index % len(slash8s)]))

        prefixes: list[IPv4Prefix] = []
        if plan.prefix_length < 16:
            # Shorter-than-/16 prefixes: one per /16 group, aligned to the
            # group's /8 at a fresh boundary.  Rare configuration, used for
            # coarse-pool ISPs.
            for index in range(plan.num_prefixes):
                base16 = slash16s[index % len(slash16s)]
                prefixes.append(
                    IPv4Prefix.containing(base16.first_address(),
                                          plan.prefix_length)
                )
                # Ensure the next /16 taken from this /8 clears the block.
                octet = base16.network >> 24
                span16 = 1 << (16 - plan.prefix_length)
                used = self._next_slash16.get(octet, 0)
                base_index = (base16.network >> 16) & 0xFF
                self._next_slash16[octet] = max(used, base_index + span16)
            deduped = sorted(set(prefixes))
            if len(deduped) != len(prefixes):
                raise SimulationError(
                    "plan for AS %d produced overlapping prefixes" % asn
                )
        else:
            cursor = [0] * len(slash16s)
            step = 1 << (32 - plan.prefix_length)
            for index in range(plan.num_prefixes):
                group = index % len(slash16s)
                base = slash16s[group]
                offset = cursor[group] * step
                cursor[group] += 1
                prefixes.append(
                    IPv4Prefix(base.network + offset, plan.prefix_length)
                )
        self._allocated[asn] = prefixes
        return list(prefixes)

    def build_dataset(self, start: float, end: float) -> IpToAsDataset:
        """Build an :class:`IpToAsDataset` with one snapshot per month.

        Real pfx2as tables change month to month; ours are stable because
        the simulated ISPs do not renumber their announcements.  Stability
        is itself the paper's observation for all but one ISP (Section 8
        found a single administrative renumbering event all year).

        Sessions in flight at the window edge can produce connection-log
        entries that start at or after ``end`` (a segment is cut at the
        session boundary, not the observation boundary), and an address
        change timed by such an entry resolves its origin AS in the month
        *containing* ``end``.  The dataset therefore covers every month
        touching the closed interval ``[start, end]``, not just the
        half-open observation window.
        """
        dataset = IpToAsDataset()
        snapshot = Pfx2AsSnapshot()
        for asn, prefixes in self._allocated.items():
            for prefix in prefixes:
                snapshot.add(AsMapping(prefix, asn))
        months = [(year, month) for year, month, _
                  in timeutil.iter_month_starts(start, end)]
        final = timeutil.month_of(end)
        if final not in months:
            months.append(final)
        for year, month in months:
            monthly = Pfx2AsSnapshot(snapshot.mappings())
            dataset.add_snapshot(year, month, monthly)
        return dataset
