"""Binary radix trie for longest-prefix matching.

The IP-to-AS dataset (Section 3.3 of the paper, CAIDA pfx2as) is consulted
for every address every probe ever held, so lookups must be cheap.  The trie
stores one node per prefix bit along inserted paths and answers
longest-prefix-match in at most 32 steps.
"""

from __future__ import annotations

from typing import Generic, Iterator, TypeVar

from repro.net.ipv4 import IPv4Address, IPv4Prefix

V = TypeVar("V")


class _Node(Generic[V]):
    __slots__ = ("children", "value", "has_value")

    def __init__(self) -> None:
        self.children: list["_Node[V] | None"] = [None, None]
        self.value: V | None = None
        self.has_value = False


class PrefixTrie(Generic[V]):
    """Maps :class:`IPv4Prefix` keys to values with longest-prefix lookup."""

    def __init__(self) -> None:
        self._root: _Node[V] = _Node()
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def insert(self, prefix: IPv4Prefix, value: V) -> None:
        """Insert or replace the value for ``prefix``."""
        node = self._root
        for depth in range(prefix.length):
            bit = (prefix.network >> (31 - depth)) & 1
            child = node.children[bit]
            if child is None:
                child = _Node()
                node.children[bit] = child
            node = child
        if not node.has_value:
            self._size += 1
        node.value = value
        node.has_value = True

    def exact(self, prefix: IPv4Prefix) -> V | None:
        """Return the value stored exactly at ``prefix``, or None."""
        node = self._root
        for depth in range(prefix.length):
            bit = (prefix.network >> (31 - depth)) & 1
            child = node.children[bit]
            if child is None:
                return None
            node = child
        return node.value if node.has_value else None

    def longest_match(self, address: IPv4Address) -> tuple[IPv4Prefix, V] | None:
        """Return the most specific ``(prefix, value)`` covering ``address``."""
        node = self._root
        best: tuple[int, V] | None = None
        if node.has_value:
            best = (0, node.value)  # type: ignore[arg-type]
        for depth in range(32):
            bit = (address.value >> (31 - depth)) & 1
            child = node.children[bit]
            if child is None:
                break
            node = child
            if node.has_value:
                best = (depth + 1, node.value)  # type: ignore[arg-type]
        if best is None:
            return None
        length, value = best
        return IPv4Prefix.containing(address, length), value

    def lookup(self, address: IPv4Address) -> V | None:
        """Return the value of the longest matching prefix, or None."""
        match = self.longest_match(address)
        return None if match is None else match[1]

    def items(self) -> Iterator[tuple[IPv4Prefix, V]]:
        """Yield all ``(prefix, value)`` pairs in address order."""

        def walk(node: _Node[V], network: int, depth: int
                 ) -> Iterator[tuple[IPv4Prefix, V]]:
            if node.has_value:
                yield IPv4Prefix(network, depth), node.value  # type: ignore[misc]
            for bit in (0, 1):
                child = node.children[bit]
                if child is not None:
                    child_network = network | (bit << (31 - depth))
                    yield from walk(child, child_network, depth + 1)

        yield from walk(self._root, 0, 0)
