"""Project-wide call graph and import-reachability map.

The per-file checkers (RPR001–005) see one file at a time; the
interprocedural rules (RPR006–010) need to know what a function *reaches*
across the whole of ``src/repro``.  This module provides the shared
infrastructure: :func:`summarize_source` compresses one parsed file into
a :class:`FileSummary` — functions with their call sites, module-level
writes, imports, stage-graph declarations, ``CODE_VERSION_PACKAGES``
declarations and process-pool usage — and :class:`Project` stitches the
summaries of every linted file into a queryable graph.

Summaries are deliberately plain data (``to_dict``/``from_dict`` round-
trip through JSON) so the incremental lint cache can persist them: a warm
run rebuilds the whole-project graph from cached summaries without
re-parsing a single unchanged file.

Resolution is static and conservative.  Attribute calls rooted in an
imported name resolve to dotted paths; calls on objects fall back to
class-hierarchy analysis (every project class defining the method name is
a candidate); what cannot be resolved at all is *unknown*, and the effect
inference (:mod:`repro.devtools.effects`) treats unknown as impure.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

#: Container methods that mutate their receiver: a call on a module-level
#: receiver is a write to module state.
MUTATOR_METHODS = frozenset({
    "append", "extend", "insert", "add", "update", "clear", "pop",
    "popitem", "remove", "discard", "setdefault", "sort", "reverse",
    "appendleft", "extendleft", "popleft",
})

#: Executor methods that take a task callable as their first argument.
_POOL_DISPATCH = frozenset({"map", "submit"})


@dataclass(frozen=True)
class CallSite:
    """One call expression, resolved as far as a single file allows.

    ``kind`` is ``dotted`` (rooted in an import, target is the expanded
    dotted path), ``local`` (a bare name), ``method`` (attribute dispatch
    on an object, target is the method name), ``super`` (a
    ``super().meth()`` call, resolved against the calling class's
    recorded bases), or ``dynamic`` (the callee itself is computed and
    nothing useful is known).  Keyword names are
    recorded so the effect catalog can distinguish calls whose purity
    depends on an argument (``datetime.fromtimestamp(ts, tz=utc)``).
    """

    kind: str
    target: str
    line: int
    kwargs: tuple[str, ...] = ()

    def to_dict(self) -> dict[str, object]:
        return {"kind": self.kind, "target": self.target, "line": self.line,
                "kwargs": list(self.kwargs)}

    @classmethod
    def from_dict(cls, payload: dict) -> "CallSite":
        return cls(kind=str(payload["kind"]), target=str(payload["target"]),
                   line=int(payload["line"]),
                   kwargs=tuple(payload.get("kwargs", ())))


@dataclass(frozen=True)
class FunctionSummary:
    """One function or method: its call sites and module-state writes."""

    name: str  # module-relative: ``stage_filter`` or ``ProbeFilter.classify``
    line: int
    class_name: str | None
    decorators: tuple[str, ...]
    calls: tuple[CallSite, ...]
    #: ``(module-level name, line)`` pairs this function writes.
    global_writes: tuple[tuple[str, int], ...]
    #: Names of functions defined *inside* this one (their bodies are
    #: folded into this summary, so calls to them are internal).
    local_defs: frozenset[str]

    @property
    def is_public(self) -> bool:
        return not self.name.split(".")[-1].startswith("_")

    def to_dict(self) -> dict[str, object]:
        return {
            "name": self.name,
            "line": self.line,
            "class_name": self.class_name,
            "decorators": list(self.decorators),
            "calls": [site.to_dict() for site in self.calls],
            "global_writes": [[name, line]
                              for name, line in self.global_writes],
            "local_defs": sorted(self.local_defs),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "FunctionSummary":
        return cls(
            name=str(payload["name"]),
            line=int(payload["line"]),
            class_name=payload.get("class_name"),
            decorators=tuple(payload.get("decorators", ())),
            calls=tuple(CallSite.from_dict(site)
                        for site in payload.get("calls", ())),
            global_writes=tuple((str(name), int(line))
                                for name, line in
                                payload.get("global_writes", ())),
            local_defs=frozenset(payload.get("local_defs", ())),
        )


@dataclass(frozen=True)
class StageDecl:
    """One ``StageSpec(...)`` declaration found in a module."""

    stage: str
    func: str  # dotted target of the ``func=`` argument, best-effort
    line: int

    def to_dict(self) -> dict[str, object]:
        return {"stage": self.stage, "func": self.func, "line": self.line}

    @classmethod
    def from_dict(cls, payload: dict) -> "StageDecl":
        return cls(stage=str(payload["stage"]), func=str(payload["func"]),
                   line=int(payload["line"]))


@dataclass(frozen=True)
class PoolSite:
    """A task or initializer handed to a process-pool API."""

    target: str  # dotted path, ``<lambda>``, or ``<nested:NAME>``
    line: int
    role: str  # ``task`` or ``initializer``

    def to_dict(self) -> dict[str, object]:
        return {"target": self.target, "line": self.line, "role": self.role}

    @classmethod
    def from_dict(cls, payload: dict) -> "PoolSite":
        return cls(target=str(payload["target"]), line=int(payload["line"]),
                   role=str(payload["role"]))


@dataclass
class FileSummary:
    """Everything the project-level rules need to know about one file."""

    module: str
    path: str
    imports: tuple[str, ...] = ()
    functions: dict[str, FunctionSummary] = field(default_factory=dict)
    classes: dict[str, tuple[str, ...]] = field(default_factory=dict)
    #: Class name -> env-resolved dotted base refs (RPR011 walks these
    #: so typed method resolution honours inheritance).
    class_bases: dict[str, tuple[str, ...]] = field(default_factory=dict)
    module_names: frozenset[str] = frozenset()
    stage_decls: tuple[StageDecl, ...] = ()
    #: ``(package entries, line)`` of a ``CODE_VERSION_PACKAGES`` binding.
    code_version_decl: tuple[tuple[str, ...], int] | None = None
    pool_sites: tuple[PoolSite, ...] = ()
    #: Non-trivial order-dataflow summaries (RPR009), keyed like
    #: ``functions``; values are :class:`~repro.devtools.ordering.\
    #: FunctionOrderSummary`.
    order: dict = field(default_factory=dict)
    #: Wire-contract declarations (RPR010);
    #: :class:`~repro.devtools.wire.WireDecl` tuples.
    wire_decls: tuple = ()
    #: Non-trivial concurrency/lifecycle summaries (RPR011/RPR012),
    #: keyed like ``functions``; values are :class:`~repro.devtools.\
    #: concurrency.FunctionConcurrencySummary`.
    concurrency: dict = field(default_factory=dict)

    def to_dict(self) -> dict[str, object]:
        return {
            "module": self.module,
            "path": self.path,
            "imports": list(self.imports),
            "functions": {name: fn.to_dict()
                          for name, fn in self.functions.items()},
            "classes": {name: list(methods)
                        for name, methods in self.classes.items()},
            "class_bases": {name: list(bases)
                            for name, bases in self.class_bases.items()},
            "module_names": sorted(self.module_names),
            "stage_decls": [decl.to_dict() for decl in self.stage_decls],
            "code_version_decl": (
                None if self.code_version_decl is None
                else [list(self.code_version_decl[0]),
                      self.code_version_decl[1]]),
            "pool_sites": [site.to_dict() for site in self.pool_sites],
            "order": {name: summary.to_dict()
                      for name, summary in self.order.items()},
            "wire_decls": [decl.to_dict() for decl in self.wire_decls],
            "concurrency": {name: summary.to_dict()
                            for name, summary in self.concurrency.items()},
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "FileSummary":
        from repro.devtools.concurrency import FunctionConcurrencySummary
        from repro.devtools.ordering import FunctionOrderSummary
        from repro.devtools.wire import WireDecl

        decl = payload.get("code_version_decl")
        return cls(
            module=str(payload["module"]),
            path=str(payload["path"]),
            imports=tuple(payload.get("imports", ())),
            functions={name: FunctionSummary.from_dict(fn)
                       for name, fn in payload.get("functions", {}).items()},
            classes={name: tuple(methods)
                     for name, methods in payload.get("classes", {}).items()},
            class_bases={
                name: tuple(bases)
                for name, bases in payload.get("class_bases", {}).items()},
            module_names=frozenset(payload.get("module_names", ())),
            stage_decls=tuple(StageDecl.from_dict(entry)
                              for entry in payload.get("stage_decls", ())),
            code_version_decl=(None if decl is None
                               else (tuple(decl[0]), int(decl[1]))),
            pool_sites=tuple(PoolSite.from_dict(site)
                             for site in payload.get("pool_sites", ())),
            order={name: FunctionOrderSummary.from_dict(entry)
                   for name, entry in payload.get("order", {}).items()},
            wire_decls=tuple(WireDecl.from_dict(entry)
                             for entry in payload.get("wire_decls", ())),
            concurrency={
                name: FunctionConcurrencySummary.from_dict(entry)
                for name, entry in payload.get("concurrency", {}).items()},
        )


# -- summarization -----------------------------------------------------------

def _import_env(tree: ast.Module, module: str,
                is_package: bool) -> tuple[dict[str, str], list[str]]:
    """Local-name -> dotted-target bindings, plus every import target.

    ``from .. import x`` is resolved against ``module``/``is_package`` the
    same way the RPR003 checker does, so relative imports participate in
    reachability.
    """
    env: dict[str, str] = {}
    targets: list[str] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                targets.append(alias.name)
                if alias.asname:
                    env[alias.asname] = alias.name
                else:
                    root = alias.name.split(".")[0]
                    env[root] = root
        elif isinstance(node, ast.ImportFrom):
            base = _absolute_base(node, module, is_package)
            if base is None:
                continue
            if base:
                targets.append(".".join(base))
            for alias in node.names:
                dotted = ".".join(base + [alias.name]) if base else alias.name
                targets.append(dotted)
                env[alias.asname or alias.name] = dotted
    return env, targets


def _absolute_base(node: ast.ImportFrom, module: str,
                   is_package: bool) -> list[str] | None:
    """Absolute dotted path a ``from ... import`` hangs its names off."""
    if node.level == 0:
        return node.module.split(".") if node.module else []
    package = module.split(".")
    if not is_package:
        package = package[:-1]
    drop = node.level - 1
    if drop:
        if drop >= len(package):
            return None
        package = package[:-drop]
    return package + (node.module.split(".") if node.module else [])


def _attribute_parts(expr: ast.expr) -> tuple[list[str], bool]:
    """Flatten an attribute chain; ``(parts, rooted_in_name)``.

    ``a.b.c`` gives ``(["a", "b", "c"], True)``; ``f().close`` gives
    ``(["close"], False)`` — the attribute suffix survives even when the
    root is dynamic, which is what method-dispatch fallback needs.
    """
    parts: list[str] = []
    current = expr
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    parts.reverse()
    if isinstance(current, ast.Name):
        return [current.id] + parts, True
    return parts, False


def _root_name(expr: ast.expr) -> str | None:
    """Base :class:`ast.Name` under a subscript/attribute chain, if any."""
    current = expr
    while isinstance(current, (ast.Attribute, ast.Subscript)):
        current = current.value
    if isinstance(current, ast.Name):
        return current.id
    return None


def _call_site(call: ast.Call, env: dict[str, str]) -> CallSite:
    """Resolve one call expression to a :class:`CallSite`."""
    parts, rooted = _attribute_parts(call.func)
    line = call.lineno
    kwargs = tuple(keyword.arg for keyword in call.keywords
                   if keyword.arg is not None)
    func = call.func
    if (isinstance(func, ast.Attribute) and isinstance(func.value, ast.Call)
            and isinstance(func.value.func, ast.Name)
            and func.value.func.id == "super"):
        # ``super().meth()``: dispatch is up the recorded base chain, not
        # open class-hierarchy analysis — the effect fixpoint resolves it
        # against ``FileSummary.class_bases``.
        return CallSite("super", func.attr, line, kwargs)
    if rooted:
        if len(parts) == 1:
            name = parts[0]
            if name in env:
                return CallSite("dotted", env[name], line, kwargs)
            return CallSite("local", name, line, kwargs)
        root = parts[0]
        if root in env:
            return CallSite("dotted",
                            ".".join([env[root]] + parts[1:]), line, kwargs)
        return CallSite("method", parts[-1], line, kwargs)
    if parts:
        return CallSite("method", parts[-1], line, kwargs)
    return CallSite("dynamic", "", line, kwargs)


def _resolve_ref(expr: ast.expr, env: dict[str, str], module: str,
                 local_defs: frozenset[str] = frozenset()) -> str | None:
    """Dotted target of a callable *reference* (not a call), best-effort."""
    if isinstance(expr, ast.Lambda):
        return "<lambda>"
    parts, rooted = _attribute_parts(expr)
    if not rooted or not parts:
        return None
    if len(parts) == 1:
        name = parts[0]
        if name in local_defs:
            return "<nested:%s>" % name
        if name in env:
            return env[name]
        return "%s.%s" % (module, name)
    root = parts[0]
    if root in env:
        return ".".join([env[root]] + parts[1:])
    return None


class _FunctionAnalyzer:
    """Extracts a :class:`FunctionSummary` plus pool sites from one def."""

    def __init__(self, node: ast.FunctionDef | ast.AsyncFunctionDef,
                 qualname: str, class_name: str | None,
                 env: dict[str, str], module: str,
                 module_names: frozenset[str]) -> None:
        self.node = node
        self.qualname = qualname
        self.class_name = class_name
        self.env = env
        self.module = module
        self.module_names = module_names
        self.pool_sites: list[PoolSite] = []
        self._locals: set[str] = set()

    def run(self) -> FunctionSummary:
        node = self.node
        global_decls: set[str] = set()
        local_defs: set[str] = set()
        locals_: set[str] = set()
        for child in ast.walk(node):
            if isinstance(child, ast.Global):
                global_decls.update(child.names)
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                    ast.ClassDef)) and child is not node:
                local_defs.add(child.name)
            elif isinstance(child, ast.Name) and isinstance(
                    child.ctx, ast.Store):
                locals_.add(child.id)
        for arg in ([*self.node.args.posonlyargs, *self.node.args.args,
                     *self.node.args.kwonlyargs]
                    + ([self.node.args.vararg] if self.node.args.vararg
                       else [])
                    + ([self.node.args.kwarg] if self.node.args.kwarg
                       else [])):
            locals_.add(arg.arg)
        locals_ -= global_decls

        calls: list[CallSite] = []
        writes: list[tuple[str, int]] = []
        frozen_defs = frozenset(local_defs)
        self._locals = locals_
        for child in ast.walk(node):
            if isinstance(child, ast.Call):
                site = _call_site(child, self.env)
                calls.append(site)
                self._check_pool(child, site, frozen_defs)
                self._check_mutator(child, locals_, writes)
            elif isinstance(child, (ast.Assign, ast.AugAssign,
                                    ast.AnnAssign)):
                self._check_store(child, global_decls, locals_, writes)
        decorators = tuple(
            ref for ref in (self._decorator_ref(dec)
                            for dec in node.decorator_list)
            if ref is not None)
        return FunctionSummary(
            name=self.qualname, line=node.lineno, class_name=self.class_name,
            decorators=decorators, calls=tuple(calls),
            global_writes=tuple(writes), local_defs=frozen_defs)

    def _decorator_ref(self, decorator: ast.expr) -> str | None:
        """Dotted name of one decorator (``@f(...)`` resolves ``f``)."""
        target = decorator.func if isinstance(decorator, ast.Call) \
            else decorator
        parts, rooted = _attribute_parts(target)
        if not rooted or not parts:
            return None
        if parts[0] in self.env:
            return ".".join([self.env[parts[0]]] + parts[1:])
        return ".".join(parts)

    def _check_store(self, node, global_decls: set[str], locals_: set[str],
                     writes: list[tuple[str, int]]) -> None:
        targets = (node.targets if isinstance(node, ast.Assign)
                   else [node.target])
        for target in targets:
            for element in self._flatten_target(target):
                if isinstance(element, ast.Name):
                    if element.id in global_decls:
                        writes.append((element.id, node.lineno))
                elif isinstance(element, (ast.Attribute, ast.Subscript)):
                    root = _root_name(element)
                    if (root is not None and root not in locals_
                            and root not in ("self", "cls")
                            and root in self.module_names):
                        writes.append((root, node.lineno))

    @staticmethod
    def _flatten_target(target: ast.expr) -> list[ast.expr]:
        if isinstance(target, (ast.Tuple, ast.List)):
            return list(target.elts)
        return [target]

    def _check_mutator(self, call: ast.Call, locals_: set[str],
                       writes: list[tuple[str, int]]) -> None:
        func = call.func
        if not isinstance(func, ast.Attribute):
            return
        if func.attr not in MUTATOR_METHODS:
            return
        root = _root_name(func.value)
        if (root is not None and root not in locals_
                and root not in ("self", "cls")
                and root in self.module_names):
            writes.append((root, call.lineno))

    def _check_pool(self, call: ast.Call, site: CallSite,
                    local_defs: frozenset[str]) -> None:
        if site.kind == "method" and site.target in _POOL_DISPATCH:
            if not call.args:
                return
            task = call.args[0]
            if (isinstance(task, ast.Name) and task.id in self._locals
                    and task.id not in local_defs):
                return  # a task held in a local: nothing static to check
            ref = _resolve_ref(task, self.env, self.module, local_defs)
            if ref is not None:
                self.pool_sites.append(PoolSite(ref, call.lineno, "task"))
            return
        last = site.target.rsplit(".", 1)[-1] if site.target else ""
        if last == "ProcessPoolExecutor":
            for keyword in call.keywords:
                if keyword.arg == "initializer":
                    ref = _resolve_ref(keyword.value, self.env, self.module,
                                       local_defs)
                    if ref is not None:
                        self.pool_sites.append(
                            PoolSite(ref, call.lineno, "initializer"))


def summarize_source(tree: ast.Module, module: str, path: str,
                     is_package: bool = False) -> FileSummary:
    """Compress one parsed file into a :class:`FileSummary`."""
    # Function-level imports: ordering/wire/concurrency import helpers
    # from this module, so a top-level import would be a cycle.
    from repro.devtools.concurrency import concurrency_summary
    from repro.devtools.ordering import order_summary
    from repro.devtools.wire import extract_wire_decls

    env, targets = _import_env(tree, module, is_package)

    module_names: set[str] = set(env)
    data_names: set[str] = set()
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            module_names.add(node.name)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    module_names.add(target.id)
                    data_names.add(target.id)
        elif isinstance(node, ast.AnnAssign):
            if isinstance(node.target, ast.Name):
                module_names.add(node.target.id)
                data_names.add(node.target.id)
    frozen_names = frozenset(module_names)
    frozen_data = frozenset(data_names)

    functions: dict[str, FunctionSummary] = {}
    classes: dict[str, tuple[str, ...]] = {}
    class_bases: dict[str, tuple[str, ...]] = {}
    pool_sites: list[PoolSite] = []
    order: dict = {}
    concurrency: dict = {}

    def analyze(node, qualname: str, class_name: str | None) -> None:
        analyzer = _FunctionAnalyzer(node, qualname, class_name, env,
                                     module, frozen_names)
        functions[qualname] = analyzer.run()
        pool_sites.extend(analyzer.pool_sites)
        flow = order_summary(node, qualname, env)
        if flow is not None:
            order[qualname] = flow
        facts = concurrency_summary(node, qualname, class_name, env,
                                    module, frozen_data)
        if facts is not None:
            concurrency[qualname] = facts

    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            analyze(node, node.name, None)
        elif isinstance(node, ast.ClassDef):
            methods = []
            for item in node.body:
                if isinstance(item, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                    methods.append(item.name)
                    analyze(item, "%s.%s" % (node.name, item.name),
                            node.name)
            classes[node.name] = tuple(methods)
            bases = []
            for base in node.bases:
                ref = _resolve_ref(base, env, module)
                if ref is not None and not ref.startswith("<"):
                    bases.append(ref)
            class_bases[node.name] = tuple(bases)

    stage_decls = _find_stage_decls(tree, env, module)
    code_version_decl = _find_code_version_decl(tree)

    return FileSummary(
        module=module, path=path, imports=tuple(targets),
        functions=functions, classes=classes, class_bases=class_bases,
        module_names=frozen_names,
        stage_decls=tuple(stage_decls),
        code_version_decl=code_version_decl,
        pool_sites=tuple(pool_sites), order=order,
        wire_decls=tuple(extract_wire_decls(tree, module)),
        concurrency=concurrency)


def _find_stage_decls(tree: ast.Module, env: dict[str, str],
                      module: str) -> list[StageDecl]:
    """Every ``StageSpec(name=..., func=...)`` call in the module."""
    decls: list[StageDecl] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        parts, rooted = _attribute_parts(node.func)
        if not parts or parts[-1] != "StageSpec":
            continue
        name: str | None = None
        func: str | None = None
        if node.args and isinstance(node.args[0], ast.Constant) \
                and isinstance(node.args[0].value, str):
            name = node.args[0].value
        if len(node.args) >= 5:
            func = _resolve_ref(node.args[4], env, module)
        for keyword in node.keywords:
            if keyword.arg == "name" and isinstance(keyword.value,
                                                    ast.Constant):
                name = str(keyword.value.value)
            elif keyword.arg == "func":
                func = _resolve_ref(keyword.value, env, module)
        if name is not None and func is not None:
            decls.append(StageDecl(name, func, node.lineno))
    return decls


def _find_code_version_decl(
        tree: ast.Module) -> tuple[tuple[str, ...], int] | None:
    """A module-level ``CODE_VERSION_PACKAGES = ("...", ...)`` binding."""
    for node in tree.body:
        targets = []
        value = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        for target in targets:
            if (isinstance(target, ast.Name)
                    and target.id == "CODE_VERSION_PACKAGES"
                    and isinstance(value, (ast.Tuple, ast.List))):
                entries = tuple(
                    element.value for element in value.elts
                    if isinstance(element, ast.Constant)
                    and isinstance(element.value, str))
                return entries, node.lineno
    return None


# -- the project graph --------------------------------------------------------

class Project:
    """Every summary of one lint run, stitched into a queryable graph."""

    def __init__(self, summaries: list[FileSummary]) -> None:
        self.summaries: dict[str, FileSummary] = {
            summary.module: summary for summary in summaries}
        #: Path of the ``wire-contracts.json`` governing this run, if one
        #: was discovered or passed explicitly (consumed by RPR010).
        self.contracts_path: str | None = None
        self._methods: dict[str, list[str]] = {}
        self._closures: dict[str, frozenset[str]] = {}
        self._roots: frozenset[str] | None = None
        for module, summary in self.summaries.items():
            for function in summary.functions.values():
                if function.class_name is not None:
                    method = function.name.split(".")[-1]
                    self._methods.setdefault(method, []).append(
                        "%s.%s" % (module, function.name))

    # -- name resolution ----------------------------------------------------

    def resolve_module(self, dotted: str) -> str | None:
        """Longest project-module prefix of ``dotted``, if any."""
        parts = dotted.split(".")
        for length in range(len(parts), 0, -1):
            candidate = ".".join(parts[:length])
            if candidate in self.summaries:
                return candidate
        return None

    def resolve_callable(self, dotted: str,
                         _depth: int = 0) -> tuple[str, str] | None:
        """Resolve a dotted path to a project symbol.

        Returns ``("function", qualname)``, ``("class", qualname)`` or
        ``("module", name)``; chases one-hop re-exports through package
        ``__init__`` imports (bounded depth, so import cycles terminate).
        """
        module = self.resolve_module(dotted)
        if module is None:
            return None
        rest = dotted[len(module) + 1:] if len(dotted) > len(module) else ""
        if not rest:
            return "module", module
        summary = self.summaries[module]
        if rest in summary.functions:
            return "function", "%s.%s" % (module, rest)
        head = rest.split(".")[0]
        if head in summary.classes:
            return "class", "%s.%s" % (module, head)
        if head in summary.functions:
            return "function", "%s.%s" % (module, head)
        if _depth < 5:
            suffix = rest[len(head):]
            for target in summary.imports:
                if target.split(".")[-1] == head:
                    resolved = self.resolve_callable(target + suffix,
                                                     _depth + 1)
                    if resolved is not None:
                        return resolved
        return None

    def constructor_functions(self, class_qualname: str) -> list[str]:
        """``__init__``/``__post_init__`` qualnames of a project class."""
        module, _, class_name = class_qualname.rpartition(".")
        summary = self.summaries.get(module)
        if summary is None:
            return []
        found = []
        for dunder in ("__init__", "__post_init__"):
            name = "%s.%s" % (class_name, dunder)
            if name in summary.functions:
                found.append("%s.%s" % (module, name))
        return found

    def methods_named(self, method: str) -> list[str]:
        """Class-hierarchy candidates for one method name, project-wide."""
        return self._methods.get(method, [])

    def methods_named_from(self, method: str, module: str) -> list[str]:
        """CHA candidates visible from ``module``'s import closure.

        Unrestricted class-hierarchy analysis joins every project class
        defining ``method``, which lets e.g. a ``core`` caller inherit the
        effects of a same-named ``devtools`` method it could never
        dispatch to.  A receiver's class must be importable from the
        calling module (directly or transitively), so candidates are
        filtered to that closure; root-package facades are excluded from
        traversal so re-exports do not stitch every layer together.
        """
        candidates = self._methods.get(method, [])
        if not candidates:
            return []
        closure = self._dispatch_closure(module)
        return [qual for qual in candidates
                if self.resolve_module(qual) in closure]

    def function(self, qualname: str) -> FunctionSummary | None:
        """Look one function summary up by its full qualified name."""
        module = self.resolve_module(qualname)
        if module is None:
            return None
        rest = qualname[len(module) + 1:]
        summary = self.summaries[module]
        return summary.functions.get(rest)

    # -- import reachability ------------------------------------------------

    def ancestor_modules(self, module: str) -> list[str]:
        """Enclosing package modules of ``module`` present in the project."""
        parts = module.split(".")
        found = []
        for length in range(1, len(parts)):
            candidate = ".".join(parts[:length])
            if candidate in self.summaries:
                found.append(candidate)
        return found

    def import_edges(self, module: str) -> set[str]:
        """Project modules that importing ``module`` pulls in directly."""
        summary = self.summaries.get(module)
        if summary is None:
            return set()
        edges: set[str] = set()
        for target in summary.imports:
            resolved = self.resolve_module(target)
            if resolved is not None and resolved != module:
                edges.add(resolved)
                edges.update(self.ancestor_modules(resolved))
        return edges

    def reachable_modules(self, roots: list[str],
                          exclude: frozenset[str] = frozenset(),
                          ) -> dict[str, str | None]:
        """BFS import closure; maps each reached module to its parent.

        ``exclude`` names modules that are neither visited nor traversed
        (the root-package facade, conventionally).  Roots map to ``None``.
        """
        parents: dict[str, str | None] = {}
        queue: list[str] = []
        for root in roots:
            if root in self.summaries and root not in exclude \
                    and root not in parents:
                parents[root] = None
                queue.append(root)
        while queue:
            module = queue.pop(0)
            neighbors = self.import_edges(module)
            neighbors.update(self.ancestor_modules(module))
            for neighbor in sorted(neighbors):
                if neighbor in exclude or neighbor in parents:
                    continue
                parents[neighbor] = module
                queue.append(neighbor)
        return parents

    def root_packages(self) -> frozenset[str]:
        """Top-level packages with children: the facade modules.

        Their ``__init__`` re-exports would otherwise make every subpackage
        reachable from every other, so closure queries exclude them.
        """
        if self._roots is None:
            self._roots = frozenset(
                module for module in self.summaries
                if "." not in module and any(
                    other.startswith(module + ".")
                    for other in self.summaries))
        return self._roots

    def _dispatch_closure(self, module: str) -> frozenset[str]:
        """Memoized import closure of ``module`` for method dispatch."""
        cached = self._closures.get(module)
        if cached is None:
            parents = self.reachable_modules(
                [module], exclude=self.root_packages() - {module})
            cached = frozenset(parents)
            self._closures[module] = cached
        return cached

    def import_chain(self, parents: dict[str, str | None],
                     module: str) -> list[str]:
        """Root-to-module path through a :meth:`reachable_modules` tree."""
        chain = [module]
        seen = {module}
        while True:
            parent = parents.get(chain[-1])
            if parent is None or parent in seen:
                break
            chain.append(parent)
            seen.add(parent)
        chain.reverse()
        return chain
