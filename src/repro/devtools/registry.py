"""Checker registry.

Each checker is a class with a ``rule`` id (``RPR###``), a one-line
``summary`` and a ``check(context)`` generator.  Decorating the class with
:func:`register` instantiates it and adds it to the global registry; the
driver then runs every registered checker (or a requested subset) over each
parsed file.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Iterator, Type, TypeVar

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    from repro.devtools.diagnostics import Diagnostic
    from repro.devtools.driver import FileContext


class Checker:
    """Base class for all lint checkers.

    Subclasses set ``rule`` and ``summary`` and implement :meth:`check` as a
    generator of diagnostics.  Checkers must be stateless: one instance is
    shared across every linted file.
    """

    rule: str = ""
    summary: str = ""

    def check(self, context: "FileContext") -> Iterator["Diagnostic"]:
        raise NotImplementedError

    def diagnostic(self, context: "FileContext", node, message: str) -> "Diagnostic":
        """Build a diagnostic for ``node`` (any ast node with a location)."""
        from repro.devtools.diagnostics import Diagnostic

        return Diagnostic(
            path=context.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule=self.rule,
            message=message,
        )


class ProjectChecker(Checker):
    """Base class for whole-project (interprocedural) checkers.

    Runs once per lint run against the stitched
    :class:`~repro.devtools.callgraph.Project` graph instead of per file.
    The per-file :meth:`Checker.check` hook is a no-op; subclasses
    implement :meth:`check_project`.  ``noqa`` suppression still applies:
    the driver filters project diagnostics against the suppression map of
    whichever file each diagnostic anchors in.
    """

    def check(self, context: "FileContext") -> Iterator["Diagnostic"]:
        return iter(())

    def check_project(self, project, effects) -> Iterator["Diagnostic"]:
        """Yield diagnostics for one ``(Project, EffectAnalysis)`` pair."""
        raise NotImplementedError

    def project_diagnostic(self, path: str, line: int,
                           message: str) -> "Diagnostic":
        """Build a diagnostic anchored at an arbitrary file location."""
        from repro.devtools.diagnostics import Diagnostic

        return Diagnostic(path=path, line=line, col=0, rule=self.rule,
                          message=message)


_CHECKERS: dict[str, Checker] = {}

CheckerT = TypeVar("CheckerT", bound=Type[Checker])


def register(cls: CheckerT) -> CheckerT:
    """Class decorator: instantiate ``cls`` and add it to the registry."""
    checker = cls()
    if not checker.rule:
        raise ValueError("checker %r has no rule id" % (cls.__name__,))
    if checker.rule in _CHECKERS:
        raise ValueError("duplicate checker rule %s" % (checker.rule,))
    _CHECKERS[checker.rule] = checker
    return cls


def all_checkers() -> list[Checker]:
    """Every registered checker, sorted by rule id."""
    _load_builtin_checkers()
    return [_CHECKERS[rule] for rule in sorted(_CHECKERS)]


def checker_for(rule: str) -> Checker:
    """Look up one checker by rule id (raises ``KeyError`` if unknown)."""
    _load_builtin_checkers()
    return _CHECKERS[rule]


def select_checkers(rules: Iterable[str] | None) -> list[Checker]:
    """Resolve a rule-id subset (``None`` means all) to checker instances."""
    if rules is None:
        return all_checkers()
    return [checker_for(rule) for rule in sorted(set(rules))]


def _load_builtin_checkers() -> None:
    """Import the built-in checker modules, registering them as a side effect."""
    from repro.devtools import checkers  # noqa: F401  (registration import)
