"""Incremental lint cache: warm runs skip unchanged files.

The per-file half of a lint run — parsing, the RPR001–005 checks, the
``noqa`` map, and the :class:`~repro.devtools.callgraph.FileSummary` the
interprocedural pass consumes — depends only on one file's bytes.  So
each analyzed file is cached under its content fingerprint
(:func:`repro.util.fingerprint.hash_text`), and a warm run re-analyzes
only files whose fingerprint moved, rebuilding the project graph from
cached summaries for the rest.  The whole-project pass (RPR006–012) is
cheap relative to parsing and always re-runs, so interprocedural
findings stay correct even when *other* files changed.

Two guards keep reuse sound:

* entries store pre-``noqa``, all-rules diagnostics, so one cache serves
  any ``--rules`` selection (filtering happens at report time);
* the cache carries an ``analysis_version`` — the fingerprint of the
  ``repro.devtools`` sources themselves — so editing the analyzer
  invalidates every entry at once.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

import repro.util.fingerprint as fp
from repro.devtools.callgraph import FileSummary
from repro.devtools.diagnostics import Diagnostic

#: Bump when the entry layout changes shape (distinct from
#: ``analysis_version``, which tracks analyzer *behaviour*).
CACHE_FORMAT = 2


def analysis_version() -> str:
    """Fingerprint of the analyzer's own sources.

    Any edit to ``repro.devtools`` may change what a file's cached
    diagnostics or summary would be, so it must invalidate the cache
    wholesale.
    """
    root = Path(__file__).resolve().parent
    return fp.hash_files(sorted(root.rglob("*.py")))


@dataclass
class FileRecord:
    """Everything the driver learned from one file, cache-round-trippable.

    ``diagnostics`` are pre-suppression and cover every per-file rule;
    ``noqa`` maps 1-based line numbers to suppressed rule ids (``"*"``
    meaning all); ``summary`` is ``None`` for files that failed to parse.
    """

    path: str
    source_hash: str
    diagnostics: list[Diagnostic] = field(default_factory=list)
    noqa: dict[int, frozenset[str]] = field(default_factory=dict)
    summary: FileSummary | None = None

    def to_dict(self) -> dict[str, object]:
        return {
            "path": self.path,
            "source_hash": self.source_hash,
            "diagnostics": [d.to_dict() for d in self.diagnostics],
            "noqa": {str(line): sorted(rules)
                     for line, rules in self.noqa.items()},
            "summary": None if self.summary is None else self.summary.to_dict(),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "FileRecord":
        return cls(
            path=str(payload["path"]),
            source_hash=str(payload["source_hash"]),
            diagnostics=[Diagnostic.from_dict(d)
                         for d in payload["diagnostics"]],
            noqa={int(line): frozenset(rules)
                  for line, rules in payload["noqa"].items()},
            summary=None if payload["summary"] is None
            else FileSummary.from_dict(payload["summary"]),
        )


class LintCache:
    """On-disk map from file key to :class:`FileRecord`.

    A *key* is the resolved file path; a lookup hits only when the
    stored source fingerprint matches, so stale entries are simply
    re-analyzed (and overwritten) rather than ever served.
    """

    def __init__(self, path: Path, entries: dict[str, dict],
                 version: str) -> None:
        self.path = path
        self._entries = entries
        self._version = version
        self._dirty = False

    @classmethod
    def load(cls, path: str | Path) -> "LintCache":
        """Open (or start) the cache at ``path``.

        A missing, corrupt, format-bumped or analyzer-stale file all
        degrade to an empty cache: correctness never depends on the
        cache's contents.
        """
        path = Path(path)
        version = analysis_version()
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
            if (payload.get("cache_format") == CACHE_FORMAT
                    and payload.get("analysis_version") == version):
                return cls(path, dict(payload["files"]), version)
        except (OSError, ValueError, KeyError):
            pass
        return cls(path, {}, version)

    def lookup(self, key: str, source_hash: str) -> FileRecord | None:
        """Cached record for ``key`` if its fingerprint still matches."""
        entry = self._entries.get(key)
        if entry is None or entry.get("source_hash") != source_hash:
            return None
        try:
            return FileRecord.from_dict(entry)
        except (KeyError, TypeError, ValueError):
            return None

    def store(self, key: str, record: FileRecord) -> None:
        self._entries[key] = record.to_dict()
        self._dirty = True

    def save(self) -> None:
        """Write the cache back atomically (rename over the old file)."""
        if not self._dirty:
            return
        payload = {
            "cache_format": CACHE_FORMAT,
            "analysis_version": self._version,
            "files": self._entries,
        }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        scratch = self.path.with_suffix(self.path.suffix + ".tmp")
        scratch.write_text(json.dumps(payload), encoding="utf-8")
        scratch.replace(self.path)
        self._dirty = False
