"""Purity and determinism inference over the project call graph.

The runtime's cache-soundness story (DESIGN.md §9–10) rests on stage
functions being *pure*: their outputs a function of their inputs only, so
that ``H(fingerprint, stage, code_version, params)`` addresses exactly one
value.  This module infers, for every function in a
:class:`~repro.devtools.callgraph.Project`, where it sits on a small
effect lattice::

    PURE < READS_ENV < MUTATES_GLOBAL < IO < NONDETERMINISTIC

ordered by how badly the effect undermines caching: reading ambient
configuration makes a result machine-dependent, mutating module state
makes it order-dependent, I/O makes it world-dependent, and
nondeterminism (clocks, OS entropy) makes it unrepeatable outright.

Inference is a fixpoint over the call graph: a function's effect is the
join (max) of its *intrinsic* effects — calls into a catalog of impure
stdlib entry points, writes to module-level state — and the effects of
every callee the graph can resolve.  Unresolvable calls (dynamic
dispatch the class-hierarchy fallback cannot place, computed callables)
conservatively join to :attr:`Effect.NONDETERMINISTIC`: an analyzer that
guesses "pure" on unknown code would certify unsound cache keys.

Every non-PURE verdict carries a witness chain
(:meth:`EffectAnalysis.explain`) from the queried function down to the
intrinsic evidence, so RPR006 findings read as a call path, not a
verdict.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

if TYPE_CHECKING:  # pragma: no cover - type-only import, avoids a cycle
    from repro.devtools.callgraph import CallSite, FunctionSummary, Project


class Effect(enum.IntEnum):
    """The effect lattice; join is :func:`max` over the integer order."""

    PURE = 0
    READS_ENV = 1
    MUTATES_GLOBAL = 2
    IO = 3
    NONDETERMINISTIC = 4


#: Dotted-suffix catalog of impure stdlib entry points.  A call whose
#: resolved dotted path ends with a key (``time.time``, ``os.environ.get``
#: via ``("environ", "get")``) carries the mapped effect.
IMPURE_SUFFIXES: dict[tuple[str, ...], Effect] = {
    # -- nondeterminism: clocks and entropy
    ("time", "time"): Effect.NONDETERMINISTIC,
    ("time", "time_ns"): Effect.NONDETERMINISTIC,
    ("time", "monotonic"): Effect.NONDETERMINISTIC,
    ("time", "monotonic_ns"): Effect.NONDETERMINISTIC,
    ("time", "perf_counter"): Effect.NONDETERMINISTIC,
    ("time", "perf_counter_ns"): Effect.NONDETERMINISTIC,
    ("time", "process_time"): Effect.NONDETERMINISTIC,
    ("datetime", "now"): Effect.NONDETERMINISTIC,
    ("datetime", "utcnow"): Effect.NONDETERMINISTIC,
    ("datetime", "today"): Effect.NONDETERMINISTIC,
    ("date", "today"): Effect.NONDETERMINISTIC,
    ("os", "urandom"): Effect.NONDETERMINISTIC,
    ("uuid", "uuid1"): Effect.NONDETERMINISTIC,
    ("uuid", "uuid4"): Effect.NONDETERMINISTIC,
    # -- environment reads: results become machine-dependent
    ("os", "getenv"): Effect.READS_ENV,
    ("environ", "get"): Effect.READS_ENV,
    ("os", "getcwd"): Effect.READS_ENV,
    ("os", "getpid"): Effect.READS_ENV,
    ("os", "cpu_count"): Effect.READS_ENV,
    ("multiprocessing", "cpu_count"): Effect.READS_ENV,
    # -- I/O
    ("time", "sleep"): Effect.IO,
    ("os", "remove"): Effect.IO,
    ("os", "unlink"): Effect.IO,
    ("os", "rename"): Effect.IO,
    ("os", "replace"): Effect.IO,
    ("os", "mkdir"): Effect.IO,
    ("os", "makedirs"): Effect.IO,
    ("os", "utime"): Effect.IO,
    ("os", "system"): Effect.IO,
    ("os", "listdir"): Effect.IO,
    ("sys", "exit"): Effect.IO,
    ("stdout", "write"): Effect.IO,
    ("stderr", "write"): Effect.IO,
    ("json", "load"): Effect.IO,
    ("json", "dump"): Effect.IO,
    ("pickle", "load"): Effect.IO,
    ("pickle", "dump"): Effect.IO,
}

#: Module prefixes whose entire call surface carries one effect.
#: ``numpy.random`` and numpy's file I/O entry points are listed before
#: the blanket ``numpy.`` pure prefix below catches the rest.
IMPURE_PREFIXES: dict[str, Effect] = {
    "random.": Effect.NONDETERMINISTIC,
    "secrets.": Effect.NONDETERMINISTIC,
    "subprocess.": Effect.IO,
    "socket.": Effect.IO,
    "shutil.": Effect.IO,
    "logging.": Effect.IO,
    "tempfile.": Effect.IO,
    "platform.": Effect.READS_ENV,
    "numpy.random.": Effect.NONDETERMINISTIC,
    "numpy.load": Effect.IO,
    "numpy.save": Effect.IO,
    "numpy.loadtxt": Effect.IO,
    "numpy.savetxt": Effect.IO,
    "numpy.genfromtxt": Effect.IO,
    "numpy.fromfile": Effect.IO,
    "numpy.memmap": Effect.IO,
}

#: Exceptions to the prefix rules, checked first: a seeded
#: ``random.Random(seed)`` is a deterministic value constructor (RPR001
#: separately polices the unseeded form).
IMPURE_PREFIX_EXEMPT = frozenset({"random.Random"})

#: The in-project observability layer (``repro.obs``).  Deliberately NOT
#: catalogued or exempted: its functions are project code, and the
#: fixpoint infers them impure from their intrinsic evidence
#: (``time.perf_counter`` reads, ``os.getpid`` guards, trace-file I/O).
#: That is the DESIGN.md §11 boundary working as designed — a cached
#: stage kernel that grows a call into this layer stops inferring PURE
#: and RPR006 reports it with a witness chain ending at the clock read,
#: so instrumentation can only live in executor/driver code that is
#: never addressed by a cache key.
OBSERVABILITY_LAYER = "repro.obs"

#: Stdlib module prefixes that are pure by contract (value computation
#: only).  ``json.load``/``pickle.dump`` stream variants are caught by the
#: suffix catalog before these prefixes apply.
PURE_PREFIXES = (
    "math.", "itertools.", "functools.", "statistics.", "heapq.",
    "bisect.", "collections.", "re.", "operator.", "string.", "textwrap.",
    "enum.", "dataclasses.", "copy.", "decimal.", "fractions.",
    "hashlib.", "struct.", "binascii.", "json.", "pickle.", "abc.",
    "typing.", "ipaddress.", "array.", "difflib.", "unicodedata.",
    "datetime.", "calendar.", "zoneinfo.",
    # The columnar kernels (DESIGN.md §16) are built on numpy's array
    # calculus, which is deterministic value computation; the
    # nondeterministic (numpy.random) and file-I/O entry points are
    # carved out by IMPURE_PREFIXES above, which win by catalog order.
    "numpy.",
)

#: Calls whose purity hinges on an argument.  ``datetime.fromtimestamp``
#: is a deterministic conversion when given an explicit ``tz``, but reads
#: the host timezone database without one.
TZ_SENSITIVE_SUFFIX = ("datetime", "fromtimestamp")

#: Builtins that compute values without observable effects.  Mutation of
#: *local* data (``setattr`` on an object the caller built) is treated as
#: pure: the analysis polices module-level state separately.
PURE_BUILTINS = frozenset({
    "abs", "all", "any", "ascii", "bin", "bool", "bytearray", "bytes",
    "callable", "chr", "classmethod", "complex", "dict", "divmod",
    "enumerate", "filter", "float", "format", "frozenset", "getattr",
    "hasattr", "hash", "hex", "id", "int", "isinstance", "issubclass",
    "iter", "len", "list", "map", "max", "min", "next", "object", "oct",
    "ord", "pow", "property", "range", "repr", "reversed", "round",
    "set", "setattr", "slice", "sorted", "staticmethod", "str", "sum",
    "super", "tuple", "type", "zip",
    # exception constructors raised by pure validation code
    "ArithmeticError", "AssertionError", "AttributeError", "BaseException",
    "Exception", "FileNotFoundError", "IndexError", "KeyError",
    "LookupError", "NotImplementedError", "OSError", "OverflowError",
    "RuntimeError", "StopIteration", "TypeError", "ValueError",
    "ZeroDivisionError",
})

#: Builtin callables with effects, matched on bare-name calls.
IMPURE_BUILTINS: dict[str, Effect] = {
    "open": Effect.IO,
    "print": Effect.IO,
    "input": Effect.IO,
    "breakpoint": Effect.IO,
    "exit": Effect.IO,
    "quit": Effect.IO,
    "globals": Effect.READS_ENV,
    "locals": Effect.READS_ENV,
    "vars": Effect.READS_ENV,
    "eval": Effect.NONDETERMINISTIC,
    "exec": Effect.NONDETERMINISTIC,
    "compile": Effect.NONDETERMINISTIC,
    "__import__": Effect.NONDETERMINISTIC,
}

#: Method names that perform I/O on any plausible receiver (file objects,
#: :class:`pathlib.Path`).  Checked only after class-hierarchy resolution
#: fails, so a project class may define e.g. ``write`` with pure meaning.
IO_METHODS = frozenset({
    "read", "write", "readline", "readlines", "writelines", "flush",
    "close", "seek", "read_text", "write_text", "read_bytes",
    "write_bytes", "unlink", "mkdir", "rmdir", "touch", "rename",
    "glob", "rglob", "iterdir", "stat", "exists", "is_file", "is_dir",
    "resolve", "hardlink_to", "symlink_to", "samefile",
})

#: Method names treated as pure when dispatch cannot be resolved to a
#: project class: the shared vocabulary of builtin containers, strings,
#: hashes and compiled regexes.  Receiver mutation (``append`` on a local
#: list) is pure under the local-mutation stance; mutator calls on
#: *module-level* receivers are caught as global writes instead.
PURE_METHODS = frozenset({
    # containers
    "append", "extend", "insert", "add", "update", "clear", "pop",
    "popitem", "remove", "discard", "setdefault", "get", "items", "keys",
    "values", "copy", "count", "index", "sort", "reverse",
    "union", "intersection", "difference", "symmetric_difference",
    "issubset", "issuperset", "isdisjoint", "most_common", "elements",
    # strings / bytes
    "join", "split", "rsplit", "splitlines", "partition", "rpartition",
    "strip", "lstrip", "rstrip", "startswith", "endswith", "lower",
    "upper", "title", "capitalize", "casefold", "replace", "format",
    "format_map", "encode", "decode", "find", "rfind", "ljust", "rjust",
    "center", "zfill", "isdigit", "isalpha", "isalnum", "isspace",
    "isupper", "islower", "isidentifier", "expandtabs", "removeprefix",
    "removesuffix",
    # hashlib digests
    "hexdigest", "digest", "copy",
    # re match objects / compiled patterns
    "match", "fullmatch", "search", "findall", "finditer", "sub", "subn",
    "group", "groups", "groupdict", "start", "end", "span", "compile",
    # namedtuple / dataclass conveniences
    "_replace", "_asdict",
    # datetime / date / time value accessors
    "timetuple", "utctimetuple", "toordinal", "timestamp", "isoformat",
    "weekday", "isoweekday", "isocalendar", "date", "time",
    # pathlib value accessors (no filesystem access)
    "as_posix", "with_suffix", "with_name", "relative_to", "joinpath",
    "is_absolute",
    # sorting conveniences
    "total_seconds",
    # numpy ndarray value computation (the columnar kernels' working
    # vocabulary; numpy file I/O goes through module-level functions
    # catalogued impure, not array methods)
    "tolist", "astype", "searchsorted", "cumsum", "nonzero", "reshape",
    "tobytes", "newbyteorder", "item", "argsort", "ravel", "clip",
    "take", "repeat", "fill", "view", "any", "all", "min", "max", "sum",
    "mean",
    # seeded random.Random drawing methods (the unseeded constructor is
    # RPR001's job, mirroring the random.Random prefix exemption)
    "shuffle", "choice", "sample", "randint", "randrange", "uniform",
    "random", "gauss", "betavariate", "expovariate",
})

#: Decorators that preserve the decorated function's effect verdict.
#: ``functools.lru_cache`` is the canonical member: memoizing a pure
#: function is observationally pure (and the runtime relies on exactly
#: this for its per-probe kernels).  Matched on the final path component.
PRESERVING_DECORATORS = frozenset({
    "lru_cache", "cache", "cached_property", "wraps", "property",
    "staticmethod", "classmethod", "abstractmethod", "contextmanager",
    "overload", "dataclass", "total_ordering", "final",
})


def catalog_effect(dotted: str) -> Effect | None:
    """Effect of a *non-project* dotted call target, ``None`` if unknown.

    Resolution order: exact exemptions, the impure suffix catalog, impure
    module prefixes, pure module prefixes.  ``None`` means the catalog
    has no opinion and the caller must treat the call as unresolved.
    """
    if dotted in IMPURE_PREFIX_EXEMPT:
        return Effect.PURE
    parts = tuple(dotted.split("."))
    for length in (3, 2):
        if len(parts) >= length and parts[-length:] in IMPURE_SUFFIXES:
            return IMPURE_SUFFIXES[parts[-length:]]
    for prefix, effect in IMPURE_PREFIXES.items():
        if dotted.startswith(prefix):
            return effect
    for prefix in PURE_PREFIXES:
        if dotted.startswith(prefix):
            return Effect.PURE
    return None


@dataclass(frozen=True)
class Evidence:
    """Why a function carries its effect.

    ``via`` is the qualified name of the callee the effect propagated
    from, or ``None`` when the evidence is intrinsic to the function —
    then ``detail``/``line`` point at the offending call or write.
    """

    effect: Effect
    detail: str
    line: int
    via: str | None = None


class EffectAnalysis:
    """Fixpoint effect inference over one :class:`Project`.

    Build once per lint run; :meth:`effect_of` and :meth:`explain` answer
    queries for every function the project defines.
    """

    def __init__(self, project: "Project") -> None:
        self.project = project
        self._effects: dict[str, Effect] = {}
        self._evidence: dict[str, Evidence] = {}
        self._edges: dict[str, list[str]] = {}
        self._seed()
        self._solve()

    # -- queries ------------------------------------------------------------

    def effect_of(self, qualname: str) -> Effect:
        """Inferred effect of a project function (PURE if undefined here)."""
        return self._effects.get(qualname, Effect.PURE)

    def explain(self, qualname: str) -> list[str]:
        """Witness chain from ``qualname`` down to intrinsic evidence."""
        chain: list[str] = []
        seen: set[str] = set()
        current: str | None = qualname
        while current is not None and current not in seen:
            seen.add(current)
            chain.append(current)
            evidence = self._evidence.get(current)
            if evidence is None:
                break
            if evidence.via is None:
                chain.append("%s (line %d)" % (evidence.detail, evidence.line))
                break
            current = evidence.via
        return chain

    # -- construction -------------------------------------------------------

    def _seed(self) -> None:
        """Intrinsic effects and call edges for every project function."""
        for module, summary in self.project.summaries.items():
            for function in summary.functions.values():
                qualname = "%s.%s" % (module, function.name)
                edges: list[str] = []
                worst = Evidence(Effect.PURE, "", 0)
                for name, line in function.global_writes:
                    worst = self._join(worst, Evidence(
                        Effect.MUTATES_GLOBAL,
                        "write to module-level '%s'" % name, line))
                for site in function.calls:
                    worst = self._join(worst, self._classify_call(
                        module, summary, function, site, edges))
                for decorator in function.decorators:
                    worst = self._join(worst, self._classify_decorator(
                        decorator, function, edges))
                self._effects[qualname] = worst.effect
                if worst.effect is not Effect.PURE:
                    self._evidence[qualname] = worst
                self._edges[qualname] = edges

    @staticmethod
    def _join(current: Evidence, candidate: Evidence | None) -> Evidence:
        if candidate is None or candidate.effect <= current.effect:
            return current
        return candidate

    def _classify_call(self, module: str, summary, function,
                       site: "CallSite", edges: list[str]) -> Evidence | None:
        """Evidence (or ``None``) for one call site; appends graph edges."""
        project = self.project
        if site.kind == "dynamic":
            return Evidence(Effect.NONDETERMINISTIC,
                            "call on a computed callable", site.line)
        if site.kind == "dotted":
            resolved = project.resolve_callable(site.target)
            if resolved is not None:
                kind, qualname = resolved
                if kind == "function":
                    edges.append(qualname)
                    return None
                if kind == "class":
                    edges.extend(project.constructor_functions(qualname))
                    return None
                return None  # bare module reference; not callable evidence
            parts = tuple(site.target.split("."))
            if parts[-2:] == TZ_SENSITIVE_SUFFIX:
                if "tz" in site.kwargs:
                    return None
                return Evidence(
                    Effect.READS_ENV,
                    "%s() without tz= reads the host timezone" % site.target,
                    site.line)
            effect = catalog_effect(site.target)
            if effect is None:
                return Evidence(
                    Effect.NONDETERMINISTIC,
                    "unresolvable call '%s()'" % site.target, site.line)
            if effect is Effect.PURE:
                return None
            return Evidence(effect, "%s()" % site.target, site.line)
        if site.kind == "local":
            name = site.target
            if name in function.local_defs:
                return None  # nested def: its body is folded into ours
            if name == "cls" and function.class_name is not None:
                # classmethod constructing its own class
                edges.extend(project.constructor_functions(
                    "%s.%s" % (module, function.class_name)))
                return None
            if name in summary.functions:
                edges.append("%s.%s" % (module, name))
                return None
            if name in summary.classes:
                edges.extend(project.constructor_functions(
                    "%s.%s" % (module, name)))
                return None
            if name in PURE_BUILTINS:
                return None
            if name in IMPURE_BUILTINS:
                return Evidence(IMPURE_BUILTINS[name], "%s()" % name,
                                site.line)
            return Evidence(Effect.NONDETERMINISTIC,
                            "unresolvable call '%s()'" % name, site.line)
        if site.kind == "super":
            # ``super().meth()``: resolve against the recorded base chain
            # for a precise edge; an external (non-project) base falls
            # through to the class-hierarchy fallback below.
            resolved_up = self._super_methods(module, function.class_name,
                                              site.target)
            if resolved_up:
                edges.extend(resolved_up)
                return None
        # method dispatch: class-hierarchy fallback over project classes
        # visible from the calling module's import closure, else the
        # builtin-method vocabulary, else unknown -> impure.
        candidates = project.methods_named_from(site.target, module)
        if candidates:
            edges.extend(candidates)
            return None
        if site.target in PURE_METHODS:
            return None
        if site.target in IO_METHODS:
            return Evidence(Effect.IO, ".%s()" % site.target, site.line)
        return Evidence(Effect.NONDETERMINISTIC,
                        "unresolved method '.%s()'" % site.target, site.line)

    def _super_methods(self, module: str, class_name: str | None,
                       method: str, _depth: int = 0) -> list[str]:
        """Qualnames a ``super().<method>()`` call can dispatch to.

        Walks the recorded base-class refs upward (bounded, so a base
        cycle terminates), collecting the nearest definition of
        ``method`` along each branch.  Returns ``[]`` when no project
        base defines it — the caller then falls back to plain
        class-hierarchy dispatch.
        """
        if class_name is None or _depth > 10:
            return []
        summary = self.project.summaries.get(module)
        if summary is None:
            return []
        found: list[str] = []
        for base in summary.class_bases.get(class_name, ()):
            resolved = self.project.resolve_callable(base)
            if resolved is None or resolved[0] != "class":
                continue
            base_module, _, base_class = resolved[1].rpartition(".")
            base_summary = self.project.summaries.get(base_module)
            if base_summary is None:
                continue
            name = "%s.%s" % (base_class, method)
            if name in base_summary.functions:
                found.append("%s.%s" % (base_module, name))
            else:
                found.extend(self._super_methods(
                    base_module, base_class, method, _depth + 1))
        return found

    def _classify_decorator(self, decorator: str, function,
                            edges: list[str]) -> Evidence | None:
        last = decorator.rsplit(".", 1)[-1]
        if last in PRESERVING_DECORATORS:
            return None
        resolved = self.project.resolve_callable(decorator)
        if resolved is not None and resolved[0] == "function":
            edges.append(resolved[1])
            return None
        if resolved is not None:
            return None  # decorating with a project class (rare, benign)
        return Evidence(
            Effect.NONDETERMINISTIC,
            "unknown decorator '@%s' may replace the function" % decorator,
            function.line)

    def _solve(self) -> None:
        """Iterate effect propagation to a fixpoint (lattice is finite)."""
        changed = True
        while changed:
            changed = False
            for qualname, edges in self._edges.items():
                current = self._effects[qualname]
                for callee in edges:
                    callee_effect = self._effects.get(callee, Effect.PURE)
                    if callee_effect > current:
                        current = callee_effect
                        self._evidence[qualname] = Evidence(
                            callee_effect, "calls %s" % callee, 0,
                            via=callee)
                        changed = True
                self._effects[qualname] = current


def render_chain(chain: Iterable[str]) -> str:
    """Human-readable witness chain for diagnostics."""
    return " -> ".join(chain)
