"""``repro-lint`` — command-line front end for :mod:`repro.devtools`.

Usage::

    repro-lint src/repro                # lint the tree, human-readable output
    repro-lint --json src/repro         # machine-readable diagnostics
    repro-lint --rules RPR003 src/repro # run a subset of rules
    repro-lint --list-rules             # print the rule catalog

Exits 0 when no error-severity diagnostics were produced, 1 otherwise, and
2 on usage errors (e.g. an unknown rule id).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from repro.devtools.diagnostics import Severity
from repro.devtools.driver import lint_paths
from repro.devtools.registry import all_checkers


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Static analysis for the repro codebase "
                    "(determinism, time units, layering, errors, dataclasses).",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit diagnostics as a JSON array on stdout",
    )
    parser.add_argument(
        "--rules", default=None, metavar="RPR001,RPR003",
        help="comma-separated subset of rule ids to run (default: all)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog and exit",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    options = build_parser().parse_args(argv)

    if options.list_rules:
        for checker in all_checkers():
            print("%s  %s" % (checker.rule, checker.summary))
        return 0

    rules = None
    if options.rules is not None:
        rules = [rule.strip().upper() for rule in options.rules.split(",")
                 if rule.strip()]
        known = {checker.rule for checker in all_checkers()}
        unknown = sorted(set(rules) - known)
        if unknown:
            print("repro-lint: unknown rule(s): %s" % ", ".join(unknown),
                  file=sys.stderr)
            return 2
        if not rules:
            print("repro-lint: --rules given but empty; pass rule ids or "
                  "omit the flag to run every rule", file=sys.stderr)
            return 2

    try:
        diagnostics = lint_paths(options.paths, rules=rules)
    except OSError as error:
        print("repro-lint: cannot read %s: %s"
              % (getattr(error, "filename", "path"), error.strerror or error),
              file=sys.stderr)
        return 2

    if options.as_json:
        print(json.dumps([d.to_dict() for d in diagnostics], indent=2))
    else:
        for diagnostic in diagnostics:
            print(diagnostic.format())
        if diagnostics:
            print("repro-lint: %d finding(s)" % len(diagnostics),
                  file=sys.stderr)

    failed = any(d.severity is Severity.ERROR for d in diagnostics)
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
