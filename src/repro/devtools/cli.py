"""``repro-lint`` — command-line front end for :mod:`repro.devtools`.

Usage::

    repro-lint src/repro                     # lint the tree, text output
    repro-lint --json src/repro              # machine-readable diagnostics
    repro-lint --format sarif --output lint.sarif src/repro
    repro-lint --rules RPR003 src/repro      # run a subset of rules
    repro-lint --cache .lint-cache.json src/repro   # warm runs skip files
    repro-lint --baseline lint-baseline.json src/repro  # gate on regression
    repro-lint --baseline lint-baseline.json --update-baseline src/repro
    repro-lint --contracts wire-contracts.json src/repro  # pin RPR010 file
    repro-lint --contracts wire-contracts.json --update-contracts src/repro
    repro-lint --list-rules                  # print the rule catalog
    repro-lint --explain RPR011              # one rule's full documentation

Exits 0 when no (non-baselined) error-severity diagnostics were produced,
1 otherwise, and 2 on usage errors (e.g. an unknown rule id).

The ``--json`` payload is an object carrying ``schema_version`` (bumped on
any breaking change to the payload shape, so CI consumers can detect
format drift), the ``findings`` array, and the incremental-cache
counters.  Text output is stable and unversioned.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from repro.devtools.diagnostics import Severity
from repro.devtools.driver import run_lint
from repro.devtools.registry import all_checkers

#: Version of the ``--json`` payload shape.  1 was the bare findings array
#: (no version field — the bug this field fixes); 2 is the current object.
JSON_SCHEMA_VERSION = 2


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Static analysis for the repro codebase "
                    "(determinism, time units, layering, errors, dataclasses, "
                    "stage purity, cache soundness, worker state, order "
                    "taint, wire contracts, thread-role races, resource "
                    "lifecycles).",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--json", action="store_true", dest="as_json",
        help="shorthand for --format json",
    )
    parser.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--output", default=None, metavar="FILE",
        help="write formatted output to FILE instead of stdout",
    )
    parser.add_argument(
        "--rules", default=None, metavar="RPR001,RPR003",
        help="comma-separated subset of rule ids to run (default: all)",
    )
    parser.add_argument(
        "--cache", default=None, metavar="FILE", dest="cache_path",
        help="incremental analysis cache; warm runs skip unchanged files",
    )
    parser.add_argument(
        "--baseline", default=None, metavar="FILE",
        help="accepted-findings file; only non-baselined findings fail",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite the --baseline file from the current findings",
    )
    parser.add_argument(
        "--contracts", default=None, metavar="FILE",
        help="wire-contract file RPR010 checks against (default: nearest "
             "wire-contracts.json at or above a linted path)",
    )
    parser.add_argument(
        "--update-contracts", action="store_true",
        help="regenerate the --contracts file from the current source, "
             "bumping the version of every changed entry",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog and exit",
    )
    parser.add_argument(
        "--explain", default=None, metavar="RPR0NN",
        help="print one rule's full documentation (what it flags, why, "
             "and how to fix or suppress findings) and exit",
    )
    return parser


def _explain(rule: str) -> int:
    """Print the documentation of ``rule``'s checker module."""
    import importlib

    rule = rule.strip().upper()
    for checker in all_checkers():
        if checker.rule != rule:
            continue
        module = importlib.import_module(type(checker).__module__)
        doc = (module.__doc__ or "").strip()
        print("%s  %s" % (checker.rule, checker.summary))
        if doc:
            print()
            print(doc)
        return 0
    print("repro-lint: unknown rule %r; --list-rules shows the catalog"
          % rule, file=sys.stderr)
    return 2


def _update_contracts(paths: Sequence[str], contracts: str) -> int:
    """Regenerate ``contracts`` from the wire declarations under ``paths``."""
    import ast as ast_module

    from repro.devtools.driver import iter_python_files, module_name_for
    from repro.devtools.wire import (
        build_contracts,
        extract_wire_decls,
        load_contracts,
        write_contracts,
    )

    decls = []
    for path in iter_python_files(paths):
        try:
            tree = ast_module.parse(path.read_text(encoding="utf-8"),
                                    filename=str(path))
        except SyntaxError:
            continue  # the lint run proper reports this as RPR000
        decls.extend(extract_wire_decls(tree, module_name_for(path)))
    existing: dict[str, dict] = {}
    try:
        existing = load_contracts(contracts)
    except (OSError, ValueError):
        pass  # first generation, or a file bad enough to rebuild
    write_contracts(build_contracts(decls, existing), contracts)
    print("repro-lint: wrote %d wire contract(s) to %s"
          % (len(decls), contracts), file=sys.stderr)
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    options = build_parser().parse_args(argv)
    if options.as_json:
        options.format = "json"

    if options.list_rules:
        for checker in all_checkers():
            print("%s  %s" % (checker.rule, checker.summary))
        return 0

    if options.explain is not None:
        return _explain(options.explain)

    if options.update_baseline and options.baseline is None:
        print("repro-lint: --update-baseline requires --baseline FILE",
              file=sys.stderr)
        return 2

    if options.update_contracts and options.contracts is None:
        print("repro-lint: --update-contracts requires --contracts FILE",
              file=sys.stderr)
        return 2

    rules = None
    if options.rules is not None:
        rules = [rule.strip().upper() for rule in options.rules.split(",")
                 if rule.strip()]
        known = {checker.rule for checker in all_checkers()}
        unknown = sorted(set(rules) - known)
        if unknown:
            print("repro-lint: unknown rule(s): %s" % ", ".join(unknown),
                  file=sys.stderr)
            return 2
        if not rules:
            print("repro-lint: --rules given but empty; pass rule ids or "
                  "omit the flag to run every rule", file=sys.stderr)
            return 2

    if options.update_contracts:
        try:
            return _update_contracts(options.paths, options.contracts)
        except OSError as error:
            print("repro-lint: cannot update contracts %s: %s"
                  % (options.contracts, error.strerror or error),
                  file=sys.stderr)
            return 2

    try:
        result = run_lint(options.paths, rules=rules,
                          cache_path=options.cache_path,
                          contracts_path=options.contracts)
    except OSError as error:
        print("repro-lint: cannot read %s: %s"
              % (getattr(error, "filename", "path"), error.strerror or error),
              file=sys.stderr)
        return 2

    if options.cache_path is not None:
        print("repro-lint: analyzed %d file(s), skipped %d unchanged"
              % (result.files_analyzed, result.files_skipped),
              file=sys.stderr)

    if options.update_baseline:
        from repro.devtools.baseline import write_baseline

        write_baseline(result.diagnostics, options.baseline)
        print("repro-lint: wrote %d finding(s) to %s"
              % (len(result.diagnostics), options.baseline), file=sys.stderr)
        return 0

    diagnostics = result.diagnostics
    if options.baseline is not None:
        from repro.devtools.baseline import filter_new, load_baseline

        try:
            accepted = load_baseline(options.baseline)
        except (OSError, ValueError) as error:
            print("repro-lint: cannot load baseline %s: %s"
                  % (options.baseline, error), file=sys.stderr)
            return 2
        diagnostics = filter_new(diagnostics, accepted)

    if options.format == "json":
        rendered = json.dumps({
            "schema_version": JSON_SCHEMA_VERSION,
            "findings": [d.to_dict() for d in diagnostics],
            "files_analyzed": result.files_analyzed,
            "files_skipped": result.files_skipped,
        }, indent=2)
    elif options.format == "sarif":
        from repro.devtools.sarif import to_sarif

        rendered = json.dumps(to_sarif(diagnostics), indent=2)
    else:
        rendered = "\n".join(d.format() for d in diagnostics)

    if options.output is not None:
        with open(options.output, "w", encoding="utf-8") as stream:
            stream.write(rendered + "\n")
    elif rendered:
        print(rendered)
    if options.format == "text" and diagnostics:
        print("repro-lint: %d finding(s)" % len(diagnostics), file=sys.stderr)

    failed = any(d.severity is Severity.ERROR for d in diagnostics)
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
