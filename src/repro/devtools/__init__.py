"""repro.devtools — in-tree static analysis for the repro codebase.

A zero-dependency (stdlib :mod:`ast` only) lint framework that machine-checks
the invariants this reproduction depends on:

* **determinism** — every random draw flows through a seeded
  :class:`random.Random` substream (RPR001);
* **time-unit safety** — all time arithmetic is written in terms of the
  :mod:`repro.util.timeutil` constants, never magic second counts (RPR002);
* **layer architecture** — the package DAG
  ``util -> net -> {dhcp, ppp} -> isp -> atlas -> sim -> core -> experiments``
  only ever points downward (RPR003);
* **error policy** — no generic ``raise Exception`` or bare ``except:``
  (RPR004);
* **dataclass hygiene** — value-object dataclasses are frozen and mutable
  defaults use ``field(default_factory=...)`` (RPR005).

Run it as ``repro-lint src/repro`` (or ``python -m repro.devtools``); findings
on a line can be suppressed with a ``# repro: noqa[RPR001]`` comment.

This package is deliberately self-contained: it imports nothing from the rest
of ``repro`` so that it can lint a broken tree, and the layer checker pins it
outside the runtime DAG.
"""

from repro.devtools.diagnostics import Diagnostic, Severity
from repro.devtools.driver import FileContext, lint_paths, lint_source
from repro.devtools.registry import Checker, all_checkers, checker_for, register

__all__ = [
    "Checker",
    "Diagnostic",
    "FileContext",
    "Severity",
    "all_checkers",
    "checker_for",
    "lint_paths",
    "lint_source",
    "register",
]
