"""repro.devtools — in-tree static analysis for the repro codebase.

A zero-dependency (stdlib :mod:`ast` only) lint framework that machine-checks
the invariants this reproduction depends on:

* **determinism** — every random draw flows through a seeded
  :class:`random.Random` substream (RPR001);
* **time-unit safety** — all time arithmetic is written in terms of the
  :mod:`repro.util.timeutil` constants, never magic second counts (RPR002);
* **layer architecture** — the package DAG
  ``util -> net -> {dhcp, ppp} -> isp -> atlas -> sim -> core -> runtime ->
  experiments`` only ever points downward (RPR003);
* **error policy** — no generic ``raise Exception`` or bare ``except:``
  (RPR004);
* **dataclass hygiene** — value-object dataclasses are frozen and mutable
  defaults use ``field(default_factory=...)`` (RPR005);
* **stage purity** — every function in the runtime stage graph infers PURE
  on the effect lattice (RPR006);
* **cache-key soundness** — the stage graph's transitive import closure is
  covered by the ``CODE_VERSION_PACKAGES`` hash set (RPR007);
* **worker state** — pool tasks are picklable and worker modules mutate
  only initializer-owned globals (RPR008);
* **order stability** — order-unstable values (sets, directory listings)
  pass a sort barrier before reaching digests, serialization or cached
  artifacts (RPR009);
* **wire contracts** — serialized boundary types match the checked-in
  ``wire-contracts.json``, with a version bump on change (RPR010).

RPR001–005 are per-file AST checks.  RPR006–010 are *interprocedural*:
:mod:`repro.devtools.callgraph` summarizes every file into a project-wide
call graph and import-reachability map, :mod:`repro.devtools.effects`
infers each function's position on the effect lattice
``PURE < READS_ENV < MUTATES_GLOBAL < IO < NONDETERMINISTIC`` by fixpoint
over that graph, and :mod:`repro.devtools.ordering` runs the order-taint
dataflow the same way.

Run it as ``repro-lint src/repro`` (or ``python -m repro.devtools``); findings
on a line can be suppressed with a ``# repro: noqa[RPR001]`` comment.  The
driver supports incremental runs (``--cache``), SARIF output for CI
annotations (``--format sarif``) and regression gating against a
checked-in baseline (``--baseline`` / ``--update-baseline``).

This package sits outside the runtime layer DAG: nothing imports it, and it
imports only the leaf layers (``repro.errors``, ``repro.util``) so that it
can lint a broken tree.
"""

from repro.devtools.diagnostics import Diagnostic, Severity
from repro.devtools.driver import (
    FileContext,
    LintResult,
    lint_paths,
    lint_source,
    run_lint,
)
from repro.devtools.registry import (
    Checker,
    ProjectChecker,
    all_checkers,
    checker_for,
    register,
)

__all__ = [
    "Checker",
    "Diagnostic",
    "FileContext",
    "LintResult",
    "ProjectChecker",
    "Severity",
    "all_checkers",
    "checker_for",
    "lint_paths",
    "lint_source",
    "register",
    "run_lint",
]
