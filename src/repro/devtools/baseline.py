"""Finding baselines: gate CI on *regression*, not on history.

A baseline file records the findings a tree is known (and accepted) to
have; a gated run then fails only on findings *not* in the baseline, so
a new rule can land before every legacy violation is fixed.  Matching is
a multiset over ``(path, rule, message)`` — line numbers are excluded on
purpose, so unrelated edits that shift a known finding up or down the
file do not resurrect it, while a *second* instance of the same finding
(count exceeded) is still reported.

Workflow: ``repro-lint --update-baseline lint-baseline.json`` snapshots
the current findings; ``repro-lint --baseline lint-baseline.json`` in CI
fails only on new ones.  The checked-in baseline for this repository is
empty — the tree lints clean — so the file exists purely as the gating
mechanism for future rule introductions.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Iterable

from repro.devtools.diagnostics import Diagnostic

#: Version of the baseline file layout.
BASELINE_FORMAT = 1


def _key(diagnostic: Diagnostic) -> tuple[str, str, str]:
    return (diagnostic.path, diagnostic.rule, diagnostic.message)


def write_baseline(diagnostics: Iterable[Diagnostic],
                   path: str | Path) -> None:
    """Snapshot ``diagnostics`` as the accepted baseline at ``path``."""
    entries = [
        {"path": p, "rule": rule, "message": message, "count": count}
        for (p, rule, message), count in sorted(
            Counter(_key(d) for d in diagnostics).items())
    ]
    payload = {"baseline_format": BASELINE_FORMAT, "findings": entries}
    Path(path).write_text(json.dumps(payload, indent=2) + "\n",
                          encoding="utf-8")


def load_baseline(path: str | Path) -> Counter:
    """Load a baseline into a multiset of finding keys.

    Raises ``ValueError`` on a malformed file: silently treating a broken
    baseline as empty would fail CI on every accepted finding at once,
    which is noisy, while treating it as infinite would mask regressions.
    """
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
        if payload.get("baseline_format") != BASELINE_FORMAT:
            raise ValueError("unsupported baseline_format: %r"
                             % (payload.get("baseline_format"),))
        accepted: Counter = Counter()
        for entry in payload["findings"]:
            key = (str(entry["path"]), str(entry["rule"]),
                   str(entry["message"]))
            accepted[key] += int(entry.get("count", 1))
        return accepted
    except (KeyError, TypeError) as exc:
        raise ValueError("malformed baseline file %s: %s" % (path, exc))


def filter_new(diagnostics: Iterable[Diagnostic],
               accepted: Counter) -> list[Diagnostic]:
    """Diagnostics not covered by the baseline multiset.

    Each accepted ``(path, rule, message)`` key absorbs up to its count
    of matching findings (in sorted order); everything beyond that is a
    regression and is returned.
    """
    budget = Counter(accepted)
    fresh: list[Diagnostic] = []
    for diagnostic in sorted(diagnostics):
        key = _key(diagnostic)
        if budget[key] > 0:
            budget[key] -= 1
        else:
            fresh.append(diagnostic)
    return fresh
