"""Wire-contract extraction and drift detection (the RPR010 engine).

Several value shapes in this codebase cross a process or persistence
boundary: ``ShardResult`` is pickled from worker to parent, artifact
cache entries are pickled to disk and read back by later runs, and the
``repro-obs-trace-1`` payload is JSON consumed by external tooling.
Changing one of these is not a private refactor — it silently breaks
cached artifacts from earlier code versions and, once the distributed
coordinator lands (ROADMAP item 3), mixed-version workers.

The forcing function is a checked-in ``wire-contracts.json``.  Types and
schema constants opt in with a syntactic marker the analyzer extracts
statically (no imports, no execution):

* a class-body marker names a dataclass contract, whose annotated
  fields/defaults become the spec::

      @dataclass
      class ShardResult:
          __wire_contract__ = "shard-result"
          payload: object
          spans: list = field(default_factory=list)

* a module-level marker maps contract names to the module constants that
  define a schema::

      __wire_contract__ = {"obs-trace": ("TRACE_SCHEMA", "_EVENT_FIELDS")}

Field annotations, defaults, and constant values are captured as
``ast.unparse`` source text, so specs survive values that are not JSON
(type objects in ``_EVENT_FIELDS``, ``field(default_factory=...)``).
RPR010 recomputes each spec from source and fails when it no longer
matches the contract file; regeneration (``repro-lint --contracts FILE
--update-contracts``) bumps the version of every changed entry and
refreshes its digest.  The digest covers ``(name, version, spec)``, so a
hand-edit that updates the spec without bumping the version is also
caught.
"""

from __future__ import annotations

import ast
import json
from dataclasses import dataclass
from pathlib import Path

import repro.util.fingerprint as fp

#: The class-body / module-level marker name.
MARKER = "__wire_contract__"

#: Version of the contract-file layout itself (not of any one contract).
WIRE_CONTRACT_FORMAT = 1

#: Spec value recorded when a declared schema constant does not exist.
MISSING = "<missing constant>"


@dataclass(frozen=True)
class WireField:
    """One annotated field of a contract-marked class."""

    name: str
    annotation: str
    default: str | None = None

    def to_dict(self) -> list[object]:
        return [self.name, self.annotation, self.default]

    @classmethod
    def from_dict(cls, payload: list) -> "WireField":
        return cls(name=str(payload[0]), annotation=str(payload[1]),
                   default=None if payload[2] is None else str(payload[2]))


@dataclass(frozen=True)
class WireDecl:
    """One wire-contract declaration found in one module."""

    contract: str
    kind: str  # ``class`` | ``module``
    qualname: str  # dotted class name, or the module for constant sets
    line: int
    fields: tuple[WireField, ...] = ()
    constants: tuple[tuple[str, str], ...] = ()

    def spec(self) -> dict[str, object]:
        """The drift-checked shape of this declaration."""
        body: dict[str, object] = {"kind": self.kind,
                                   "source": self.qualname}
        if self.kind == "class":
            body["fields"] = [field.to_dict() for field in self.fields]
        else:
            body["constants"] = {name: value
                                 for name, value in self.constants}
        return body

    def to_dict(self) -> dict[str, object]:
        return {"contract": self.contract, "kind": self.kind,
                "qualname": self.qualname, "line": self.line,
                "fields": [field.to_dict() for field in self.fields],
                "constants": [[name, value]
                              for name, value in self.constants]}

    @classmethod
    def from_dict(cls, payload: dict) -> "WireDecl":
        return cls(
            contract=str(payload["contract"]), kind=str(payload["kind"]),
            qualname=str(payload["qualname"]), line=int(payload["line"]),
            fields=tuple(WireField.from_dict(entry)
                         for entry in payload.get("fields", ())),
            constants=tuple((str(name), str(value))
                            for name, value in payload.get("constants",
                                                           ())))


def _marker_string(node: ast.stmt) -> str | None:
    """The contract name if ``node`` is ``__wire_contract__ = "..."``."""
    if not isinstance(node, ast.Assign) or len(node.targets) != 1:
        return None
    target = node.targets[0]
    if not (isinstance(target, ast.Name) and target.id == MARKER):
        return None
    if isinstance(node.value, ast.Constant) \
            and isinstance(node.value.value, str):
        return node.value.value
    return None


def _marker_mapping(node: ast.stmt) -> dict[str, tuple[str, ...]] | None:
    """Contract-name -> constant-names if ``node`` is the module marker."""
    if not isinstance(node, ast.Assign) or len(node.targets) != 1:
        return None
    target = node.targets[0]
    if not (isinstance(target, ast.Name) and target.id == MARKER):
        return None
    if not isinstance(node.value, ast.Dict):
        return None
    mapping: dict[str, tuple[str, ...]] = {}
    for key, value in zip(node.value.keys, node.value.values):
        if not (isinstance(key, ast.Constant)
                and isinstance(key.value, str)):
            continue
        names: list[str] = []
        if isinstance(value, (ast.Tuple, ast.List)):
            for element in value.elts:
                if isinstance(element, ast.Constant) \
                        and isinstance(element.value, str):
                    names.append(element.value)
        mapping[key.value] = tuple(names)
    return mapping or None


def extract_wire_decls(tree: ast.Module, module: str) -> list[WireDecl]:
    """Every wire-contract declaration in one parsed module."""
    decls: list[WireDecl] = []
    module_constants: dict[str, str] = {}
    for node in tree.body:
        if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                and isinstance(node.targets[0], ast.Name) \
                and node.targets[0].id != MARKER:
            module_constants[node.targets[0].id] = ast.unparse(node.value)
        elif isinstance(node, ast.AnnAssign) and node.value is not None \
                and isinstance(node.target, ast.Name):
            module_constants[node.target.id] = ast.unparse(node.value)

    for node in tree.body:
        mapping = _marker_mapping(node)
        if mapping is not None:
            for contract, names in sorted(mapping.items()):
                constants = tuple(
                    (name, module_constants.get(name, MISSING))
                    for name in names)
                decls.append(WireDecl(
                    contract=contract, kind="module", qualname=module,
                    line=node.lineno, constants=constants))
            continue
        if not isinstance(node, ast.ClassDef):
            continue
        contract = None
        marker_line = node.lineno
        fields: list[WireField] = []
        for item in node.body:
            name = _marker_string(item)
            if name is not None:
                contract = name
                marker_line = item.lineno
            elif isinstance(item, ast.AnnAssign) \
                    and isinstance(item.target, ast.Name):
                fields.append(WireField(
                    name=item.target.id,
                    annotation=ast.unparse(item.annotation),
                    default=None if item.value is None
                    else ast.unparse(item.value)))
        if contract is not None:
            decls.append(WireDecl(
                contract=contract, kind="class",
                qualname="%s.%s" % (module, node.name),
                line=marker_line, fields=tuple(fields)))
    return decls


# -- the contract file --------------------------------------------------------

def contract_digest(contract: str, version: int,
                    spec: dict[str, object]) -> str:
    """Digest binding a contract entry's name, version, and spec."""
    return fp.hash_text(json.dumps([contract, version, spec],
                                   sort_keys=True))


def load_contracts(path: str | Path) -> dict[str, dict]:
    """``contract-name -> entry`` from a contract file.

    Raises ``ValueError`` on malformed payloads (wrapped ``OSError``
    passes through for the caller to report).
    """
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    if not isinstance(payload, dict) \
            or payload.get("wire_contract_format") != WIRE_CONTRACT_FORMAT:
        raise ValueError("unsupported wire-contract format in %s" % (path,))
    contracts = payload.get("contracts")
    if not isinstance(contracts, dict):
        raise ValueError("no 'contracts' object in %s" % (path,))
    return contracts


def build_contracts(decls: list[WireDecl],
                    existing: dict[str, dict] | None = None
                    ) -> dict[str, object]:
    """The full contract-file payload for ``decls``.

    Entries whose spec is unchanged keep their version and digest; new
    entries start at version 1; changed entries get a version bump and a
    fresh digest.
    """
    existing = existing or {}
    contracts: dict[str, dict] = {}
    for decl in sorted(decls, key=lambda d: d.contract):
        spec = decl.spec()
        previous = existing.get(decl.contract)
        if previous is not None and previous.get("spec") == spec:
            contracts[decl.contract] = dict(previous)
            continue
        version = 1
        if previous is not None:
            version = int(previous.get("version", 0)) + 1
        contracts[decl.contract] = {
            "version": version,
            "digest": contract_digest(decl.contract, version, spec),
            "spec": spec,
        }
    return {"wire_contract_format": WIRE_CONTRACT_FORMAT,
            "contracts": contracts}


def write_contracts(payload: dict[str, object], path: str | Path) -> None:
    """Write a contract-file payload with a stable, diff-friendly layout."""
    Path(path).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
        encoding="utf-8")
