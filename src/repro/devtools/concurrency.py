"""Thread-role and resource-lifecycle analysis (the RPR011/RPR012 engine).

PR 8's distributed layer made the codebase genuinely concurrent: the
coordinator spawns one handler thread per worker connection, workers run
daemon heartbeat threads, and sockets, channels and executors are opened
on many error paths.  The reproducibility story — bit-identical digests
and exact accounting — now depends on hand-maintained thread discipline
that nothing in RPR001–010 can see.  This module supplies the two
missing interprocedural analyses:

* **Thread roles (RPR011).**  Every function starts in the implicit
  ``main`` role; each ``threading.Thread(target=...)`` site (and each
  ``add_done_callback`` registration) roots a new role at its resolved
  target, and roles propagate along resolved call edges.  A shared
  location — a ``self`` attribute or a module-level data global —
  written from one role and accessed from another is a race unless
  every access holds one *consistent* ``with <lock>`` guard (locks are
  matched textually, and lock context propagates interprocedurally:
  a callee whose every in-role call site sits under ``with self._lock``
  inherits that guard as an entry guard), the attribute is
  thread-confined (written only in ``__init__``/``__post_init__``,
  before the object can be shared), or it is an intrinsically safe
  type (:data:`SAFE_TYPE_NAMES`, pinned as an RPR010 wire contract) or
  a sanctioned RPR008 initializer-owned worker global.

* **Resource lifecycles (RPR012).**  A path-sensitive walk of each
  function tracks obligations for sockets, channels, file handles,
  executors and temporary files/directories: every acquisition must be
  discharged on all paths by a ``with`` block, a close call reached
  from every path (``try``/``finally`` or a closing handler), or an
  ownership transfer — returning the resource, passing it to a callee
  (e.g. handing a socket to a handler thread), or storing it on a
  field that some method of the class releases.  Calls to project
  functions that *return* an open resource (found by a fixpoint over
  return facts) create the same obligation in the caller, which is
  what makes the witness chains interprocedural.

Both analyses run from serializable per-function facts
(:class:`FunctionConcurrencySummary`) stored on the
:class:`~repro.devtools.callgraph.FileSummary`, so warm incremental
runs replay the whole-project pass without re-parsing.

Known under-approximations (documented in DESIGN.md §15): closure
variables shared with nested thread targets are not tracked; lock
identity is textual (two locks spelled ``self._lock`` on different
objects unify); constructor accesses are assumed to happen before any
thread can see the object; and cross-instance aliasing is ignored, so
distinct per-thread instances of one class share an attribute group
(suppress with a justified noqa when instances are thread-confined).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

#: Types whose instances are intrinsically safe to share across thread
#: roles (internally synchronized by CPython).  Pinned as an RPR010 wire
#: contract: growing this set is a reviewed, versioned change.
SAFE_TYPE_NAMES = (
    "threading.Event",
    "threading.Lock",
    "threading.RLock",
    "threading.Condition",
    "threading.Semaphore",
    "threading.BoundedSemaphore",
    "threading.Barrier",
    "queue.Queue",
    "queue.LifoQueue",
    "queue.PriorityQueue",
    "queue.SimpleQueue",
)

__wire_contract__ = {"concurrency-safe-types": ("SAFE_TYPE_NAMES",)}

SAFE_TYPES = frozenset(SAFE_TYPE_NAMES)

#: Methods that release a tracked resource.
CLOSE_METHODS = frozenset({"close", "shutdown", "terminate", "cleanup"})

#: Dotted two-part suffixes that acquire a resource.
RESOURCE_SUFFIXES: dict[tuple[str, str], str] = {
    ("socket", "socket"): "socket",
    ("socket", "create_connection"): "socket",
    ("socket", "create_server"): "socket",
    ("tempfile", "TemporaryDirectory"): "temporary directory",
    ("tempfile", "NamedTemporaryFile"): "temporary file",
}

#: Bare class names (last dotted part) that acquire a resource.
RESOURCE_CLASSES: dict[str, str] = {
    "ProcessPoolExecutor": "executor",
    "ThreadPoolExecutor": "executor",
    "TemporaryDirectory": "temporary directory",
    "NamedTemporaryFile": "temporary file",
    "Channel": "channel",
    "FaultyChannel": "channel",
}

#: The implicit role every function can run under.
MAIN_ROLE = "<main>"

#: Cap on class-hierarchy candidates consulted per method call.
_MAX_CANDIDATES = 8


def _tuple_dicts(items) -> list:
    return [item.to_dict() for item in items]


@dataclass(frozen=True)
class ThreadSpawn:
    """One thread-root site: a Thread target or a done-callback."""

    target: str  # dotted, ``<nested:NAME>``, ``<self:NAME>`` or ``<lambda>``
    line: int
    kind: str  # ``thread`` | ``callback``

    def to_dict(self) -> dict[str, object]:
        return {"target": self.target, "line": self.line, "kind": self.kind}

    @classmethod
    def from_dict(cls, payload: dict) -> "ThreadSpawn":
        return cls(target=str(payload["target"]), line=int(payload["line"]),
                   kind=str(payload["kind"]))


@dataclass(frozen=True)
class SharedAccess:
    """One read or write of a shared location, with its lock context.

    ``owner`` is the name of the first-level nested function the access
    occurs in (thread targets are often nested), or ``""`` for the
    function body proper; ``guards`` are the textual ``with`` contexts
    (non-call name/attribute expressions, i.e. lock-shaped) active at
    the access.
    """

    scope: str  # ``attr`` | ``global``
    name: str
    line: int
    mode: str  # ``read`` | ``write``
    guards: tuple[str, ...] = ()
    owner: str = ""

    def to_dict(self) -> dict[str, object]:
        return {"scope": self.scope, "name": self.name, "line": self.line,
                "mode": self.mode, "guards": list(self.guards),
                "owner": self.owner}

    @classmethod
    def from_dict(cls, payload: dict) -> "SharedAccess":
        return cls(scope=str(payload["scope"]), name=str(payload["name"]),
                   line=int(payload["line"]), mode=str(payload["mode"]),
                   guards=tuple(payload.get("guards", ())),
                   owner=str(payload.get("owner", "")))


@dataclass(frozen=True)
class GuardedCall:
    """One call site annotated with lock context and nested-def owner.

    ``recv`` is a receiver-type hint for ``method`` calls: ``"<self>"``
    for ``self.meth()``, ``"<attr:NAME>"`` for ``self.NAME.meth()``
    (resolved through the class's recorded attribute types), or the
    dotted constructor type of a local receiver.  Empty means unknown,
    in which case resolution falls back to name-based CHA.
    """

    kind: str  # ``dotted`` | ``local`` | ``method``
    target: str
    line: int
    guards: tuple[str, ...] = ()
    owner: str = ""
    recv: str = ""

    def to_dict(self) -> dict[str, object]:
        return {"kind": self.kind, "target": self.target, "line": self.line,
                "guards": list(self.guards), "owner": self.owner,
                "recv": self.recv}

    @classmethod
    def from_dict(cls, payload: dict) -> "GuardedCall":
        return cls(kind=str(payload["kind"]), target=str(payload["target"]),
                   line=int(payload["line"]),
                   guards=tuple(payload.get("guards", ())),
                   owner=str(payload.get("owner", "")),
                   recv=str(payload.get("recv", "")))


@dataclass(frozen=True)
class Leak:
    """A resource acquired in this function that some path never closes.

    ``kind`` is ``exception`` (a statement between acquisition and
    discharge can raise while the obligation is open and unprotected)
    or ``unclosed`` (a path reaches function exit with it open).
    """

    kind: str
    resource: str
    name: str
    acq_line: int
    line: int  # the risky line (``exception``) or exit evidence line

    def to_dict(self) -> dict[str, object]:
        return {"kind": self.kind, "resource": self.resource,
                "name": self.name, "acq_line": self.acq_line,
                "line": self.line}

    @classmethod
    def from_dict(cls, payload: dict) -> "Leak":
        return cls(kind=str(payload["kind"]),
                   resource=str(payload["resource"]),
                   name=str(payload["name"]),
                   acq_line=int(payload["acq_line"]),
                   line=int(payload["line"]))


@dataclass(frozen=True)
class PendingLeak:
    """A would-be leak whose resource-ness depends on the callee.

    The local was bound from a project call; if the project-level
    fixpoint proves the callee returns an open resource, this becomes a
    real :class:`Leak` with an interprocedural witness chain.
    """

    kind: str  # ``exception`` | ``unclosed``
    call_kind: str  # ``dotted`` | ``local``
    call_target: str
    name: str
    acq_line: int
    line: int

    def to_dict(self) -> dict[str, object]:
        return {"kind": self.kind, "call_kind": self.call_kind,
                "call_target": self.call_target, "name": self.name,
                "acq_line": self.acq_line, "line": self.line}

    @classmethod
    def from_dict(cls, payload: dict) -> "PendingLeak":
        return cls(kind=str(payload["kind"]),
                   call_kind=str(payload["call_kind"]),
                   call_target=str(payload["call_target"]),
                   name=str(payload["name"]),
                   acq_line=int(payload["acq_line"]),
                   line=int(payload["line"]))


@dataclass(frozen=True)
class FieldTransfer:
    """An open resource stored on ``self``: the class now owns closing it.

    ``resource`` is empty (and ``call_kind``/``call_target`` set) when
    the stored value came from a project call whose resource-ness the
    project pass must resolve.
    """

    attr: str
    resource: str
    line: int
    call_kind: str = ""
    call_target: str = ""

    def to_dict(self) -> dict[str, object]:
        return {"attr": self.attr, "resource": self.resource,
                "line": self.line, "call_kind": self.call_kind,
                "call_target": self.call_target}

    @classmethod
    def from_dict(cls, payload: dict) -> "FieldTransfer":
        return cls(attr=str(payload["attr"]),
                   resource=str(payload["resource"]),
                   line=int(payload["line"]),
                   call_kind=str(payload.get("call_kind", "")),
                   call_target=str(payload.get("call_target", "")))


@dataclass(frozen=True)
class FunctionConcurrencySummary:
    """The concurrency/lifecycle facts of one function, serializable."""

    name: str
    class_name: str | None = None
    is_ctor: bool = False
    spawns: tuple[ThreadSpawn, ...] = ()
    accesses: tuple[SharedAccess, ...] = ()
    calls: tuple[GuardedCall, ...] = ()
    #: ``(attr, dotted constructor)`` for ``self.x = threading.Lock()``-
    #: style assigns; safe-type matching happens at project level.
    attr_types: tuple[tuple[str, str], ...] = ()
    leaks: tuple[Leak, ...] = ()
    pending_leaks: tuple[PendingLeak, ...] = ()
    field_transfers: tuple[FieldTransfer, ...] = ()
    #: Attributes some close method is called on (``self.x.close()``).
    attr_closes: tuple[str, ...] = ()
    #: ``(resource kind, acquisition line)`` when this function returns
    #: an open resource it acquired.
    returns_resource: tuple[str, int] | None = None
    #: ``(call kind, call target, line)`` when the returned value came
    #: from a call the project pass must resolve.
    pending_returns: tuple[tuple[str, str, int], ...] = ()

    @property
    def is_trivial(self) -> bool:
        return not (self.spawns or self.accesses or self.calls
                    or self.attr_types or self.leaks or self.pending_leaks
                    or self.field_transfers or self.attr_closes
                    or self.returns_resource or self.pending_returns)

    def to_dict(self) -> dict[str, object]:
        return {
            "name": self.name,
            "class_name": self.class_name,
            "is_ctor": self.is_ctor,
            "spawns": _tuple_dicts(self.spawns),
            "accesses": _tuple_dicts(self.accesses),
            "calls": _tuple_dicts(self.calls),
            "attr_types": [[attr, dotted]
                           for attr, dotted in self.attr_types],
            "leaks": _tuple_dicts(self.leaks),
            "pending_leaks": _tuple_dicts(self.pending_leaks),
            "field_transfers": _tuple_dicts(self.field_transfers),
            "attr_closes": list(self.attr_closes),
            "returns_resource": (None if self.returns_resource is None
                                 else list(self.returns_resource)),
            "pending_returns": [list(entry)
                                for entry in self.pending_returns],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "FunctionConcurrencySummary":
        returns = payload.get("returns_resource")
        return cls(
            name=str(payload["name"]),
            class_name=payload.get("class_name"),
            is_ctor=bool(payload.get("is_ctor", False)),
            spawns=tuple(ThreadSpawn.from_dict(entry)
                         for entry in payload.get("spawns", ())),
            accesses=tuple(SharedAccess.from_dict(entry)
                           for entry in payload.get("accesses", ())),
            calls=tuple(GuardedCall.from_dict(entry)
                        for entry in payload.get("calls", ())),
            attr_types=tuple((str(attr), str(dotted)) for attr, dotted
                             in payload.get("attr_types", ())),
            leaks=tuple(Leak.from_dict(entry)
                        for entry in payload.get("leaks", ())),
            pending_leaks=tuple(PendingLeak.from_dict(entry)
                                for entry in payload.get("pending_leaks",
                                                         ())),
            field_transfers=tuple(FieldTransfer.from_dict(entry)
                                  for entry in payload.get("field_transfers",
                                                           ())),
            attr_closes=tuple(payload.get("attr_closes", ())),
            returns_resource=(None if returns is None
                              else (str(returns[0]), int(returns[1]))),
            pending_returns=tuple(
                (str(kind), str(target), int(line))
                for kind, target, line in payload.get("pending_returns",
                                                      ())),
        )


# -- role/guard fact extraction ----------------------------------------------

def _guard_text(expr: ast.expr) -> str | None:
    """The lock-shaped text of a ``with`` context, or ``None``.

    Lock-shaped means a bare name or attribute chain (``lock``,
    ``self._lock``) — a call (``open(...)``, ``TemporaryDirectory()``)
    manages something, but does not name a re-enterable guard.
    """
    current = expr
    while isinstance(current, ast.Attribute):
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    try:
        return ast.unparse(expr)
    except (ValueError, AttributeError):  # pragma: no cover - unparse is
        return None                       # total on Name/Attribute chains


class _ConcurrencyExtractor:
    """Collects spawns, shared accesses and guarded calls from one def."""

    def __init__(self, node: ast.FunctionDef | ast.AsyncFunctionDef,
                 env: dict[str, str], module: str, class_name: str | None,
                 data_globals: frozenset[str]) -> None:
        self.node = node
        self.env = env
        self.module = module
        self.class_name = class_name
        self.data_globals = data_globals
        self.spawns: list[ThreadSpawn] = []
        self.accesses: list[SharedAccess] = []
        self.calls: list[GuardedCall] = []
        self.attr_types: list[tuple[str, str]] = []
        self.attr_closes: list[str] = []
        self._guards: list[str] = []
        self._owner = ""
        self._global_decls: set[str] = set()
        self._locals: set[str] = set()
        self._local_defs: frozenset[str] = frozenset()
        #: local name -> dotted constructor type (``board = LeaseBoard()``)
        self._local_types: dict[str, str] = {}
        #: local name -> element type of a list/comp of constructor calls
        self._elem_types: dict[str, str] = {}

    def run(self) -> None:
        node = self.node
        local_defs: set[str] = set()
        for child in ast.walk(node):
            if isinstance(child, ast.Global):
                self._global_decls.update(child.names)
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                    ast.ClassDef)) and child is not node:
                local_defs.add(child.name)
            elif isinstance(child, ast.Name) and isinstance(
                    child.ctx, ast.Store):
                self._locals.add(child.id)
        args = node.args
        for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs,
                    *([args.vararg] if args.vararg else []),
                    *([args.kwarg] if args.kwarg else [])):
            self._locals.add(arg.arg)
            if arg.annotation is not None:
                dotted = self._annotation_type(arg.annotation)
                if dotted is not None:
                    self._local_types[arg.arg] = dotted
        self._locals -= self._global_decls
        self._local_defs = frozenset(local_defs)
        self._stmts(node.body)

    # -- recording helpers ---------------------------------------------------

    def _access(self, scope: str, name: str, line: int, mode: str) -> None:
        self.accesses.append(SharedAccess(
            scope=scope, name=name, line=line, mode=mode,
            guards=tuple(self._guards), owner=self._owner))

    def _self_attr(self, expr: ast.expr) -> str | None:
        """First-level attribute name of a ``self.x...`` chain, if any."""
        if self.class_name is None:
            return None
        current = expr
        while isinstance(current, (ast.Attribute, ast.Subscript)):
            if isinstance(current, ast.Attribute) and isinstance(
                    current.value, ast.Name) and current.value.id == "self":
                return current.attr
            current = current.value
        return None

    def _is_shared_global(self, name: str) -> bool:
        return (name in self.data_globals and name not in self._locals
                and name != name.upper())

    # -- statements ----------------------------------------------------------

    def _stmts(self, body: list[ast.stmt]) -> None:
        for stmt in body:
            self._stmt(stmt)

    def _stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # A first-level nested def is a potential thread target: its
            # body runs in the spawned thread, with no inherited locks.
            outer_owner, outer_guards = self._owner, self._guards
            if not self._owner:
                self._owner = stmt.name
            self._guards = []
            try:
                self._stmts(stmt.body)
            finally:
                self._owner, self._guards = outer_owner, outer_guards
            return
        if isinstance(stmt, ast.ClassDef):
            return
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            pushed = 0
            for item in stmt.items:
                guard = _guard_text(item.context_expr)
                if guard is not None:
                    self._guards.append(guard)
                    pushed += 1
                else:
                    self._expr(item.context_expr)
                if item.optional_vars is not None:
                    self._store_target(item.optional_vars, stmt.lineno)
            try:
                self._stmts(stmt.body)
            finally:
                for _ in range(pushed):
                    self._guards.pop()
            return
        if isinstance(stmt, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            self._assign(stmt)
            return
        if isinstance(stmt, ast.Expr):
            self._expr(stmt.value)
            return
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._expr(stmt.iter)
            self._seed_loop_types(stmt.target, stmt.iter)
            self._store_target(stmt.target, stmt.lineno)
            self._stmts(stmt.body)
            self._stmts(stmt.orelse)
            return
        if isinstance(stmt, ast.While):
            self._expr(stmt.test)
            self._stmts(stmt.body)
            self._stmts(stmt.orelse)
            return
        if isinstance(stmt, ast.If):
            self._expr(stmt.test)
            self._stmts(stmt.body)
            self._stmts(stmt.orelse)
            return
        if isinstance(stmt, ast.Try):
            self._stmts(stmt.body)
            for handler in stmt.handlers:
                self._stmts(handler.body)
            self._stmts(stmt.orelse)
            self._stmts(stmt.finalbody)
            return
        if isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._expr(stmt.value)
            return
        if isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                self._expr(stmt.exc)
            if stmt.cause is not None:
                self._expr(stmt.cause)
            return
        if isinstance(stmt, ast.Assert):
            self._expr(stmt.test)
            if stmt.msg is not None:
                self._expr(stmt.msg)
            return
        if isinstance(stmt, ast.Delete):
            return
        if stmt.__class__.__name__ == "Match":
            self._expr(stmt.subject)  # type: ignore[attr-defined]
            for case in stmt.cases:  # type: ignore[attr-defined]
                self._stmts(case.body)
            return
        # Pass / Break / Continue / Import / Global / Nonlocal: no facts.

    def _assign(self, stmt) -> None:
        if isinstance(stmt, ast.AugAssign):
            targets = [stmt.target]
            # ``self.x += 1`` reads and writes; record the read too.
            attr = self._self_attr(stmt.target)
            if attr is not None:
                self._access("attr", attr, stmt.lineno, "read")
        else:
            targets = (stmt.targets if isinstance(stmt, ast.Assign)
                       else [stmt.target])
        if stmt.value is not None:
            self._expr(stmt.value)
        for target in targets:
            self._store_target(target, stmt.lineno)
        if isinstance(stmt, ast.Assign) and stmt.value is not None:
            self._bind_types(targets, stmt.value)
        elif isinstance(stmt, ast.AnnAssign):
            self._bind_types(targets, stmt.value,
                             annotation=stmt.annotation)

    def _ctor_type(self, expr: ast.expr) -> str | None:
        """Dotted type of a direct constructor call, if recognizable."""
        if not isinstance(expr, ast.Call):
            return None
        from repro.devtools.callgraph import _call_site

        site = _call_site(expr, self.env)
        if site.kind == "dotted":
            return site.target
        if site.kind == "local":
            return "%s.%s" % (self.module, site.target)
        return None

    def _annotation_type(self, ann: ast.expr) -> str | None:
        """Dotted type named by a plain annotation (``Channel``,
        ``socket.socket``, ``"Channel"``); subscripted forms stay unknown."""
        if isinstance(ann, ast.Constant) and isinstance(ann.value, str) \
                and ann.value.isidentifier():
            name = ann.value
            return self.env.get(name, "%s.%s" % (self.module, name))
        if isinstance(ann, ast.Name):
            return self.env.get(ann.id, "%s.%s" % (self.module, ann.id))
        if isinstance(ann, ast.Attribute):
            from repro.devtools.callgraph import _attribute_parts

            parts, rooted = _attribute_parts(ann)
            if rooted and parts:
                root = parts[0]
                if root in self.env:
                    return ".".join([self.env[root]] + parts[1:])
                return ".".join(parts)
        return None

    def _bind_types(self, targets: list[ast.expr], value: ast.expr | None,
                    annotation: ast.expr | None = None) -> None:
        """Track constructed types: ``self.x = Lock()``, ``b = Board()``,
        annotated bindings, and element types of ``[Worker(...) for ...]``."""
        dotted = None
        if value is not None:
            dotted = self._ctor_type(value)
            if dotted is None and isinstance(value, ast.Name):
                dotted = self._local_types.get(value.id)
            if dotted is None and isinstance(value, ast.Attribute) \
                    and isinstance(value.value, ast.Name):
                # ``server = runner._server`` — defer to the project
                # pass, which knows the field types of ``runner``'s
                # class, via a symbolic ``<attrof:TYPE:ATTR>`` marker.
                base = value.value.id
                if base == "self" and self.class_name is not None:
                    base_type: str | None = "%s.%s" % (self.module,
                                                       self.class_name)
                else:
                    base_type = self._local_types.get(base)
                if base_type is not None and not base_type.startswith("<"):
                    dotted = "<attrof:%s:%s>" % (base_type, value.attr)
        if dotted is None and annotation is not None:
            dotted = self._annotation_type(annotation)
        if value is None:
            for target in targets:
                if isinstance(target, ast.Name) and dotted is not None:
                    self._local_types[target.id] = dotted
            return
        elem: str | None = None
        if dotted is None:
            if isinstance(value, (ast.ListComp, ast.SetComp,
                                  ast.GeneratorExp)):
                elem = self._ctor_type(value.elt)
            elif isinstance(value, (ast.List, ast.Tuple)) and value.elts:
                kinds = {self._ctor_type(e) for e in value.elts}
                if len(kinds) == 1:
                    elem = kinds.pop()
        for target in targets:
            if isinstance(target, ast.Name):
                # Rebinding invalidates any earlier inference for safety.
                self._local_types.pop(target.id, None)
                self._elem_types.pop(target.id, None)
                if dotted is not None:
                    self._local_types[target.id] = dotted
                elif elem is not None:
                    self._elem_types[target.id] = elem
            elif dotted is not None:
                attr = self._self_attr(target)
                if attr is not None and isinstance(target, ast.Attribute):
                    # ``self.x = threading.Lock()`` — the project pass
                    # uses these to spot intrinsically safe attributes
                    # and to type ``self.x.meth()`` receivers.
                    self.attr_types.append((attr, dotted))

    def _seed_loop_types(self, target: ast.expr, iterable: ast.expr) -> None:
        """``for w in workers`` gives ``w`` the tracked element type."""
        elem: str | None = None
        bind: ast.expr | None = target
        if isinstance(iterable, ast.Name):
            elem = self._elem_types.get(iterable.id)
        elif (isinstance(iterable, ast.Call)
              and isinstance(iterable.func, ast.Name)
              and iterable.func.id == "enumerate" and iterable.args
              and isinstance(iterable.args[0], ast.Name)):
            elem = self._elem_types.get(iterable.args[0].id)
            bind = (target.elts[1]
                    if isinstance(target, ast.Tuple)
                    and len(target.elts) == 2 else None)
        if elem is not None and isinstance(bind, ast.Name):
            self._local_types[bind.id] = elem

    def _store_target(self, target: ast.expr, line: int) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._store_target(element, line)
            return
        if isinstance(target, ast.Starred):
            self._store_target(target.value, line)
            return
        if isinstance(target, ast.Name):
            if (target.id in self._global_decls
                    and self._is_shared_global(target.id)):
                self._access("global", target.id, line, "write")
            return
        if isinstance(target, (ast.Attribute, ast.Subscript)):
            attr = self._self_attr(target)
            if attr is not None:
                self._access("attr", attr, line, "write")
                return
            from repro.devtools.callgraph import _root_name

            root = _root_name(target)
            if root is not None and self._is_shared_global(root):
                self._access("global", root, line, "write")
            # Subscript/attribute stores evaluate their inner parts.
            if isinstance(target, ast.Subscript):
                self._expr(target.slice)

    # -- expressions ---------------------------------------------------------

    def _expr(self, expr: ast.expr) -> None:
        if isinstance(expr, ast.Call):
            self._call(expr)
            return
        if isinstance(expr, ast.Attribute):
            attr = self._self_attr(expr)
            if attr is not None:
                self._access("attr", attr, expr.lineno, "read")
                # ``self.x.prop`` on a typed field may dispatch into a
                # property of its class; record the edge so lock context
                # reaches property bodies too.
                if (isinstance(expr.value, ast.Attribute)
                        and isinstance(expr.value.value, ast.Name)
                        and expr.value.value.id == "self"):
                    self.calls.append(GuardedCall(
                        kind="method", target=expr.attr, line=expr.lineno,
                        guards=tuple(self._guards), owner=self._owner,
                        recv="<attr:%s>" % expr.value.attr))
                return
            if (isinstance(expr.value, ast.Name)
                    and expr.value.id in self._local_types):
                # ``board.done`` — a property read on a typed local.
                self.calls.append(GuardedCall(
                    kind="method", target=expr.attr, line=expr.lineno,
                    guards=tuple(self._guards), owner=self._owner,
                    recv=self._local_types[expr.value.id]))
                return
            self._expr(expr.value)
            return
        if isinstance(expr, ast.Name):
            if isinstance(expr.ctx, ast.Load) and self._is_shared_global(
                    expr.id):
                self._access("global", expr.id, expr.lineno, "read")
            return
        if isinstance(expr, ast.Lambda):
            self._expr(expr.body)
            return
        for child in ast.iter_child_nodes(expr):
            if isinstance(child, ast.expr):
                self._expr(child)
            elif isinstance(child, ast.comprehension):
                self._expr(child.iter)
                for cond in child.ifs:
                    self._expr(cond)
            elif isinstance(child, ast.keyword):
                self._expr(child.value)

    def _spawn_ref(self, expr: ast.expr) -> str | None:
        """Resolve a thread-target reference, including ``self`` methods."""
        from repro.devtools.callgraph import _resolve_ref

        if (isinstance(expr, ast.Attribute)
                and isinstance(expr.value, ast.Name)
                and expr.value.id == "self"):
            return "<self:%s>" % expr.attr
        ref = _resolve_ref(expr, self.env, self.module, self._local_defs)
        return ref

    def _call(self, call: ast.Call) -> None:
        from repro.devtools.callgraph import (MUTATOR_METHODS, _call_site,
                                              _root_name)

        site = _call_site(call, self.env)
        if site.kind in ("dotted", "local", "method", "super"):
            recv = ""
            kind = site.kind
            if site.kind == "super":
                # ``super().meth()`` dispatches up the MRO; base-class
                # methods are analyzed directly, so don't let the bare
                # name smear across unrelated classes via CHA.  Recorded
                # as a method call so stored facts keep one vocabulary.
                kind = "method"
                recv = "<super>"
            elif site.kind == "method" \
                    and isinstance(call.func, ast.Attribute):
                base = call.func.value
                if isinstance(base, ast.Name):
                    recv = ("<self>" if base.id == "self"
                            else self._local_types.get(base.id, ""))
                elif (isinstance(base, ast.Attribute)
                        and isinstance(base.value, ast.Name)
                        and base.value.id == "self"):
                    recv = "<attr:%s>" % base.attr
            self.calls.append(GuardedCall(
                kind=kind, target=site.target, line=call.lineno,
                guards=tuple(self._guards), owner=self._owner, recv=recv))

        last = site.target.rsplit(".", 1)[-1] if site.target else ""
        if last == "Thread":
            for keyword in call.keywords:
                if keyword.arg == "target":
                    ref = self._spawn_ref(keyword.value)
                    if ref is not None:
                        self.spawns.append(ThreadSpawn(
                            target=ref, line=call.lineno, kind="thread"))
        elif site.kind == "method" and site.target == "add_done_callback" \
                and call.args:
            ref = self._spawn_ref(call.args[0])
            if ref is not None:
                self.spawns.append(ThreadSpawn(
                    target=ref, line=call.lineno, kind="callback"))

        func = call.func
        if isinstance(func, ast.Attribute):
            attr = self._self_attr(func.value)
            if attr is not None:
                if func.attr in CLOSE_METHODS:
                    self.attr_closes.append(attr)
                    self._access("attr", attr, call.lineno, "read")
                elif func.attr in MUTATOR_METHODS:
                    self._access("attr", attr, call.lineno, "write")
                else:
                    self._access("attr", attr, call.lineno, "read")
            else:
                root = _root_name(func.value)
                if (root is not None and func.attr in MUTATOR_METHODS
                        and self._is_shared_global(root)):
                    self._access("global", root, call.lineno, "write")
                self._expr(func.value)
        for arg in call.args:
            self._expr(arg)
        for keyword in call.keywords:
            self._expr(keyword.value)


# -- resource-lifecycle tracking ---------------------------------------------

class _Obligation:
    """Mutable per-path state of one acquired (or maybe-acquired) local."""

    __slots__ = ("resource", "call_kind", "call_target", "acq_line",
                 "state", "risky_line")

    def __init__(self, resource: str | None, call_kind: str,
                 call_target: str, acq_line: int) -> None:
        self.resource = resource  # None: pending project resolution
        self.call_kind = call_kind
        self.call_target = call_target
        self.acq_line = acq_line
        self.state = "open"
        self.risky_line: int | None = None

    def copy(self) -> "_Obligation":
        clone = _Obligation(self.resource, self.call_kind, self.call_target,
                            self.acq_line)
        clone.state = self.state
        clone.risky_line = self.risky_line
        return clone


def _classify_acquisition(site) -> str | None:
    """Resource kind of one call site, or ``None``."""
    if site.kind == "local" and site.target == "open":
        return "file handle"
    parts = tuple(site.target.split(".")) if site.kind == "dotted" else ()
    if len(parts) >= 2 and parts[-2:] in RESOURCE_SUFFIXES:
        return RESOURCE_SUFFIXES[parts[-2:]]
    last = parts[-1] if parts else (site.target if site.kind == "local"
                                    else "")
    if last in RESOURCE_CLASSES:
        return RESOURCE_CLASSES[last]
    return None


class _LifecycleTracker:
    """Path-sensitive must-close walk of one function body."""

    def __init__(self, node: ast.FunctionDef | ast.AsyncFunctionDef,
                 env: dict[str, str], class_name: str | None) -> None:
        self.node = node
        self.env = env
        self.class_name = class_name
        self.obligations: dict[str, _Obligation] = {}
        self.leaks: list[Leak] = []
        self.pending_leaks: list[PendingLeak] = []
        self.field_transfers: list[FieldTransfer] = []
        self.returns_resource: tuple[str, int] | None = None
        self.pending_returns: list[tuple[str, str, int]] = []
        self._protected: set[str] = set()
        self._finished: list[_Obligation] = []

    def run(self) -> None:
        terminated = self._stmts(self.node.body)
        if not terminated:
            end = getattr(self.node.body[-1], "end_lineno", None) \
                or self.node.body[-1].lineno
            for name, ob in self.obligations.items():
                if ob.state == "open" and ob.risky_line is None:
                    ob.risky_line = None
                    self._finish(name, ob, unclosed_line=end)
                    continue
                self._finish(name, ob)
        else:
            for name, ob in self.obligations.items():
                self._finish(name, ob)
        self._emit()

    # -- leak bookkeeping ----------------------------------------------------

    def _finish(self, name: str, ob: _Obligation,
                unclosed_line: int | None = None) -> None:
        """Final verdict on one obligation at scope exit."""
        ob_name = name
        if ob.risky_line is not None:
            self._record(ob, "exception", ob_name, ob.risky_line)
        elif ob.state == "open":
            self._record(ob, "unclosed", ob_name,
                         unclosed_line if unclosed_line is not None
                         else ob.acq_line)

    def _record(self, ob: _Obligation, kind: str, name: str,
                line: int) -> None:
        if ob.resource is not None:
            self.leaks.append(Leak(kind=kind, resource=ob.resource,
                                   name=name, acq_line=ob.acq_line,
                                   line=line))
        elif ob.call_kind in ("dotted", "local"):
            self.pending_leaks.append(PendingLeak(
                kind=kind, call_kind=ob.call_kind,
                call_target=ob.call_target, name=name,
                acq_line=ob.acq_line, line=line))

    def _emit(self) -> None:
        seen: set[tuple[str, int, str]] = set()
        self.leaks = [leak for leak in self.leaks
                      if (key := (leak.name, leak.acq_line, leak.kind))
                      not in seen and not seen.add(key)]
        seen.clear()
        self.pending_leaks = [
            leak for leak in self.pending_leaks
            if (key := (leak.name, leak.acq_line, leak.kind)) not in seen
            and not seen.add(key)]

    def _risky(self, line: int, skip: str | None = None) -> None:
        for name, ob in self.obligations.items():
            if name == skip or name in self._protected:
                continue
            if ob.state == "open" and ob.risky_line is None:
                ob.risky_line = line

    def _escape(self, name: str) -> None:
        ob = self.obligations.get(name)
        if ob is not None and ob.state == "open":
            ob.state = "escaped"

    def _escape_expr(self, expr: ast.expr | None) -> None:
        """Mark every open resource referenced by ``expr`` as handed off."""
        if expr is None:
            return
        for child in ast.walk(expr):
            if isinstance(child, ast.Name) and isinstance(child.ctx,
                                                          ast.Load):
                self._escape(child.id)

    # -- statements ----------------------------------------------------------

    def _stmts(self, body: list[ast.stmt]) -> bool:
        """Walk a body; returns True when every path raises/returns."""
        for stmt in body:
            if self._stmt(stmt):
                return True
        return False

    def _stmt(self, stmt: ast.stmt) -> bool:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            # A nested def closing over an open resource takes it along.
            for child in ast.walk(stmt):
                if isinstance(child, ast.Name) and isinstance(
                        child.ctx, ast.Load):
                    self._escape(child.id)
            return False
        if isinstance(stmt, ast.Return):
            self._return_value(stmt.value)
            self._escape_expr(stmt.value)
            self._eval(stmt.value)
            end = stmt.lineno
            for name, ob in list(self.obligations.items()):
                if ob.state == "open" and name not in self._protected:
                    self._record(ob, "unclosed", name, end)
                    del self.obligations[name]
            return True
        if isinstance(stmt, ast.Raise):
            self._eval(stmt.exc)
            self._eval(stmt.cause)
            self._risky(stmt.lineno)
            for name, ob in list(self.obligations.items()):
                # A protected name is closed by an enclosing handler or
                # finally on the way out — raising is not a leak for it.
                if name not in self._protected:
                    self._finish(name, ob)
                del self.obligations[name]
            return True
        if isinstance(stmt, ast.Assign):
            self._assign(stmt.targets, stmt.value, stmt.lineno)
            return False
        if isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._assign([stmt.target], stmt.value, stmt.lineno)
            return False
        if isinstance(stmt, ast.AugAssign):
            self._eval(stmt.value)
            return False
        if isinstance(stmt, ast.Expr):
            self._eval(stmt.value)
            return False
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                context = item.context_expr
                if isinstance(context, ast.Call):
                    from repro.devtools.callgraph import _call_site

                    self._eval_call_args(context)
                    site = _call_site(context, self.env)
                    if _classify_acquisition(site) is None:
                        self._risky(context.lineno)
                    # Acquired under ``with``: discharged by protocol.
                elif isinstance(context, ast.Name):
                    ob = self.obligations.get(context.id)
                    if ob is not None:
                        ob.state = "closed"
                        ob.risky_line = None
            return self._stmts(stmt.body)
        if isinstance(stmt, ast.Try):
            return self._try(stmt)
        if isinstance(stmt, ast.If):
            self._eval(stmt.test)
            return self._branch([stmt.body, stmt.orelse])
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._eval(stmt.iter)
            self._escape_expr(stmt.iter)
            self._stmts(stmt.body)
            self._stmts(stmt.orelse)
            return False
        if isinstance(stmt, ast.While):
            self._eval(stmt.test)
            self._stmts(stmt.body)
            self._stmts(stmt.orelse)
            return False
        if isinstance(stmt, ast.Assert):
            self._eval(stmt.test)
            self._eval(stmt.msg)
            return False
        if isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    ob = self.obligations.pop(target.id, None)
                    if ob is not None:
                        self._finish(target.id, ob)
            return False
        if stmt.__class__.__name__ == "Match":
            self._eval(stmt.subject)  # type: ignore[attr-defined]
            return self._branch(
                [case.body for case in stmt.cases])  # type: ignore
        return False

    def _branch(self, bodies: list[list[ast.stmt]]) -> bool:
        """Walk alternative bodies on env copies and merge survivors."""
        base = {name: ob.copy() for name, ob in self.obligations.items()}
        survivors: list[dict[str, _Obligation]] = []
        for body in bodies:
            self.obligations = {name: ob.copy()
                                for name, ob in base.items()}
            if not self._stmts(body):
                survivors.append(self.obligations)
        if not survivors:
            # every branch terminated; If without orelse still falls
            # through, which _branch callers encode as an empty body
            # (an empty body never terminates), so this means all paths
            # ended.
            self.obligations = {}
            return True
        merged = survivors[0]
        for other in survivors[1:]:
            for name, ob in other.items():
                mine = merged.get(name)
                if mine is None:
                    merged[name] = ob
                    continue
                # open beats closed/escaped: some path leaks.
                if ob.state == "open" and mine.state != "open":
                    merged[name] = ob
                elif ob.state == "open" and mine.state == "open":
                    if mine.risky_line is None:
                        mine.risky_line = ob.risky_line
        self.obligations = merged
        return False

    def _try(self, stmt: ast.Try) -> bool:
        protected = self._closed_names(stmt.finalbody)
        for handler in stmt.handlers:
            protected |= self._closed_names(handler.body)
        added = protected - self._protected
        self._protected |= added
        try:
            body_terminated = self._stmts(stmt.body)
        finally:
            self._protected -= added
        base = {name: ob.copy() for name, ob in self.obligations.items()}
        handler_base = base
        if len(stmt.body) == 1:
            # A handler is entered only when the body's sole statement
            # raised — in which case an acquisition *by* that statement
            # never completed, so its obligation does not exist on
            # handler paths (``try: sock = connect() except: retry``).
            lone = stmt.body[0]
            last = getattr(lone, "end_lineno", None) or lone.lineno
            handler_base = {
                name: ob for name, ob in base.items()
                if not lone.lineno <= ob.acq_line <= last}
        survivors: list[dict[str, _Obligation]] = []
        if not body_terminated:
            orelse_terminated = self._stmts(stmt.orelse)
            if not orelse_terminated:
                survivors.append(self.obligations)
        for handler in stmt.handlers:
            self.obligations = {name: ob.copy()
                                for name, ob in handler_base.items()}
            if not self._stmts(handler.body):
                survivors.append(self.obligations)
        if survivors:
            self.obligations = survivors[0]
            for other in survivors[1:]:
                for name, ob in other.items():
                    mine = self.obligations.get(name)
                    if mine is None or (ob.state == "open"
                                        and mine.state != "open"):
                        self.obligations[name] = ob
            terminated = self._stmts(stmt.finalbody)
            return terminated
        self.obligations = base
        self._stmts(stmt.finalbody)
        return True

    def _closed_names(self, body: list[ast.stmt]) -> set[str]:
        """Local names a cleanup body closes (``n.close()`` shaped)."""
        names: set[str] = set()
        for stmt in body:
            for child in ast.walk(stmt):
                if (isinstance(child, ast.Call)
                        and isinstance(child.func, ast.Attribute)
                        and child.func.attr in CLOSE_METHODS
                        and isinstance(child.func.value, ast.Name)):
                    names.add(child.func.value.id)
        return names

    # -- value flow ----------------------------------------------------------

    def _return_value(self, value: ast.expr | None) -> None:
        if value is None:
            return
        if isinstance(value, ast.Name):
            ob = self.obligations.get(value.id)
            if ob is not None and ob.state == "open":
                self._note_return(ob)
            return
        if isinstance(value, ast.Call):
            from repro.devtools.callgraph import _call_site

            site = _call_site(value, self.env)
            kind = _classify_acquisition(site)
            if kind is not None:
                self._note_return(_Obligation(kind, site.kind, site.target,
                                              value.lineno))
            elif site.kind in ("dotted", "local"):
                self.pending_returns.append(
                    (site.kind, site.target, value.lineno))

    def _note_return(self, ob: _Obligation) -> None:
        if ob.resource is not None:
            if self.returns_resource is None:
                self.returns_resource = (ob.resource, ob.acq_line)
        elif ob.call_kind in ("dotted", "local"):
            self.pending_returns.append(
                (ob.call_kind, ob.call_target, ob.acq_line))

    def _assign(self, targets: list[ast.expr], value: ast.expr,
                line: int) -> None:
        new_ob: _Obligation | None = None
        moved: str | None = None
        if isinstance(value, ast.Call):
            from repro.devtools.callgraph import _call_site

            self._eval_call_args(value)
            site = _call_site(value, self.env)
            kind = _classify_acquisition(site)
            if kind is not None:
                self._risky(line)
                new_ob = _Obligation(kind, site.kind, site.target, line)
            elif site.kind in ("dotted", "local"):
                self._risky(line)
                new_ob = _Obligation(None, site.kind, site.target, line)
            else:
                self._risky(line)
        elif isinstance(value, ast.Name):
            moved = value.id
        else:
            self._eval(value)

        simple = [t for t in targets if isinstance(t, ast.Name)]
        attrs = [t for t in targets if isinstance(t, ast.Attribute)]
        for target in targets:
            if not isinstance(target, (ast.Name, ast.Attribute)):
                self._escape_expr(value)
                new_ob = None
                moved = None

        if attrs and self.class_name is not None:
            for target in attrs:
                if isinstance(target.value, ast.Name) \
                        and target.value.id == "self":
                    if new_ob is not None:
                        self.field_transfers.append(FieldTransfer(
                            attr=target.attr,
                            resource=new_ob.resource or "",
                            line=line, call_kind=(new_ob.call_kind
                                                  if new_ob.resource is None
                                                  else ""),
                            call_target=(new_ob.call_target
                                         if new_ob.resource is None
                                         else "")))
                        new_ob = None
                    elif moved is not None:
                        ob = self.obligations.get(moved)
                        if ob is not None and ob.state == "open":
                            self.field_transfers.append(FieldTransfer(
                                attr=target.attr,
                                resource=ob.resource or "",
                                line=line,
                                call_kind=(ob.call_kind if ob.resource
                                           is None else ""),
                                call_target=(ob.call_target if ob.resource
                                             is None else "")))
                            ob.state = "escaped"
                            ob.risky_line = None
        elif attrs:
            if new_ob is None and moved is not None:
                self._escape(moved)
            new_ob = None

        for target in simple:
            existing = self.obligations.pop(target.id, None)
            if existing is not None and existing.state == "open":
                self._record(existing, "unclosed", target.id, line)
            if new_ob is not None:
                self.obligations[target.id] = new_ob.copy() \
                    if len(simple) > 1 else new_ob
            elif moved is not None and moved in self.obligations:
                self.obligations[target.id] = self.obligations.pop(moved)

    def _eval_call_args(self, call: ast.Call) -> None:
        """Arguments first: open resources passed along are handed off."""
        for arg in call.args:
            self._eval(arg)
            self._escape_expr(arg)
        for keyword in call.keywords:
            self._eval(keyword.value)
            self._escape_expr(keyword.value)

    def _eval(self, expr: ast.expr | None) -> None:
        if expr is None:
            return
        if isinstance(expr, ast.Call):
            from repro.devtools.callgraph import _call_site

            func = expr.func
            closes: str | None = None
            if isinstance(func, ast.Attribute) and isinstance(
                    func.value, ast.Name):
                if func.attr in CLOSE_METHODS:
                    closes = func.value.id
            self._eval_call_args(expr)
            if closes is not None:
                ob = self.obligations.get(closes)
                if ob is not None:
                    ob.state = "closed"
                    ob.risky_line = None
                    return
                return
            site = _call_site(expr, self.env)
            if _classify_acquisition(site) is not None:
                # Result dropped on the floor: acquired and unbound.
                self._risky(expr.lineno)
                return
            self._risky(expr.lineno)
            return
        if isinstance(expr, (ast.Yield, ast.YieldFrom)):
            self._escape_expr(expr.value)
            self._eval(expr.value)
            return
        for child in ast.iter_child_nodes(expr):
            if isinstance(child, ast.expr):
                self._eval(child)
            elif isinstance(child, ast.comprehension):
                self._eval(child.iter)
            elif isinstance(child, ast.keyword):
                self._eval(child.value)


def concurrency_summary(node: ast.FunctionDef | ast.AsyncFunctionDef,
                        qualname: str, class_name: str | None,
                        env: dict[str, str], module: str,
                        data_globals: frozenset[str],
                        ) -> FunctionConcurrencySummary | None:
    """Concurrency/lifecycle facts of one function; ``None`` when trivial."""
    extractor = _ConcurrencyExtractor(node, env, module, class_name,
                                      data_globals)
    extractor.run()
    tracker = _LifecycleTracker(node, env, class_name)
    tracker.run()

    seen_access: set[tuple[str, str, str, tuple[str, ...], str]] = set()
    accesses = []
    for access in extractor.accesses:
        key = (access.scope, access.name, access.mode, access.guards,
               access.owner)
        if key not in seen_access:
            seen_access.add(key)
            accesses.append(access)
    seen_call: set[tuple[str, str, tuple[str, ...], str]] = set()
    calls = []
    for call in extractor.calls:
        ckey = (call.kind, call.target, call.guards, call.owner)
        if ckey not in seen_call:
            seen_call.add(ckey)
            calls.append(call)

    last = qualname.split(".")[-1]
    summary = FunctionConcurrencySummary(
        name=qualname, class_name=class_name,
        is_ctor=last in ("__init__", "__post_init__"),
        spawns=tuple(extractor.spawns),
        accesses=tuple(accesses),
        calls=tuple(calls),
        attr_types=tuple(dict.fromkeys(extractor.attr_types)),
        leaks=tuple(tracker.leaks),
        pending_leaks=tuple(tracker.pending_leaks),
        field_transfers=tuple(tracker.field_transfers),
        attr_closes=tuple(dict.fromkeys(extractor.attr_closes)),
        returns_resource=tracker.returns_resource,
        pending_returns=tuple(dict.fromkeys(tracker.pending_returns)),
    )
    return None if summary.is_trivial else summary


# -- the interprocedural role/race analysis ----------------------------------

@dataclass(frozen=True)
class ConcurrencyFinding:
    """One RPR011/RPR012 finding, ready for a project diagnostic."""

    path: str
    line: int
    message: str


_RACE_REMEDY = ("hold one consistent lock at every cross-thread access, "
                "confine writes to the constructor, use an intrinsically "
                "safe type, or suppress with a justified noqa[RPR011]")

_LEAK_REMEDY = ("close it with a with-block or try/finally, transfer "
                "ownership, or suppress with a justified noqa[RPR012]")


class RaceAnalysis:
    """Thread-role inference and cross-role shared-state race detection."""

    def __init__(self, project) -> None:
        self.project = project
        # qualname -> (module, FunctionConcurrencySummary)
        self._funcs: dict[str, tuple[str, FunctionConcurrencySummary]] = {}
        for module, summary in project.summaries.items():
            for name, facts in getattr(summary, "concurrency", {}).items():
                self._funcs["%s.%s" % (module, name)] = (module, facts)
        #: role id -> human label
        self._role_labels: dict[str, str] = {MAIN_ROLE: "main"}
        #: (qual, owner) -> role for nested thread targets
        self._nested_roles: dict[tuple[str, str], str] = {}
        self._roles: dict[str, set[str]] = {
            qual: {MAIN_ROLE} for qual in self._funcs}
        #: (role, qual) -> (caller qual, line) provenance, None at roots
        self._parents: dict[tuple[str, str], tuple[str, int] | None] = {}
        self._entry_cache: dict[str, dict[str, frozenset | None]] = {}
        self._resolved: dict[tuple, tuple[str, ...]] = {}
        self._attr_type_cache: dict[tuple[str, str], dict[str, str]] = {}
        self._seed_roles()
        self._propagate_roles()

    # -- resolution ----------------------------------------------------------

    def _attr_type_map(self, module: str, class_name: str) -> dict[str, str]:
        """attr -> dotted constructor type, merged over a class's methods."""
        key = (module, class_name)
        cached = self._attr_type_cache.get(key)
        if cached is not None:
            return cached
        merged: dict[str, str] = {}
        summary = self.project.summaries.get(module)
        if summary is not None:
            for facts in getattr(summary, "concurrency", {}).values():
                if facts.class_name != class_name:
                    continue
                for attr, dotted in facts.attr_types:
                    merged.setdefault(attr, dotted)
        self._attr_type_cache[key] = merged
        return merged

    def _mro_method(self, class_qual: str, meth: str,
                    depth: int = 0) -> str | None:
        """Qualname of ``meth`` on the class or a project base, if any.

        Unresolvable bases are treated as external: a method found
        nowhere on the project-visible MRO dispatches outside the
        project (or is a plain data attribute) and yields no edge.
        """
        if depth > 5:
            return None
        module, _, cls = class_qual.rpartition(".")
        summary = self.project.summaries.get(module)
        if summary is None:
            return None
        if meth in summary.classes.get(cls, ()):
            return "%s.%s" % (class_qual, meth)
        for ref in getattr(summary, "class_bases", {}).get(cls, ()):
            resolved = self.project.resolve_callable(ref)
            if resolved is not None and resolved[0] == "class":
                found = self._mro_method(resolved[1], meth, depth + 1)
                if found is not None:
                    return found
        return None

    def _typed_method(self, meth: str, recv: str, module: str,
                      class_name: str | None) -> tuple[str, ...] | None:
        """Receiver-typed method resolution; ``None`` = fall back to CHA.

        A known receiver type that resolves to no project class (e.g.
        ``threading.Lock``) dispatches outside the project — the empty
        tuple; so does a project class whose visible MRO lacks the
        method (a data attribute, or an external base's method).
        """
        if not recv:
            return None
        if recv == "<super>":
            # ``super().meth()``: dispatch starts at the first base.
            if class_name is None:
                return ()
            summary = self.project.summaries.get(module)
            if summary is None:
                return ()
            for ref in getattr(summary, "class_bases", {}).get(
                    class_name, ()):
                resolved = self.project.resolve_callable(ref)
                if resolved is not None and resolved[0] == "class":
                    found = self._mro_method(resolved[1], meth)
                    if found is not None:
                        return (found,) if found in self._funcs else ()
            return ()
        if recv == "<self>":
            if class_name is None:
                return None
            dotted = "%s.%s" % (module, class_name)
        elif recv.startswith("<attr:"):
            if class_name is None:
                return None
            dotted = self._attr_type_map(module, class_name).get(recv[6:-1])
            if dotted is None:
                return None
        else:
            dotted = recv
        for _ in range(3):  # ``<attrof:...>`` markers may chain briefly
            if not dotted.startswith("<attrof:"):
                break
            type_ref, _, attr = dotted[len("<attrof:"):-1].rpartition(":")
            resolved = self.project.resolve_callable(type_ref)
            if resolved is None or resolved[0] != "class":
                return None
            owner_mod, _, owner_cls = resolved[1].rpartition(".")
            next_dotted = self._attr_type_map(owner_mod,
                                              owner_cls).get(attr)
            if next_dotted is None:
                return None
            dotted = next_dotted
        else:
            return None
        resolved = self.project.resolve_callable(dotted)
        if resolved is None:
            return ()
        if resolved[0] != "class":
            return None
        found = self._mro_method(resolved[1], meth)
        if found is None:
            return ()
        return (found,) if found in self._funcs else ()

    def _resolve(self, kind: str, target: str, module: str,
                 recv: str = "", class_name: str | None = None,
                 ) -> tuple[str, ...]:
        """Project function qualnames one call may dispatch to."""
        key = (kind, target, module, recv, class_name)
        cached = self._resolved.get(key)
        if cached is not None:
            return cached
        project = self.project
        quals: list[str] = []
        if kind == "dotted":
            resolved = project.resolve_callable(target)
            if resolved is not None:
                if resolved[0] == "function":
                    quals.append(resolved[1])
                elif resolved[0] == "class":
                    quals.extend(project.constructor_functions(resolved[1]))
        elif kind == "local":
            summary = project.summaries.get(module)
            if summary is not None:
                if target in summary.functions:
                    quals.append("%s.%s" % (module, target))
                elif target in summary.classes:
                    quals.extend(project.constructor_functions(
                        "%s.%s" % (module, target)))
        else:  # method
            typed = self._typed_method(target, recv, module, class_name)
            if typed is not None:
                quals.extend(typed)
            else:
                quals.extend(project.methods_named_from(
                    target, module)[:_MAX_CANDIDATES])
        found = tuple(qual for qual in quals if qual in self._funcs)
        self._resolved[key] = found
        return found

    def _resolve_call(self, call: GuardedCall, module: str,
                      facts: FunctionConcurrencySummary) -> tuple[str, ...]:
        return self._resolve(call.kind, call.target, module,
                             recv=call.recv, class_name=facts.class_name)

    def _spawn_target(self, qual: str, module: str,
                      facts: FunctionConcurrencySummary,
                      spawn: ThreadSpawn) -> tuple[str, str | None] | None:
        """``(role id, rooted qual | None)`` for one spawn site.

        A rooted qual of ``None`` means the role lives in the spawning
        function's nested def (``<nested:NAME>`` targets).
        """
        target = spawn.target
        if target == "<lambda>":
            return None
        if target.startswith("<nested:"):
            name = target[len("<nested:"):-1]
            role = "%s.<%s>" % (qual, name)
            self._nested_roles[(qual, name)] = role
            return role, None
        if target.startswith("<self:"):
            name = target[len("<self:"):-1]
            if facts.class_name is None:
                return None
            rooted = "%s.%s.%s" % (module, facts.class_name, name)
            return rooted, rooted
        resolved = self._resolve("dotted", target, module)
        if resolved:
            return resolved[0], resolved[0]
        return None

    # -- role propagation ----------------------------------------------------

    def _seed_roles(self) -> None:
        for qual, (module, facts) in self._funcs.items():
            for spawn in facts.spawns:
                entry = self._spawn_target(qual, module, facts, spawn)
                if entry is None:
                    continue
                role, rooted = entry
                self._role_labels[role] = "thread '%s'" % role
                if rooted is not None and rooted in self._roles:
                    self._roles[rooted].add(role)
                    self._parents[(role, rooted)] = None

    def _call_roles(self, qual: str, call: GuardedCall) -> set[str]:
        """Roles a call site runs under (nested spawn bodies excepted)."""
        if call.owner:
            nested = self._nested_roles.get((qual, call.owner))
            if nested is not None:
                return {nested}
        return self._roles[qual]

    def _propagate_roles(self) -> None:
        changed = True
        while changed:
            changed = False
            for qual, (module, facts) in self._funcs.items():
                for call in facts.calls:
                    roles = self._call_roles(qual, call)
                    if not roles:
                        continue
                    for callee in self._resolve_call(call, module, facts):
                        for role in roles:
                            if role not in self._roles[callee]:
                                self._roles[callee].add(role)
                                self._parents[(role, callee)] = (qual,
                                                                 call.line)
                                changed = True

    # -- interprocedural lock domination -------------------------------------

    def _entry_guards(self, role: str) -> dict[str, frozenset | None]:
        """Entry-guard map for one role; ``None`` values mean unknown.

        A function's entry guards are the locks provably held at *every*
        in-role call site reaching it.  Role roots (thread targets, and
        main-role functions nobody in the project calls) enter with no
        locks held; everything else intersects over its incoming edges.
        Unknown (unreached) stays ``None``, which the race check treats
        as fully guarded — conservative toward silence.
        """
        cached = self._entry_cache.get(role)
        if cached is not None:
            return cached
        edges: dict[str, list[tuple[str | None, tuple[str, ...]]]] = {}
        for qual, (module, facts) in self._funcs.items():
            for call in facts.calls:
                roles = self._call_roles(qual, call)
                if role not in roles:
                    continue
                # A call inside a spawned nested def starts from a clean
                # stack: the thread entered holding nothing.
                caller: str | None = qual
                if call.owner and self._nested_roles.get(
                        (qual, call.owner)) == role:
                    caller = None
                for callee in self._resolve_call(call, module, facts):
                    edges.setdefault(callee, []).append(
                        (caller, call.guards))
        roots: set[str] = set()
        if role == MAIN_ROLE:
            for qual in self._funcs:
                if qual not in edges:
                    roots.add(qual)
        else:
            for (seen_role, qual), parent in self._parents.items():
                if seen_role == role and parent is None:
                    roots.add(qual)
        entry: dict[str, frozenset | None] = {root: frozenset()
                                              for root in roots}
        changed = True
        while changed:
            changed = False
            for callee, incoming in edges.items():
                if role not in self._roles.get(callee, ()):
                    continue
                values = []
                for caller, guards in incoming:
                    if caller is None:
                        values.append(frozenset(guards))
                        continue
                    caller_entry = entry.get(caller)
                    if caller_entry is None:
                        continue  # unknown caller: identity for ∩
                    values.append(caller_entry | frozenset(guards))
                if not values:
                    continue
                new = values[0]
                for value in values[1:]:
                    new = new & value
                if callee in roots:
                    new = frozenset()
                if entry.get(callee) != new:
                    entry[callee] = new
                    changed = True
        self._entry_cache[role] = entry
        return entry

    def _access_roles(self, qual: str, access: SharedAccess) -> set[str]:
        if access.owner:
            nested = self._nested_roles.get((qual, access.owner))
            if nested is not None:
                return {nested}
        return self._roles[qual]

    def _effective_guards(self, qual: str, access: SharedAccess,
                          role: str) -> frozenset | None:
        """Locks held at one access under one role; ``None`` = unknown."""
        if access.owner and self._nested_roles.get(
                (qual, access.owner)) == role:
            entry: frozenset | None = frozenset()
        else:
            entry = self._entry_guards(role).get(qual)
        if entry is None:
            return None
        return entry | frozenset(access.guards)

    # -- safe/sanctioned sets ------------------------------------------------

    def _safe_attrs(self, module: str, class_name: str) -> set[str]:
        """Attributes of one class constructed as intrinsically safe."""
        summary = self.project.summaries.get(module)
        safe: set[str] = set()
        if summary is None:
            return safe
        for facts in getattr(summary, "concurrency", {}).values():
            if facts.class_name != class_name:
                continue
            for attr, dotted in facts.attr_types:
                for name in SAFE_TYPES:
                    if dotted == name or dotted.endswith("." + name) \
                            or dotted.endswith("." + name.split(".")[-1]):
                        safe.add(attr)
        return safe

    def _sanctioned_globals(self) -> dict[str, set[str]]:
        """module -> RPR008 initializer-owned global names.

        The initializer's same-module call closure is included: helpers
        the initializer delegates installation to own their writes too.
        """
        project = self.project
        initializers: set[str] = set()
        for module in sorted(project.summaries):
            for site in project.summaries[module].pool_sites:
                if site.role != "initializer":
                    continue
                resolved = project.resolve_callable(site.target)
                if resolved is not None and resolved[0] == "function":
                    initializers.add(resolved[1])
        sanctioned: dict[str, set[str]] = {}
        closure = set(initializers)
        queue = list(initializers)
        while queue:
            qual = queue.pop()
            module = project.resolve_module(qual)
            if module is None:
                continue
            function = project.function(qual)
            if function is None:
                continue
            sanctioned.setdefault(module, set()).update(
                name for name, _ in function.global_writes)
            for call in function.calls:
                callee = None
                if call.kind == "local":
                    callee = "%s.%s" % (module, call.target)
                elif call.kind == "dotted":
                    resolved = project.resolve_callable(call.target)
                    if resolved is not None and resolved[0] == "function":
                        callee = resolved[1]
                if callee is None or callee in closure:
                    continue
                if project.resolve_module(callee) != module:
                    continue
                if project.function(callee) is None:
                    continue
                closure.add(callee)
                queue.append(callee)
        return sanctioned

    # -- findings ------------------------------------------------------------

    def _role_chain(self, role: str, qual: str) -> list[str]:
        chain = [qual]
        seen = {qual}
        current = qual
        while True:
            parent = self._parents.get((role, current))
            if parent is None:
                break
            caller, _line = parent
            if caller in seen:
                break
            chain.append(caller)
            seen.add(caller)
            current = caller
        chain.reverse()
        return chain

    def _describe(self, role: str, qual: str, line: int,
                  mode: str) -> str:
        label = self._role_labels.get(role, role)
        chain = self._role_chain(role, qual)
        route = " -> ".join(chain) if len(chain) > 1 else chain[0]
        return "%s via %s (line %d, %s)" % (label, route, line, mode)

    def findings(self) -> list[ConcurrencyFinding]:
        groups: dict[tuple, list[tuple[str, SharedAccess]]] = {}
        for qual, (module, facts) in self._funcs.items():
            for access in facts.accesses:
                if access.scope == "attr":
                    if facts.class_name is None:
                        continue
                    key = ("attr", module, facts.class_name, access.name)
                else:
                    key = ("global", module, "", access.name)
                groups.setdefault(key, []).append((qual, access))

        sanctioned = self._sanctioned_globals()
        found: list[ConcurrencyFinding] = []
        for key in sorted(groups):
            scope, module, class_name, name = key
            entries = groups[key]
            if scope == "global" and name in sanctioned.get(module, set()):
                continue
            if scope == "attr" and name in self._safe_attrs(module,
                                                            class_name):
                continue
            writes = [(qual, access) for qual, access in entries
                      if access.mode == "write"
                      and not self._funcs[qual][1].is_ctor]
            if not writes:
                continue
            if not any(True for qual, _ in entries
                       if not self._funcs[qual][1].is_ctor):
                continue
            # thread-confined: every write happens in a constructor
            # (checked above: ``writes`` excludes constructors already).
            finding = self._race_in_group(scope, module, class_name, name,
                                          entries, writes)
            if finding is not None:
                found.append(finding)
        return sorted(found, key=lambda f: (f.path, f.line, f.message))

    def _race_in_group(self, scope: str, module: str, class_name: str,
                       name: str, entries, writes,
                       ) -> ConcurrencyFinding | None:
        for w_qual, write in sorted(writes,
                                    key=lambda e: (e[0], e[1].line)):
            for r1 in sorted(self._access_roles(w_qual, write)):
                g1 = self._effective_guards(w_qual, write, r1)
                for a_qual, access in sorted(
                        entries, key=lambda e: (e[0], e[1].line)):
                    if self._funcs[a_qual][1].is_ctor:
                        continue
                    for r2 in sorted(self._access_roles(a_qual, access)):
                        if r1 == r2:
                            continue
                        g2 = self._effective_guards(a_qual, access, r2)
                        if g1 is None or g2 is None:
                            continue
                        if g1 & g2:
                            continue
                        label = ("attribute '%s.%s'" % (class_name, name)
                                 if scope == "attr"
                                 else "module global '%s.%s'" % (module,
                                                                 name))
                        w_path = self.project.summaries[
                            self._funcs[w_qual][0]].path
                        message = (
                            "shared %s is written by %s and accessed by "
                            "%s with no common lock guard (%s)" % (
                                label,
                                self._describe(r1, w_qual, write.line,
                                               "write"),
                                self._describe(r2, a_qual, access.line,
                                               access.mode),
                                _RACE_REMEDY))
                        return ConcurrencyFinding(w_path, write.line,
                                                  message)
        return None


# -- the interprocedural lifecycle analysis ----------------------------------

class LifecycleAnalysis:
    """Must-close resolution over the project graph (RPR012)."""

    def __init__(self, project) -> None:
        self.project = project
        self._funcs: dict[str, tuple[str, FunctionConcurrencySummary]] = {}
        for module, summary in project.summaries.items():
            for name, facts in getattr(summary, "concurrency", {}).items():
                self._funcs["%s.%s" % (module, name)] = (module, facts)
        #: qual -> (resource kind, acquisition line)
        self._returners: dict[str, tuple[str, int]] = {}
        self._solve_returners()

    def _resolve(self, kind: str, target: str,
                 module: str) -> tuple[str, ...]:
        project = self.project
        if kind == "dotted":
            resolved = project.resolve_callable(target)
            if resolved is not None and resolved[0] == "function":
                return (resolved[1],)
            return ()
        if kind == "local":
            summary = project.summaries.get(module)
            if summary is not None and target in summary.functions:
                return ("%s.%s" % (module, target),)
        return ()

    def _solve_returners(self) -> None:
        for qual, (_module, facts) in self._funcs.items():
            if facts.returns_resource is not None:
                self._returners[qual] = facts.returns_resource
        changed = True
        while changed:
            changed = False
            for qual, (module, facts) in self._funcs.items():
                if qual in self._returners:
                    continue
                for kind, target, line in facts.pending_returns:
                    for callee in self._resolve(kind, target, module):
                        entry = self._returners.get(callee)
                        if entry is not None:
                            self._returners[qual] = (entry[0], line)
                            changed = True
                            break
                    if qual in self._returners:
                        break

    def _leak_message(self, qual: str, resource: str, leak_kind: str,
                      acq_line: int, line: int,
                      via: str | None = None) -> str:
        source = "%s (line %d)" % (qual, acq_line)
        if via is not None:
            source += " -> %s" % via
        if leak_kind == "exception":
            detail = ("line %d can raise before it is closed" % line)
        else:
            detail = ("a path reaches line %d with it still open" % line)
        return ("%s acquired in %s is not closed on every path: %s (%s)"
                % (resource, source, detail, _LEAK_REMEDY))

    def findings(self) -> list[ConcurrencyFinding]:
        found: list[ConcurrencyFinding] = []
        for qual in sorted(self._funcs):
            module, facts = self._funcs[qual]
            summary = self.project.summaries.get(module)
            path = summary.path if summary is not None else module
            for leak in facts.leaks:
                found.append(ConcurrencyFinding(
                    path, leak.acq_line,
                    self._leak_message(qual, leak.resource, leak.kind,
                                       leak.acq_line, leak.line)))
            for leak in facts.pending_leaks:
                for callee in self._resolve(leak.call_kind,
                                            leak.call_target, module):
                    entry = self._returners.get(callee)
                    if entry is None:
                        continue
                    via = ("%s (returns the open %s acquired at line %d)"
                           % (callee, entry[0], entry[1]))
                    found.append(ConcurrencyFinding(
                        path, leak.acq_line,
                        self._leak_message(qual, entry[0], leak.kind,
                                           leak.acq_line, leak.line,
                                           via=via)))
                    break
        found.extend(self._field_findings())
        seen: set[tuple[str, int, str]] = set()
        unique = [f for f in found
                  if (key := (f.path, f.line, f.message)) not in seen
                  and not seen.add(key)]
        return sorted(unique, key=lambda f: (f.path, f.line, f.message))

    def _field_findings(self) -> list[ConcurrencyFinding]:
        transfers: dict[tuple[str, str, str],
                        list[tuple[str, FieldTransfer]]] = {}
        closes: dict[tuple[str, str], set[str]] = {}
        for qual, (module, facts) in self._funcs.items():
            if facts.class_name is None:
                continue
            closes.setdefault((module, facts.class_name), set()).update(
                facts.attr_closes)
            for transfer in facts.field_transfers:
                key = (module, facts.class_name, transfer.attr)
                transfers.setdefault(key, []).append((qual, transfer))
        found: list[ConcurrencyFinding] = []
        for key in sorted(transfers):
            module, class_name, attr = key
            if attr in closes.get((module, class_name), set()):
                continue
            qual, transfer = sorted(transfers[key],
                                    key=lambda e: e[1].line)[0]
            resource = transfer.resource
            via = None
            if not resource:
                resolved = None
                for callee in self._resolve(transfer.call_kind,
                                            transfer.call_target, module):
                    resolved = self._returners.get(callee)
                    if resolved is not None:
                        via = callee
                        break
                if resolved is None:
                    continue
                resource = resolved[0]
            summary = self.project.summaries.get(module)
            path = summary.path if summary is not None else module
            source = "%s (line %d)" % (qual, transfer.line)
            if via is not None:
                source += " -> %s (returns the open %s)" % (via, resource)
            message = ("%s stored on %s.%s in %s but no %s method closes "
                       "self.%s (add a close/shutdown path that releases "
                       "it, or suppress with a justified noqa[RPR012])"
                       % (resource, class_name, attr, source, class_name,
                          attr))
            found.append(ConcurrencyFinding(path, transfer.line, message))
        return found
