"""Lint driver: per-file pass, whole-project pass, incremental reuse.

The driver owns everything that is not rule-specific: discovering Python
files, parsing them, deriving dotted module names, attaching parent links to
AST nodes (several checkers need to know the context a node appears in),
honouring ``# repro: noqa[RULE]`` suppression comments, stitching per-file
summaries into the :class:`~repro.devtools.callgraph.Project` graph the
interprocedural rules (RPR006–012) run over, and reusing cached per-file
results for files whose content fingerprint has not changed
(:mod:`repro.devtools.incremental`).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.devtools.diagnostics import Diagnostic
from repro.devtools.registry import ProjectChecker, select_checkers

#: Suppression comment: ``# repro: noqa`` silences every rule on the line,
#: ``# repro: noqa[RPR001]`` / ``# repro: noqa[RPR001,RPR003]`` only those.
_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:\[(?P<rules>[A-Za-z0-9_,\s]+)\])?"
)

#: Sentinel stored in the noqa map when a line suppresses every rule.
_ALL_RULES = frozenset({"*"})


@dataclass
class FileContext:
    """Everything a checker may want to know about one parsed file."""

    path: str
    module: str
    tree: ast.Module
    source: str
    lines: list[str] = field(default_factory=list)
    is_package: bool = False

    @property
    def layer(self) -> str | None:
        """The top-level ``repro`` subpackage this module lives in, if any."""
        parts = self.module.split(".")
        if len(parts) >= 2 and parts[0] == "repro":
            return parts[1]
        return None


def module_name_for(path: Path) -> str:
    """Derive the dotted module name of ``path`` from its package layout.

    Walks up through directories that contain ``__init__.py``, so it works
    for the real tree and for fixture trees in temporary directories alike.
    """
    path = path.resolve()
    parts: list[str] = [] if path.name == "__init__.py" else [path.stem]
    current = path.parent
    while (current / "__init__.py").is_file():
        parts.insert(0, current.name)
        parent = current.parent
        if parent == current:
            break
        current = parent
    return ".".join(parts) if parts else path.stem


def parse_source(source: str, path: str = "<string>",
                 module: str | None = None,
                 is_package: bool = False) -> FileContext:
    """Parse ``source`` into a :class:`FileContext` with parent links set."""
    tree = ast.parse(source, filename=path)
    for parent in ast.walk(tree):
        for child in ast.iter_child_nodes(parent):
            child.repro_parent = parent  # type: ignore[attr-defined]
    if module is None:
        module = Path(path).stem
    return FileContext(
        path=path,
        module=module,
        tree=tree,
        source=source,
        lines=source.splitlines(),
        is_package=is_package,
    )


def noqa_rules(context: FileContext) -> dict[int, frozenset[str]]:
    """Map 1-based line numbers to the rule ids suppressed on that line."""
    suppressed: dict[int, frozenset[str]] = {}
    for number, text in enumerate(context.lines, start=1):
        match = _NOQA_RE.search(text)
        if match is None:
            continue
        listed = match.group("rules")
        if listed is None:
            suppressed[number] = _ALL_RULES
        else:
            suppressed[number] = frozenset(
                rule.strip().upper() for rule in listed.split(",") if rule.strip()
            )
    return suppressed


def lint_source(source: str, path: str = "<string>",
                module: str | None = None,
                rules: Iterable[str] | None = None,
                is_package: bool = False) -> list[Diagnostic]:
    """Lint a source string; the workhorse behind :func:`lint_paths` and tests."""
    try:
        context = parse_source(source, path=path, module=module,
                               is_package=is_package)
    except SyntaxError as exc:
        return [Diagnostic(
            path=path, line=exc.lineno or 1, col=exc.offset or 0,
            rule="RPR000", message="syntax error: %s" % (exc.msg,),
        )]
    suppressed = noqa_rules(context)
    findings: list[Diagnostic] = []
    for checker in select_checkers(rules):
        for diagnostic in checker.check(context):
            on_line = suppressed.get(diagnostic.line)
            if on_line is not None and (on_line is _ALL_RULES
                                        or diagnostic.rule in on_line):
                continue
            findings.append(diagnostic)
    return sorted(findings)


def iter_python_files(paths: Sequence[str | Path]) -> Iterable[Path]:
    """Expand files/directories into a sorted, de-duplicated .py file list."""
    seen: set[Path] = set()
    collected: list[Path] = []
    for raw in paths:
        root = Path(raw)
        if root.is_dir():
            candidates = sorted(root.rglob("*.py"))
        else:
            candidates = [root]
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved in seen:
                continue
            if "__pycache__" in resolved.parts:
                continue
            seen.add(resolved)
            collected.append(candidate)
    return collected


@dataclass
class LintResult:
    """Outcome of one :func:`run_lint` invocation."""

    diagnostics: list[Diagnostic]
    files_analyzed: int = 0
    files_skipped: int = 0


def _analyze_file(path: Path, source: str, source_hash: str):
    """Full per-file analysis: diagnostics (pre-noqa, all rules) + summary."""
    from repro.devtools.callgraph import summarize_source
    from repro.devtools.incremental import FileRecord

    display = str(path)
    module = module_name_for(path)
    is_package = path.name == "__init__.py"
    try:
        context = parse_source(source, path=display, module=module,
                               is_package=is_package)
    except SyntaxError as exc:
        return FileRecord(
            path=display, source_hash=source_hash,
            diagnostics=[Diagnostic(
                path=display, line=exc.lineno or 1, col=exc.offset or 0,
                rule="RPR000", message="syntax error: %s" % (exc.msg,))])
    diagnostics: list[Diagnostic] = []
    for checker in select_checkers(None):
        diagnostics.extend(checker.check(context))
    summary = summarize_source(context.tree, module, display,
                               is_package=is_package)
    return FileRecord(path=display, source_hash=source_hash,
                      diagnostics=sorted(diagnostics),
                      noqa=dict(noqa_rules(context)), summary=summary)


def _visible(diagnostic: Diagnostic, selected: frozenset[str] | None,
             noqa: dict[int, frozenset[str]]) -> bool:
    """Apply rule selection and noqa suppression to one diagnostic."""
    if (selected is not None and diagnostic.rule != "RPR000"
            and diagnostic.rule not in selected):
        return False
    on_line = noqa.get(diagnostic.line)
    return not (on_line is not None
                and ("*" in on_line or diagnostic.rule in on_line))


def _discover_contracts(paths: Sequence[str | Path]) -> str | None:
    """The nearest ``wire-contracts.json`` at or above any linted path."""
    for raw in paths:
        root = Path(raw).resolve()
        for candidate in (root, *root.parents):
            found = candidate / "wire-contracts.json"
            if found.is_file():
                return str(found)
    return None


def run_lint(paths: Sequence[str | Path],
             rules: Iterable[str] | None = None,
             cache_path: str | Path | None = None,
             contracts_path: str | Path | None = None) -> LintResult:
    """Lint ``paths``: per-file rules, then the interprocedural pass.

    With ``cache_path`` set, per-file results are reused for files whose
    content fingerprint is unchanged (see
    :mod:`repro.devtools.incremental`); the project-wide pass always
    re-runs over the assembled summaries.  Cached entries hold pre-noqa,
    all-rule diagnostics, so ``rules`` narrows the *report*, never the
    cache.  ``contracts_path`` pins the ``wire-contracts.json`` RPR010
    checks against; when omitted, the nearest one at or above a linted
    path is used.
    """
    import repro.util.fingerprint as fp
    from repro.devtools.callgraph import Project
    from repro.devtools.effects import EffectAnalysis

    cache = None
    if cache_path is not None:
        from repro.devtools.incremental import LintCache
        cache = LintCache.load(cache_path)

    records = []
    analyzed = skipped = 0
    for path in iter_python_files(paths):
        source = path.read_text(encoding="utf-8")
        source_hash = fp.hash_text(source)
        key = str(path.resolve())
        record = cache.lookup(key, source_hash) if cache is not None else None
        if record is not None:
            skipped += 1
        else:
            record = _analyze_file(path, source, source_hash)
            analyzed += 1
            if cache is not None:
                cache.store(key, record)  # repro: noqa[RPR009] -- records hold noqa/module-name sets, but every to_dict sorts them before the cache is serialized
        records.append(record)
    if cache is not None:
        cache.save()

    project = Project([r.summary for r in records if r.summary is not None])
    if contracts_path is None:
        contracts_path = _discover_contracts(paths)
    project.contracts_path = (None if contracts_path is None
                              else str(contracts_path))
    effects = EffectAnalysis(project)
    project_diagnostics: list[Diagnostic] = []
    for checker in select_checkers(rules):
        if isinstance(checker, ProjectChecker):
            project_diagnostics.extend(checker.check_project(project, effects))

    selected = None if rules is None else frozenset(rules)
    noqa_by_path = {record.path: record.noqa for record in records}
    findings: list[Diagnostic] = []
    for record in records:
        findings.extend(d for d in record.diagnostics
                        if _visible(d, selected, record.noqa))
    findings.extend(
        d for d in project_diagnostics
        if _visible(d, selected, noqa_by_path.get(d.path, {})))
    return LintResult(diagnostics=sorted(findings),
                      files_analyzed=analyzed, files_skipped=skipped)


def lint_paths(paths: Sequence[str | Path],
               rules: Iterable[str] | None = None) -> list[Diagnostic]:
    """Lint every Python file reachable from ``paths``."""
    return run_lint(paths, rules=rules).diagnostics
