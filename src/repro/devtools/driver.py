"""Per-file lint driver.

The driver owns everything that is not rule-specific: discovering Python
files, parsing them, deriving dotted module names, attaching parent links to
AST nodes (several checkers need to know the context a node appears in), and
honouring ``# repro: noqa[RULE]`` suppression comments.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.devtools.diagnostics import Diagnostic
from repro.devtools.registry import select_checkers

#: Suppression comment: ``# repro: noqa`` silences every rule on the line,
#: ``# repro: noqa[RPR001]`` / ``# repro: noqa[RPR001,RPR003]`` only those.
_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:\[(?P<rules>[A-Za-z0-9_,\s]+)\])?"
)

#: Sentinel stored in the noqa map when a line suppresses every rule.
_ALL_RULES = frozenset({"*"})


@dataclass
class FileContext:
    """Everything a checker may want to know about one parsed file."""

    path: str
    module: str
    tree: ast.Module
    source: str
    lines: list[str] = field(default_factory=list)
    is_package: bool = False

    @property
    def layer(self) -> str | None:
        """The top-level ``repro`` subpackage this module lives in, if any."""
        parts = self.module.split(".")
        if len(parts) >= 2 and parts[0] == "repro":
            return parts[1]
        return None


def module_name_for(path: Path) -> str:
    """Derive the dotted module name of ``path`` from its package layout.

    Walks up through directories that contain ``__init__.py``, so it works
    for the real tree and for fixture trees in temporary directories alike.
    """
    path = path.resolve()
    parts: list[str] = [] if path.name == "__init__.py" else [path.stem]
    current = path.parent
    while (current / "__init__.py").is_file():
        parts.insert(0, current.name)
        parent = current.parent
        if parent == current:
            break
        current = parent
    return ".".join(parts) if parts else path.stem


def parse_source(source: str, path: str = "<string>",
                 module: str | None = None,
                 is_package: bool = False) -> FileContext:
    """Parse ``source`` into a :class:`FileContext` with parent links set."""
    tree = ast.parse(source, filename=path)
    for parent in ast.walk(tree):
        for child in ast.iter_child_nodes(parent):
            child.repro_parent = parent  # type: ignore[attr-defined]
    if module is None:
        module = Path(path).stem
    return FileContext(
        path=path,
        module=module,
        tree=tree,
        source=source,
        lines=source.splitlines(),
        is_package=is_package,
    )


def noqa_rules(context: FileContext) -> dict[int, frozenset[str]]:
    """Map 1-based line numbers to the rule ids suppressed on that line."""
    suppressed: dict[int, frozenset[str]] = {}
    for number, text in enumerate(context.lines, start=1):
        match = _NOQA_RE.search(text)
        if match is None:
            continue
        listed = match.group("rules")
        if listed is None:
            suppressed[number] = _ALL_RULES
        else:
            suppressed[number] = frozenset(
                rule.strip().upper() for rule in listed.split(",") if rule.strip()
            )
    return suppressed


def lint_source(source: str, path: str = "<string>",
                module: str | None = None,
                rules: Iterable[str] | None = None,
                is_package: bool = False) -> list[Diagnostic]:
    """Lint a source string; the workhorse behind :func:`lint_paths` and tests."""
    try:
        context = parse_source(source, path=path, module=module,
                               is_package=is_package)
    except SyntaxError as exc:
        return [Diagnostic(
            path=path, line=exc.lineno or 1, col=exc.offset or 0,
            rule="RPR000", message="syntax error: %s" % (exc.msg,),
        )]
    suppressed = noqa_rules(context)
    findings: list[Diagnostic] = []
    for checker in select_checkers(rules):
        for diagnostic in checker.check(context):
            on_line = suppressed.get(diagnostic.line)
            if on_line is not None and (on_line is _ALL_RULES
                                        or diagnostic.rule in on_line):
                continue
            findings.append(diagnostic)
    return sorted(findings)


def iter_python_files(paths: Sequence[str | Path]) -> Iterable[Path]:
    """Expand files/directories into a sorted, de-duplicated .py file list."""
    seen: set[Path] = set()
    collected: list[Path] = []
    for raw in paths:
        root = Path(raw)
        if root.is_dir():
            candidates = sorted(root.rglob("*.py"))
        else:
            candidates = [root]
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved in seen:
                continue
            if "__pycache__" in resolved.parts:
                continue
            seen.add(resolved)
            collected.append(candidate)
    return collected


def lint_paths(paths: Sequence[str | Path],
               rules: Iterable[str] | None = None) -> list[Diagnostic]:
    """Lint every Python file reachable from ``paths``."""
    findings: list[Diagnostic] = []
    for path in iter_python_files(paths):
        source = path.read_text(encoding="utf-8")
        findings.extend(lint_source(
            source, path=str(path), module=module_name_for(path), rules=rules,
            is_package=path.name == "__init__.py",
        ))
    return sorted(findings)
