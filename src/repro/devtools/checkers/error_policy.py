"""RPR004 — error policy.

Library code signals domain failures with the :mod:`repro.errors` hierarchy
(so callers can catch ``ReproError``) and builtin ``ValueError`` /
``TypeError`` for caller-contract violations.  Two patterns defeat both:

* ``raise Exception(...)`` (or ``BaseException``) — uncatchable without a
  blanket handler, carries no type information;
* ``except:`` / ``except BaseException:`` / ``except Exception:`` — swallows
  ``KeyboardInterrupt``/``SystemExit`` or masks genuine bugs as handled
  conditions.

A deliberate top-level catch-all (e.g. in a CLI main loop) should carry a
``# repro: noqa[RPR004]`` with the reason in a nearby comment.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.checkers._helpers import dotted_parts
from repro.devtools.diagnostics import Diagnostic
from repro.devtools.driver import FileContext
from repro.devtools.registry import Checker, register

#: Exception names too generic to raise or catch in library code.
GENERIC_EXCEPTIONS = frozenset({"Exception", "BaseException"})


@register
class ErrorPolicyChecker(Checker):
    rule = "RPR004"
    summary = ("raise repro.errors types, not generic Exception; "
               "no bare or blanket except clauses")

    def check(self, context: FileContext) -> Iterator[Diagnostic]:
        for node in ast.walk(context.tree):
            if isinstance(node, ast.Raise):
                yield from self._check_raise(context, node)
            elif isinstance(node, ast.ExceptHandler):
                yield from self._check_handler(context, node)

    def _exception_name(self, node: ast.expr) -> str | None:
        if isinstance(node, ast.Call):
            node = node.func
        parts = dotted_parts(node)
        return parts[-1] if parts else None

    def _check_raise(self, context: FileContext,
                     node: ast.Raise) -> Iterator[Diagnostic]:
        if node.exc is None:  # re-raise inside a handler is fine
            return
        name = self._exception_name(node.exc)
        if name in GENERIC_EXCEPTIONS:
            yield self.diagnostic(
                context, node,
                "raise %s carries no type information; raise a repro.errors "
                "type (or ValueError/TypeError for contract violations)"
                % (name,),
            )

    def _check_handler(self, context: FileContext,
                       node: ast.ExceptHandler) -> Iterator[Diagnostic]:
        if node.type is None:
            yield self.diagnostic(
                context, node,
                "bare except: swallows KeyboardInterrupt and SystemExit; "
                "catch a specific exception type",
            )
            return
        caught = node.type.elts if isinstance(node.type, ast.Tuple) else [node.type]
        for expr in caught:
            name = self._exception_name(expr)
            if name in GENERIC_EXCEPTIONS:
                yield self.diagnostic(
                    context, expr,
                    "except %s masks bugs as handled conditions; catch "
                    "repro.errors.ReproError or a specific type" % (name,),
                )
