"""RPR009 — order-unstable values must not reach reproducibility sinks.

Every digest, cached artifact, ``ShardResult`` payload, and serialized
result in this codebase is part of the bit-for-bit reproducibility
contract (DESIGN.md §12): if the bytes depend on the iteration order of
a ``set``, an unsorted ``glob``, or a dict accumulated in nondeterministic
order, equal runs stop producing equal digests — and the failure only
surfaces when two machines happen to disagree.  This rule finds those
flows statically: an abstract interpretation tracks order taint through
each function (:mod:`repro.devtools.ordering`), and a project-level
fixpoint propagates it across call boundaries, so the diagnostic carries
a witness chain from the sink back to the unordered source even when
they live in different modules.

The fix is always the same — pass the value through a deterministic
barrier (``sorted()``, ``.sort()``, or the :mod:`repro.util.ordering`
helpers) before it reaches the sink.  Intentional exceptions carry a
justified suppression on the sink or call line::

    payload = json.dumps(tags)  # repro: noqa[RPR009] -- tags is a singleton
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from repro.devtools.ordering import OrderAnalysis
from repro.devtools.registry import ProjectChecker, register

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.devtools.callgraph import Project
    from repro.devtools.diagnostics import Diagnostic
    from repro.devtools.effects import EffectAnalysis


@register
class OrderTaintChecker(ProjectChecker):
    rule = "RPR009"
    summary = ("order-unstable values (sets, globs, unsorted dict "
               "accumulation) must not reach digests, artifacts, or wire "
               "payloads")

    def check_project(self, project: "Project", effects: "EffectAnalysis",
                      ) -> Iterator["Diagnostic"]:
        analysis = OrderAnalysis(project)
        for finding in analysis.findings():
            yield self.project_diagnostic(finding.path, finding.line,
                                          finding.message)
