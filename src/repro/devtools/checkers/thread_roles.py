"""RPR011 — cross-thread shared state must be locked, confined, or safe.

The distributed layer is multi-threaded by design: the coordinator
spawns one handler thread per worker connection, workers run daemon
heartbeat threads, and loopback mode dials the coordinator from worker
threads in the same process.  A mutable ``self`` attribute or module
global written from one *thread role* and touched from another without
a common lock is a data race — exactly the interleaving hazard that
silently corrupts the exact-accounting and digest-equality guarantees
the headline results rest on.

The analysis (:mod:`repro.devtools.concurrency`) infers roles from
``threading.Thread(target=...)`` sites and ``add_done_callback``
registrations, propagates them along resolved call edges, and checks
every shared location written outside the constructor.  An access is
exempt when:

* every racing pair shares a textual ``with <lock>`` guard — held
  locally or inherited interprocedurally (a callee whose every in-role
  call site sits under ``with self._lock`` is lock-dominated);
* the attribute is thread-confined — written only in ``__init__`` /
  ``__post_init__``, before another thread can see the object;
* the value is an intrinsically safe type (``threading.Event``,
  ``queue.Queue``, ... — the wire-contract-pinned
  :data:`~repro.devtools.concurrency.SAFE_TYPE_NAMES` set) or an
  RPR008 initializer-owned worker global.

A trigger looks like::

    class Server:
        def __init__(self):
            self.hits = 0
            threading.Thread(target=self._serve).start()
        def _serve(self):
            self.hits += 1       # written from thread '..._serve'
        def report(self):
            return self.hits     # read from main, no common lock

Fix by holding one consistent lock at every cross-thread access, or
suppress an intentional pattern on the *write* line with a reason::

    self._current_lease = lease_id  # repro: noqa[RPR011] -- racy int read is a heartbeat hint, staleness is harmless
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from repro.devtools.concurrency import RaceAnalysis
from repro.devtools.registry import ProjectChecker, register

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.devtools.callgraph import Project
    from repro.devtools.diagnostics import Diagnostic
    from repro.devtools.effects import EffectAnalysis


@register
class ThreadRoleChecker(ProjectChecker):
    rule = "RPR011"
    summary = ("shared state crossing thread roles must be lock-guarded, "
               "thread-confined, or an intrinsically safe type")

    def check_project(self, project: "Project", effects: "EffectAnalysis",
                      ) -> Iterator["Diagnostic"]:
        analysis = RaceAnalysis(project)
        for finding in analysis.findings():
            yield self.project_diagnostic(finding.path, finding.line,
                                          finding.message)
