"""RPR008 — process-pool worker state discipline.

``ShardedRunner`` ships work to ``ProcessPoolExecutor`` workers as
module-level task functions (picklable by qualified name) operating on a
per-process context installed by the pool initializer
(:mod:`repro.runtime.workers`).  Two things break that contract
statically:

* **Unpicklable task references** — a lambda or nested function handed to
  ``pool.map``/``pool.submit`` cannot be pickled by qualified name and
  fails (or worse, only fails under ``spawn``, which CI may not run).
* **Unsanctioned module-level mutation** — a worker module may only
  mutate the globals its initializer installs (those are re-established
  per process, so their state is a deterministic function of the
  context).  Any *other* module-level write is per-process state that
  fork-inherited workers share but spawn workers do not, making results
  depend on pool internals.

The sanctioned set is derived, not hard-coded: it is the union of the
module-level names the initializer functions write (for
``repro.runtime.workers.init_worker`` that is ``_context``, ``_filter``
and ``_verdicts``).  Memoization caches like ``_verdicts`` pass exactly
because the initializer clears them.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from repro.devtools.registry import ProjectChecker, register

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.devtools.callgraph import Project
    from repro.devtools.diagnostics import Diagnostic
    from repro.devtools.effects import EffectAnalysis


@register
class WorkerStateChecker(ProjectChecker):
    rule = "RPR008"
    summary = "pool tasks must be picklable; worker globals initializer-owned"

    def check_project(self, project: "Project", effects: "EffectAnalysis",
                      ) -> Iterator["Diagnostic"]:
        initializer_funcs: set[str] = set()
        worker_modules: set[str] = set()
        for module in sorted(project.summaries):
            summary = project.summaries[module]
            for site in summary.pool_sites:
                if site.role != "initializer":
                    continue
                resolved = project.resolve_callable(site.target)
                if resolved is not None and resolved[0] == "function":
                    initializer_funcs.add(resolved[1])
                    func_module = project.resolve_module(resolved[1])
                    if func_module is not None:
                        worker_modules.add(func_module)

        # -- unpicklable or unresolvable task references ----------------------
        for module in sorted(project.summaries):
            summary = project.summaries[module]
            for site in summary.pool_sites:
                if site.role != "task":
                    continue
                target = site.target.rsplit(".", 1)[-1]
                if target == "<lambda>" or target.startswith("<nested:"):
                    yield self.project_diagnostic(
                        summary.path, site.line,
                        "pool task %s cannot be pickled by qualified name; "
                        "move it to module level" % site.target)
                    continue
                resolved = project.resolve_callable(site.target)
                if resolved is not None and resolved[0] == "function":
                    func_module = project.resolve_module(resolved[1])
                    if func_module is not None:
                        worker_modules.add(func_module)

        # -- module-level writes outside the initializer-owned set -----------
        for module in sorted(worker_modules):
            summary = project.summaries.get(module)
            if summary is None:
                continue
            sanctioned: set[str] = set()
            for qualname in initializer_funcs:
                if project.resolve_module(qualname) != module:
                    continue
                function = project.function(qualname)
                if function is not None:
                    sanctioned.update(
                        name for name, _ in function.global_writes)
            for function in summary.functions.values():
                qualname = "%s.%s" % (module, function.name)
                if qualname in initializer_funcs:
                    continue
                for name, line in function.global_writes:
                    if name in sanctioned:
                        continue
                    yield self.project_diagnostic(
                        summary.path, line,
                        "worker module function %s mutates module-level "
                        "'%s', which the pool initializer does not install; "
                        "per-process state outside the initializer-owned "
                        "set (%s) makes jobs=N results depend on pool "
                        "internals" % (qualname, name,
                                       ", ".join(sorted(sanctioned)) or
                                       "empty"))
