"""RPR012 — every acquired resource must be closed on every path.

Sockets, ``Channel``s, file handles, executors and temporary
files/directories are acquired all over the dist/runtime layers — and
an acquisition that leaks on an exception path exhausts descriptors
under fault injection, wedges CI workers, and (for executors) strands
worker processes whose half-written artifacts poison exact accounting.

The analysis (:mod:`repro.devtools.concurrency`) walks each function
path-sensitively, tracking an obligation per acquired local.  An
obligation is discharged by:

* a ``with`` block (the context manager closes it);
* a close call (``close``/``shutdown``/``terminate``/``cleanup``)
  protected by ``try``/``finally`` or a closing ``except`` handler;
* ownership transfer — returning the resource, passing it to a callee
  (handing a socket to a handler thread transfers the obligation), or
  storing it on a ``self`` field that some method of the class closes.

Calls to project functions that *return* an open resource create the
same obligation in the caller — resolved by a project-level fixpoint,
so the witness chain crosses function boundaries.

A trigger looks like::

    def dial(host, port):
        sock = socket.create_connection((host, port))
        sock.settimeout(5.0)        # raises -> sock leaks
        return Channel(sock)

and is fixed by closing on the error path::

    sock = socket.create_connection((host, port))
    try:
        sock.settimeout(5.0)
    except OSError:
        sock.close()
        raise
    return Channel(sock)

Suppress an intentional leak on the *acquisition* line with a reason::

    pool = ProcessPoolExecutor(2)  # repro: noqa[RPR012] -- process-lifetime pool, reaped at exit
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from repro.devtools.concurrency import LifecycleAnalysis
from repro.devtools.registry import ProjectChecker, register

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.devtools.callgraph import Project
    from repro.devtools.diagnostics import Diagnostic
    from repro.devtools.effects import EffectAnalysis


@register
class ResourceLifecycleChecker(ProjectChecker):
    rule = "RPR012"
    summary = ("sockets, channels, files, executors and tempdirs must be "
               "closed on every path or have their ownership transferred")

    def check_project(self, project: "Project", effects: "EffectAnalysis",
                      ) -> Iterator["Diagnostic"]:
        analysis = LifecycleAnalysis(project)
        for finding in analysis.findings():
            yield self.project_diagnostic(finding.path, finding.line,
                                          finding.message)
