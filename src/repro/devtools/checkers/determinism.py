"""RPR001 — determinism.

The simulator must be bit-for-bit reproducible from a scenario seed.  Two
classes of call silently break that:

* the module-level :mod:`random` functions (``random.random()``,
  ``random.choice()``, ...) and ``random.seed()``, which share one hidden
  global state — any library code touching them couples unrelated
  components' draw sequences;
* unseeded ``random.Random()`` and ``random.SystemRandom()``, which seed
  from the OS;
* wall-clock reads (``time.time()``, ``datetime.now()``) inside the
  simulation and analysis layers, whose results must depend only on the
  scenario.

All randomness flows through :func:`repro.util.rng.substream`, which derives
a named, seeded :class:`random.Random` per component; :mod:`repro.util.rng`
itself is therefore exempt.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.checkers._helpers import dotted_parts
from repro.devtools.diagnostics import Diagnostic
from repro.devtools.driver import FileContext
from repro.devtools.registry import Checker, register

#: The one module allowed to call into :mod:`random` freely.
RNG_HOME = "repro.util.rng"

#: Layers where wall-clock reads are forbidden (results must be functions of
#: the scenario seed, never of when the code happened to run).
WALLCLOCK_FORBIDDEN_LAYERS = frozenset({"sim", "core"})

#: ``(penultimate, last)`` dotted-name suffixes that read the wall clock.
WALLCLOCK_SUFFIXES = frozenset({
    ("time", "time"),
    ("time", "time_ns"),
    ("time", "monotonic"),
    ("time", "monotonic_ns"),
    ("time", "perf_counter"),
    ("time", "perf_counter_ns"),
    ("datetime", "now"),
    ("datetime", "utcnow"),
    ("datetime", "today"),
    ("date", "today"),
})


@register
class DeterminismChecker(Checker):
    rule = "RPR001"
    summary = ("randomness must flow through seeded repro.util.rng substreams;"
               " no wall-clock reads in sim/core")

    def check(self, context: FileContext) -> Iterator[Diagnostic]:
        if context.module == RNG_HOME:
            return
        module_aliases, class_aliases = self._random_aliases(context.tree)
        for node in ast.walk(context.tree):
            if isinstance(node, ast.ImportFrom):
                yield from self._check_from_import(context, node)
            elif isinstance(node, ast.Call):
                yield from self._check_call(
                    context, node, module_aliases, class_aliases)

    def _random_aliases(self, tree: ast.Module) -> tuple[set[str], set[str]]:
        """Names bound to the ``random`` module / the ``Random`` class."""
        modules: set[str] = set()
        classes: set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random":
                        modules.add(alias.asname or alias.name)
            elif isinstance(node, ast.ImportFrom) and node.module == "random":
                for alias in node.names:
                    if alias.name == "Random":
                        classes.add(alias.asname or alias.name)
        return modules, classes

    def _check_from_import(self, context: FileContext,
                           node: ast.ImportFrom) -> Iterator[Diagnostic]:
        if node.module != "random" or node.level:
            return
        for alias in node.names:
            if alias.name not in ("Random",):
                yield self.diagnostic(
                    context, node,
                    "from random import %s binds a global-RNG function; "
                    "draw from a seeded substream via repro.util.rng instead"
                    % (alias.name,),
                )

    def _check_call(self, context: FileContext, node: ast.Call,
                    module_aliases: set[str],
                    class_aliases: set[str]) -> Iterator[Diagnostic]:
        func = node.func
        # Unseeded Random() via `from random import Random`.
        if (isinstance(func, ast.Name) and func.id in class_aliases
                and not node.args and not node.keywords):
            yield self.diagnostic(
                context, node,
                "unseeded Random() seeds from the OS; pass an explicit seed "
                "or use repro.util.rng.substream",
            )
            return
        parts = dotted_parts(func)
        if parts is None:
            return
        if len(parts) >= 2 and parts[0] in module_aliases:
            attr = parts[-1]
            if attr == "Random" and len(parts) == 2:
                if not node.args and not node.keywords:
                    yield self.diagnostic(
                        context, node,
                        "unseeded random.Random() seeds from the OS; pass an "
                        "explicit seed or use repro.util.rng.substream",
                    )
                return
            if attr == "SystemRandom":
                yield self.diagnostic(
                    context, node,
                    "random.SystemRandom() is nondeterministic by design; "
                    "use a seeded substream from repro.util.rng",
                )
                return
            yield self.diagnostic(
                context, node,
                "random.%s() uses the shared global RNG; draw from a seeded "
                "substream via repro.util.rng instead" % (attr,),
            )
            return
        if (context.layer in WALLCLOCK_FORBIDDEN_LAYERS and len(parts) >= 2
                and tuple(parts[-2:]) in WALLCLOCK_SUFFIXES):
            yield self.diagnostic(
                context, node,
                "%s() reads the wall clock; %s code must be a pure function "
                "of the scenario (pass timestamps in explicitly)"
                % (".".join(parts), context.layer),
            )
