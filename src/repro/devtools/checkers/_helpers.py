"""Small AST helpers shared by the built-in checkers."""

from __future__ import annotations

import ast


def dotted_parts(node: ast.expr) -> list[str] | None:
    """Flatten ``a.b.c`` attribute chains to ``["a", "b", "c"]``.

    Returns ``None`` when the chain is rooted in anything other than a plain
    name (a call result, a subscript, ...), in which case callers should not
    guess at what the expression refers to.
    """
    parts: list[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        parts.reverse()
        return parts
    return None


def decorator_call(node: ast.expr) -> tuple[str | None, ast.Call | None]:
    """Resolve a decorator to ``(name, call)``.

    ``@dataclass`` gives ``("dataclass", None)``; ``@dataclass(frozen=True)``
    gives ``("dataclass", <Call>)``; ``@dataclasses.dataclass`` resolves the
    attribute chain to its final component.
    """
    call: ast.Call | None = None
    target = node
    if isinstance(target, ast.Call):
        call = target
        target = target.func
    if isinstance(target, ast.Name):
        return target.id, call
    if isinstance(target, ast.Attribute):
        return target.attr, call
    return None, call
