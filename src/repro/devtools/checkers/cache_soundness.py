"""RPR007 — code_version must hash every module a stage can reach.

The artifact cache's ``code_version`` component hashes the source of the
packages listed in ``CODE_VERSION_PACKAGES``
(:mod:`repro.runtime.cache`).  That set is sound only if it *covers the
transitive import closure of the stage functions*: a module a stage can
reach but that is not hashed can change behaviour without changing the
cache key, so stale artifacts would keep validating.

This checker recomputes the closure from the stage graph declarations
(``StageSpec(...)`` sites) over the project import graph — excluding the
root-package facade, whose convenience re-exports would otherwise make
everything reachable from everything — and reports every reachable
module that no ``CODE_VERSION_PACKAGES`` entry covers, with the import
chain that makes it reachable.  The fix is almost always adding the
module's package to ``CODE_VERSION_PACKAGES`` (over-hashing merely costs
cache warmth; under-hashing costs correctness).

The one exception is :data:`RESULT_INERT_PREFIXES`: the observability
layer is reachable from the executor but *result-inert* — no value it
produces flows into a stage output, so hashing it would invalidate every
cached artifact on an instrumentation edit for no correctness gain.
That inertness is itself machine-checked, just elsewhere: RPR006 fails
any stage function whose call graph reaches ``repro.obs`` (its clock and
pid reads make the function non-PURE), so the exemption cannot be used
to smuggle result-affecting code past the cache key.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from repro.devtools.registry import ProjectChecker, register

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.devtools.callgraph import Project
    from repro.devtools.diagnostics import Diagnostic
    from repro.devtools.effects import EffectAnalysis

#: Module prefixes excused from CODE_VERSION_PACKAGES coverage because
#: they are observability-only: spans/metrics/trace output never feeds
#: back into stage results (RPR006 enforces this — see module docstring).
RESULT_INERT_PREFIXES = ("repro.obs",)


@register
class CacheSoundnessChecker(ProjectChecker):
    rule = "RPR007"
    summary = "stage import closure must be covered by CODE_VERSION_PACKAGES"

    def check_project(self, project: "Project", effects: "EffectAnalysis",
                      ) -> Iterator["Diagnostic"]:
        stage_roots: set[str] = set()
        first_decl: tuple[str, int] | None = None
        for module in sorted(project.summaries):
            summary = project.summaries[module]
            for decl in summary.stage_decls:
                if first_decl is None:
                    first_decl = (summary.path, decl.line)
                stage_roots.add(module)
                resolved = project.resolve_callable(decl.func)
                if resolved is not None and resolved[0] == "function":
                    func_module = project.resolve_module(resolved[1])
                    if func_module is not None:
                        stage_roots.add(func_module)
        if not stage_roots or first_decl is None:
            return  # no stage graph in this tree: nothing to keep sound

        decls = [(module, project.summaries[module])
                 for module in sorted(project.summaries)
                 if project.summaries[module].code_version_decl is not None]
        if not decls:
            yield self.project_diagnostic(
                first_decl[0], first_decl[1],
                "a stage graph is declared but no CODE_VERSION_PACKAGES "
                "assignment was found; the artifact cache key cannot cover "
                "stage code")
            return

        for decl_module, summary in decls:
            entries, decl_line = summary.code_version_decl
            root_package = decl_module.split(".", 1)[0]
            covered = [
                "%s.%s" % (root_package,
                           entry[:-3] if entry.endswith(".py") else entry)
                for entry in entries
            ]
            closure = project.reachable_modules(
                sorted(stage_roots), exclude=project.root_packages())
            for module in sorted(closure):
                if any(module == prefix or module.startswith(prefix + ".")
                       for prefix in covered):
                    continue
                if any(module == prefix or module.startswith(prefix + ".")
                       for prefix in RESULT_INERT_PREFIXES):
                    continue
                chain = " -> ".join(project.import_chain(closure, module))
                yield self.project_diagnostic(
                    summary.path, decl_line,
                    "module %s is reachable from the stage graph (%s) but "
                    "no CODE_VERSION_PACKAGES entry covers it; its code can "
                    "change without invalidating cached artifacts"
                    % (module, chain))
