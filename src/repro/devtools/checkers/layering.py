"""RPR003 — import layering.

The package is a strict layer DAG; an import may only point at the same
layer or a lower one:

.. code-block:: text

    errors                                   (rank 0: leaf exception types)
      └─ obs                                 (rank 1: spans/metrics/trace —
           │                                  observability every layer may
           │                                  import, itself importing only
           │                                  errors)
           └─ util                           (rank 2: rng, timeutil, ingest)
                └─ net                       (rank 3: IPv4, tries, pfx2as)
                     └─ dhcp    ppp          (rank 4: siblings — no imports
                          └──────┴─ isp       between them)   (rank 5)
                                    └─ atlas (rank 6: dataset containers)
                                         └─ sim   (rank 7: emits atlas
                                              │    datasets)
                                              └─ faults  (rank 8: corrupts
                                              │           bundles sim.io
                                              │           wrote, and carries
                                              │           the inert process-
                                              │           fault plans the
                                              │           runtime CLI feeds
                                              │           to supervised
                                              │           workers)
                                              └─ core     (rank 9: analysis)
                                                   └─ runtime    (rank 10:
                                                   │    sharded executor,
                                                   │    artifact cache and
                                                   │    fault-tolerant shard
                                                   │    supervisor over the
                                                   │    core stage
                                                   │    functions; may
                                                   │    import faults —
                                                   │    downward — but its
                                                   │    worker path stays
                                                   │    plan-duck-typed)
                                                   └─ experiments  (rank 11)
                                                        └─ dist    (rank 12:
                                                             coordinator/
                                                             worker socket
                                                             execution tier
                                                             over the runtime
                                                             executor; top of
                                                             the DAG, nothing
                                                             imports it)

``repro.devtools`` (this lint framework) sits outside the DAG entirely:
nothing may import it, and it may import only the leaf layers ``errors``
and ``util`` (the incremental lint cache reuses ``repro.util.fingerprint``
rather than growing a second hashing implementation).  The root facade
module ``repro/__init__.py`` re-exports the public API and is exempt.

Keeping the DAG machine-checked is what lets later PRs refactor hot paths
aggressively without silently inverting a dependency.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.diagnostics import Diagnostic
from repro.devtools.driver import FileContext
from repro.devtools.registry import Checker, register

#: Layer ranks; an import must satisfy rank(target) <= rank(importer), and
#: equal-rank imports are only legal within one layer (dhcp and ppp are
#: siblings, not a unit).
LAYER_RANKS = {
    "errors": 0,
    "obs": 1,
    "util": 2,
    "net": 3,
    "dhcp": 4,
    "ppp": 4,
    "isp": 5,
    "atlas": 6,
    "sim": 7,
    "faults": 8,
    "core": 9,
    "runtime": 10,
    "experiments": 11,
    "dist": 12,
}

#: The lint framework: self-contained, outside the runtime DAG.
ISOLATED_LAYERS = frozenset({"devtools"})

#: Leaf layers an isolated layer may still use: pure value vocabulary with
#: no path back into the runtime stack.
ISOLATED_IMPORTABLE = frozenset({"errors", "util"})


@register
class LayeringChecker(Checker):
    rule = "RPR003"
    summary = "package imports must follow the layer DAG downward"

    def check(self, context: FileContext) -> Iterator[Diagnostic]:
        importer = context.layer
        if importer is None:
            # Not a repro submodule (the root facade, scripts, fixtures).
            return
        if importer not in LAYER_RANKS and importer not in ISOLATED_LAYERS:
            yield self.diagnostic(
                context, context.tree,
                "module %s is in unknown layer %r; add it to the layer DAG "
                "in repro.devtools.checkers.layering" % (context.module, importer),
            )
            return
        for node in ast.walk(context.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    yield from self._check_edge(
                        context, node, importer, alias.name.split("."))
            elif isinstance(node, ast.ImportFrom):
                base = self._resolve_base(context, node)
                if base is None:
                    continue
                for alias in node.names:
                    yield from self._check_edge(
                        context, node, importer, base + [alias.name])

    def _resolve_base(self, context: FileContext,
                      node: ast.ImportFrom) -> list[str] | None:
        """Absolute dotted path the ``from ... import`` names hang off."""
        if node.level == 0:
            return (node.module or "").split(".") if node.module else []
        package = context.module.split(".")
        if not context.is_package:
            package = package[:-1]
        drop = node.level - 1
        if drop:
            if drop >= len(package):
                return None
            package = package[:-drop]
        return package + (node.module.split(".") if node.module else [])

    def _check_edge(self, context: FileContext, node: ast.stmt,
                    importer: str, target: list[str]) -> Iterator[Diagnostic]:
        if not target or target[0] != "repro" or len(target) < 2:
            return
        layer = target[1]
        if layer not in LAYER_RANKS and layer not in ISOLATED_LAYERS:
            return  # plain symbol off the root facade, e.g. `repro.__version__`
        if importer in ISOLATED_LAYERS:
            if layer != importer and layer not in ISOLATED_IMPORTABLE:
                yield self.diagnostic(
                    context, node,
                    "repro.%s is outside the layer DAG and may import only "
                    "the leaf layers (%s), but imports repro.%s"
                    % (importer, ", ".join(sorted(ISOLATED_IMPORTABLE)), layer),
                )
            return
        if layer in ISOLATED_LAYERS:
            yield self.diagnostic(
                context, node,
                "repro.%s is a dev-only package; runtime layer repro.%s "
                "must not import it" % (layer, importer),
            )
            return
        importer_rank = LAYER_RANKS[importer]
        target_rank = LAYER_RANKS[layer]
        if target_rank > importer_rank:
            yield self.diagnostic(
                context, node,
                "upward import: repro.%s (rank %d) must not import repro.%s "
                "(rank %d); invert the dependency or move the shared code "
                "down the DAG" % (importer, importer_rank, layer, target_rank),
            )
        elif target_rank == importer_rank and layer != importer:
            yield self.diagnostic(
                context, node,
                "cross-layer import between siblings: repro.%s and repro.%s "
                "are independent peers" % (importer, layer),
            )
