"""RPR010 — serialized boundary types must match ``wire-contracts.json``.

``ShardResult`` crosses the worker pickle boundary, cache entries
outlive the process that wrote them, and the ``repro-obs-trace-1``
payload is consumed by external tooling.  A field rename that would be a
private refactor anywhere else silently invalidates cached artifacts and
(once workers are remote) breaks mixed-version fleets.  This rule turns
such changes into explicit, reviewed events: every marked type/schema
(see :mod:`repro.devtools.wire`) must have an entry in the checked-in
contract file whose spec matches the source *and* whose digest matches
its recorded ``(name, version, spec)`` triple.

Intentional evolution is two commands away::

    repro-lint --contracts wire-contracts.json --update-contracts src/repro
    git add wire-contracts.json   # review the bumped version in the diff

Suppression (``# repro: noqa[RPR010]``) anchors on the marker line of
the declaring class or module.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from repro.devtools.registry import ProjectChecker, register
from repro.devtools.wire import (
    MISSING,
    contract_digest,
    load_contracts,
)

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.devtools.callgraph import Project
    from repro.devtools.diagnostics import Diagnostic
    from repro.devtools.effects import EffectAnalysis

_REGENERATE = ("run `repro-lint --contracts wire-contracts.json "
               "--update-contracts` and commit the diff")


def _spec_drift(recorded: dict, current: dict) -> str:
    """A short human description of how a spec changed."""
    if recorded.get("kind") != current.get("kind"):
        return "declaration kind changed (%s -> %s)" % (
            recorded.get("kind"), current.get("kind"))
    if "fields" in current:
        before = {entry[0]: entry for entry in recorded.get("fields", [])}
        after = {entry[0]: entry for entry in current.get("fields", [])}
        added = sorted(set(after) - set(before))
        removed = sorted(set(before) - set(after))
        altered = sorted(name for name in set(before) & set(after)
                         if before[name] != after[name])
    else:
        before = recorded.get("constants", {})
        after = current.get("constants", {})
        added = sorted(set(after) - set(before))
        removed = sorted(set(before) - set(after))
        altered = sorted(name for name in set(before) & set(after)
                         if before[name] != after[name])
    parts = []
    if added:
        parts.append("added: %s" % ", ".join(added))
    if removed:
        parts.append("removed: %s" % ", ".join(removed))
    if altered:
        parts.append("changed: %s" % ", ".join(altered))
    return "; ".join(parts) or "spec changed"


@register
class WireContractChecker(ProjectChecker):
    rule = "RPR010"
    summary = ("serialized boundary types must match the checked-in "
               "wire-contracts.json (with a version bump on change)")

    def check_project(self, project: "Project", effects: "EffectAnalysis",
                      ) -> Iterator["Diagnostic"]:
        decls = []
        for module in sorted(project.summaries):
            summary = project.summaries[module]
            for decl in summary.wire_decls:
                decls.append((summary.path, decl))
        if not decls:
            return

        contracts_path = project.contracts_path
        if contracts_path is None:
            for path, decl in decls:
                yield self.project_diagnostic(
                    path, decl.line,
                    "wire contract '%s' is declared but no "
                    "wire-contracts.json was found for this run; %s"
                    % (decl.contract, _REGENERATE))
            return
        try:
            contracts = load_contracts(contracts_path)
        except (OSError, ValueError) as error:
            for path, decl in decls:
                yield self.project_diagnostic(
                    path, decl.line,
                    "wire contract '%s' cannot be checked: %s is "
                    "unreadable (%s); %s"
                    % (decl.contract, contracts_path, error, _REGENERATE))
            return

        seen: dict[str, str] = {}
        matched: set[str] = set()
        for path, decl in decls:
            if decl.contract in seen:
                yield self.project_diagnostic(
                    path, decl.line,
                    "wire contract '%s' is declared more than once (also "
                    "in %s); contract names must be unique"
                    % (decl.contract, seen[decl.contract]))
                continue
            seen[decl.contract] = decl.qualname
            matched.add(decl.contract)
            for name, value in decl.constants:
                if value == MISSING:
                    yield self.project_diagnostic(
                        path, decl.line,
                        "wire contract '%s' names constant '%s', which "
                        "is not defined at module level in %s"
                        % (decl.contract, name, decl.qualname))
            entry = contracts.get(decl.contract)
            if entry is None:
                yield self.project_diagnostic(
                    path, decl.line,
                    "wire contract '%s' (%s) has no entry in %s; %s"
                    % (decl.contract, decl.qualname, contracts_path,
                       _REGENERATE))
                continue
            spec = decl.spec()
            version = int(entry.get("version", 0))
            recorded = entry.get("spec") or {}
            if recorded != spec:
                yield self.project_diagnostic(
                    path, decl.line,
                    "wire contract '%s' (%s) has drifted from %s version "
                    "%d — %s; wire changes must ship with a regenerated "
                    "entry and version bump: %s"
                    % (decl.contract, decl.qualname, contracts_path,
                       version, _spec_drift(recorded, spec), _REGENERATE))
                continue
            expected = contract_digest(decl.contract, version, recorded)
            if entry.get("digest") != expected:
                yield self.project_diagnostic(
                    path, decl.line,
                    "wire contract '%s' entry in %s fails its digest "
                    "check (hand-edited spec without a version bump?); %s"
                    % (decl.contract, contracts_path, _REGENERATE))

        for stale in sorted(set(contracts) - matched):
            anchor_path, anchor_decl = decls[0]
            yield self.project_diagnostic(
                anchor_path, anchor_decl.line,
                "wire contract '%s' exists in %s but no source "
                "declaration carries it; retiring a wire type must also "
                "retire its contract entry (%s)"
                % (stale, contracts_path, _REGENERATE))
