"""RPR005 — dataclass hygiene.

Two rules:

* dataclasses in the designated **value-object modules** (dataset record
  types, protocol messages, address literals) must be ``frozen=True`` —
  they are dict keys, set members and cached aggregation outputs, and a
  mutable record type silently corrupts every one of those uses;
* dataclass fields must never default to a shared mutable object: list /
  dict / set literals (Python rejects the literals at class-definition time,
  but ``field(default=[])`` and bare constructor calls slip through) must be
  written ``field(default_factory=list)``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.checkers._helpers import decorator_call, dotted_parts
from repro.devtools.diagnostics import Diagnostic
from repro.devtools.driver import FileContext
from repro.devtools.registry import Checker, register

#: Modules whose dataclasses are value objects and must be frozen.
VALUE_OBJECT_MODULES = frozenset({
    "repro.atlas.types",
    "repro.dhcp.lease",
    "repro.dhcp.messages",
    "repro.isp.spec",
    "repro.net.ipv4",
    "repro.devtools.diagnostics",
})

#: Constructor names whose no-arg call as a default shares one mutable object.
_MUTABLE_FACTORIES = frozenset({"list", "dict", "set", "bytearray", "deque"})


def _is_mutable_default(node: ast.expr) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                         ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        parts = dotted_parts(node.func)
        return bool(parts) and parts[-1] in _MUTABLE_FACTORIES
    return False


@register
class DataclassHygieneChecker(Checker):
    rule = "RPR005"
    summary = ("value-object dataclasses must be frozen; mutable defaults "
               "must use field(default_factory=...)")

    def check(self, context: FileContext) -> Iterator[Diagnostic]:
        for node in ast.walk(context.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(context, node)

    def _dataclass_decorator(self, node: ast.ClassDef) -> ast.Call | None | bool:
        """Return the decorator Call, ``None`` for a bare ``@dataclass``,
        or ``False`` when the class is not a dataclass at all."""
        for decorator in node.decorator_list:
            name, call = decorator_call(decorator)
            if name == "dataclass":
                return call if call is not None else None
        return False

    def _check_class(self, context: FileContext,
                     node: ast.ClassDef) -> Iterator[Diagnostic]:
        decorator = self._dataclass_decorator(node)
        if decorator is False:
            return
        if context.module in VALUE_OBJECT_MODULES:
            if not self._is_frozen(decorator):
                yield self.diagnostic(
                    context, node,
                    "dataclass %s lives in value-object module %s and must "
                    "be @dataclass(frozen=True)" % (node.name, context.module),
                )
        for statement in node.body:
            yield from self._check_field(context, statement)

    def _is_frozen(self, decorator: ast.Call | None) -> bool:
        if decorator is None:
            return False
        for keyword in decorator.keywords:
            if keyword.arg == "frozen":
                return (isinstance(keyword.value, ast.Constant)
                        and keyword.value.value is True)
        return False

    def _check_field(self, context: FileContext,
                     statement: ast.stmt) -> Iterator[Diagnostic]:
        if not isinstance(statement, ast.AnnAssign) or statement.value is None:
            return
        value = statement.value
        if isinstance(value, ast.Call):
            parts = dotted_parts(value.func)
            if parts and parts[-1] == "field":
                for keyword in value.keywords:
                    if keyword.arg == "default" and _is_mutable_default(keyword.value):
                        yield self.diagnostic(
                            context, keyword.value,
                            "field(default=<mutable>) shares one object "
                            "across instances; use field(default_factory=...)",
                        )
                return
        if _is_mutable_default(value):
            yield self.diagnostic(
                context, value,
                "mutable dataclass default shares one object across "
                "instances; use field(default_factory=...)",
            )
