"""RPR002 — time-unit safety.

Every timestamp in this codebase is epoch seconds and every duration is in
seconds; the paper's analyses (duration CDF modes, outage windows) are
destroyed by an off-by-unit error.  Writing ``3600`` inline gives the reader
no way to tell an hour from a count, so second counts that are round
multiples of a minute must be spelled with the :mod:`repro.util.timeutil`
vocabulary: ``MINUTE``, ``HOUR``, ``DAY``, ``WEEK`` or the ``hours()`` /
``days()`` helpers.

The checker flags integer-valued literals >= 60 that are multiples of 60
when they appear as operands of arithmetic or comparisons (the contexts
where a magic duration can hide).  :mod:`repro.util.timeutil` itself, which
defines the constants, is exempt.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.diagnostics import Diagnostic
from repro.devtools.driver import FileContext
from repro.devtools.registry import Checker, register

TIMEUTIL_HOME = "repro.util.timeutil"

#: AST contexts that count as "time arithmetic" for a bare literal.
_ARITHMETIC_PARENTS = (ast.BinOp, ast.AugAssign, ast.Compare)

#: Smallest flagged value / divisor for "looks like a second count".
_SECONDS_PER_MINUTE = 60.0


def suggest_spelling(value: float) -> str:
    """Human phrasing of ``value`` seconds in timeutil vocabulary."""
    for unit, name in ((604800.0, "WEEK"), (86400.0, "DAY"),
                      (3600.0, "HOUR"), (60.0, "MINUTE")):
        if value % unit == 0:
            count = int(value / unit)
            return name if count == 1 else "%d * %s" % (count, name)
    return "a timeutil expression"


@register
class TimeUnitChecker(Checker):
    rule = "RPR002"
    summary = ("second counts in arithmetic must use repro.util.timeutil "
               "constants, not bare literals")

    def check(self, context: FileContext) -> Iterator[Diagnostic]:
        if context.module == TIMEUTIL_HOME:
            return
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Constant):
                continue
            value = node.value
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            if value < _SECONDS_PER_MINUTE:
                continue
            if float(value) % _SECONDS_PER_MINUTE != 0:
                continue
            if not float(value).is_integer():
                continue
            parent = getattr(node, "repro_parent", None)
            if isinstance(parent, ast.UnaryOp):
                parent = getattr(parent, "repro_parent", None)
            if not isinstance(parent, _ARITHMETIC_PARENTS):
                continue
            yield self.diagnostic(
                context, node,
                "magic time literal %r: write %s using repro.util.timeutil "
                "constants" % (value, suggest_spelling(float(value))),
            )
