"""Built-in checkers.

Importing this package registers every built-in rule:

======  ==========================================================
RPR001  determinism — no global-RNG or wall-clock calls
RPR002  time-unit safety — no magic second literals in arithmetic
RPR003  import layering — the package DAG only points downward
RPR004  error policy — no ``raise Exception`` / bare ``except:``
RPR005  dataclass hygiene — frozen value objects, safe defaults
RPR006  stage purity — runtime stage functions must infer PURE
RPR007  cache-key soundness — stage closure ⊆ hashed code_version set
RPR008  worker state — picklable pool tasks, initializer-owned globals
RPR009  order taint — no order-unstable values into digests/artifacts
RPR010  wire contracts — serialized boundary types match the contract file
RPR011  thread roles — cross-thread shared state locked/confined/safe
RPR012  resource lifecycle — acquisitions closed on every path
======  ==========================================================

RPR001–005 are per-file AST checks; RPR006–012 are whole-project
(interprocedural) checks over the call graph, effect lattice,
order-dataflow and concurrency summaries built by
:mod:`repro.devtools.callgraph`, :mod:`repro.devtools.effects`,
:mod:`repro.devtools.ordering`, and :mod:`repro.devtools.concurrency`.
"""

from repro.devtools.checkers import (  # noqa: F401  (registration imports)
    cache_soundness,
    dataclass_hygiene,
    determinism,
    error_policy,
    layering,
    order_taint,
    resource_lifecycle,
    stage_purity,
    thread_roles,
    time_units,
    wire_contracts,
    worker_state,
)
