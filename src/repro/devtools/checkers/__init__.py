"""Built-in checkers.

Importing this package registers every built-in rule:

======  ==========================================================
RPR001  determinism — no global-RNG or wall-clock calls
RPR002  time-unit safety — no magic second literals in arithmetic
RPR003  import layering — the package DAG only points downward
RPR004  error policy — no ``raise Exception`` / bare ``except:``
RPR005  dataclass hygiene — frozen value objects, safe defaults
======  ==========================================================
"""

from repro.devtools.checkers import (  # noqa: F401  (registration imports)
    dataclass_hygiene,
    determinism,
    error_policy,
    layering,
    time_units,
)
