"""RPR006 — stage functions must infer PURE.

The artifact cache addresses a stage's output by
``H(bundle_fingerprint, stage, code_version, params)`` (DESIGN.md §9); if
a stage function's result can depend on anything *outside* that key —
clocks, environment, module state, the filesystem — two runs with equal
keys may produce different artifacts and the cache silently serves the
stale one.  So every function registered in a ``StageSpec`` must infer
:attr:`~repro.devtools.effects.Effect.PURE` under the interprocedural
effect analysis.

Intentional exceptions go through the existing suppression machinery with
a written justification on the ``StageSpec`` line::

    StageSpec("ingest", ..., func=_io.read_bundle),  # repro: noqa[RPR006] -- reads the immutable input bundle only

Findings carry the witness chain from the stage function down to the
intrinsic impure operation, so the fix target is the end of the chain,
not the stage function itself.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from repro.devtools.effects import Effect, render_chain
from repro.devtools.registry import ProjectChecker, register

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.devtools.callgraph import Project
    from repro.devtools.diagnostics import Diagnostic
    from repro.devtools.effects import EffectAnalysis


@register
class StagePurityChecker(ProjectChecker):
    rule = "RPR006"
    summary = "runtime stage functions must infer PURE on the effect lattice"

    def check_project(self, project: "Project", effects: "EffectAnalysis",
                      ) -> Iterator["Diagnostic"]:
        for module in sorted(project.summaries):
            summary = project.summaries[module]
            for decl in summary.stage_decls:
                resolved = project.resolve_callable(decl.func)
                if resolved is None or resolved[0] != "function":
                    yield self.project_diagnostic(
                        summary.path, decl.line,
                        "stage '%s' references '%s', which does not resolve "
                        "to a project function; the purity of this stage "
                        "cannot be verified" % (decl.stage, decl.func))
                    continue
                qualname = resolved[1]
                effect = effects.effect_of(qualname)
                if effect is Effect.PURE:
                    continue
                chain = render_chain(effects.explain(qualname))
                yield self.project_diagnostic(
                    summary.path, decl.line,
                    "stage '%s' function %s infers %s but stages must be "
                    "PURE for cache soundness: %s (fix the end of the "
                    "chain, or suppress with a justified noqa[RPR006])"
                    % (decl.stage, qualname, effect.name, chain))
