"""Structured diagnostics emitted by the lint checkers.

A :class:`Diagnostic` is a frozen value object so that checkers can be pure
functions from a file context to a stream of findings, and so the driver can
sort, deduplicate and serialize them without surprises.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Severity(enum.Enum):
    """How seriously a finding should be taken.

    ``ERROR`` findings fail the build; ``WARNING`` findings are reported but
    do not affect the exit status (reserved for checkers being phased in).
    """

    WARNING = "warning"
    ERROR = "error"


@dataclass(frozen=True, order=True)
class Diagnostic:
    """One finding: a rule fired at a location with a message.

    Field order matters: the dataclass is ``order=True`` so sorting a list of
    diagnostics groups them by file, then line, then column, then rule.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str
    severity: Severity = Severity.ERROR

    def format(self) -> str:
        """Render in the conventional ``path:line:col: RULE message`` shape."""
        return "%s:%d:%d: %s [%s] %s" % (
            self.path, self.line, self.col, self.severity.value.upper(),
            self.rule, self.message,
        )

    def to_dict(self) -> dict[str, object]:
        """JSON-friendly representation for ``repro-lint --json``."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "severity": self.severity.value,
            "message": self.message,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Diagnostic":
        """Inverse of :meth:`to_dict`; the incremental cache round-trip."""
        return cls(
            path=str(payload["path"]),
            line=int(payload["line"]),
            col=int(payload["col"]),
            rule=str(payload["rule"]),
            message=str(payload["message"]),
            severity=Severity(payload["severity"]),
        )
