"""Order-sensitivity dataflow analysis (the RPR009 engine).

The runtime's bit-for-bit reproducibility story assumes that everything
feeding a digest, a cached artifact, or a shipped ``ShardResult`` payload
iterates in a *deterministic* order.  Python makes that easy to break
silently: ``set`` iteration order varies across processes (hash
randomization), ``os.listdir``/``Path.glob`` return directory order, and
a dict built from either inherits the instability.  The dynamic tests
(jobs=1 == jobs=N digests) catch such bugs only when the orders happen
to diverge on the test machine; this module catches them statically.

The analysis is a small abstract interpretation over a two-point order
lattice — a value is either CLEAN (deterministically ordered) or carries
a :class:`Taint` recording *why* its order is unstable:

* **sources** introduce taint: ``set``/``frozenset`` constructors and
  comprehensions, set operators, ``os.listdir``, ``glob.glob``,
  ``Path.glob/rglob/iterdir/scandir``, and containers built from any of
  these (``dict(tainted)``, ``list(tainted)``, f-strings, ...);
* **barriers** erase it: ``sorted()``, ``.sort()``, the
  :mod:`repro.util.ordering` helpers, and scalar reducers (``len``,
  ``sum``, ``min``/``max``, ``any``/``all`` — order-independent by
  construction);
* **sinks** must never receive it: digest canonicalization
  (``results_digest``, ``fingerprint.combine``/``hash_text``), artifact
  cache writes (``.store``), ``ShardResult`` construction, and
  JSON/pickle serialization.

Within one function the interpreter walks statements sequentially
(loop bodies twice, for loop-carried accumulation), tracking a taint per
local name.  Per-function results are compressed into a serializable
:class:`FunctionOrderSummary` — the return value's taint, taint observed
at sinks, and calls that pass tainted arguments onward — stored on the
:class:`~repro.devtools.callgraph.FileSummary` so warm incremental runs
can replay the whole-project pass without re-parsing.
:class:`OrderAnalysis` then resolves call targets through the project
graph and iterates to a fixpoint, so taint crossing function boundaries
(in either direction: tainted *returns* flowing down to a local sink, or
tainted *arguments* flowing up into a callee's sink) is reported with a
witness chain in the RPR006/RPR007 style.

Deliberate asymmetry with the effect analysis: unresolvable calls join
to CLEAN here, not to the top of the lattice.  Effects protect cache
*soundness*, where guessing "pure" would certify wrong keys; RPR009 is
an error-severity reviewer aid, and treating every unknown stdlib call
as unordered would bury the real findings in noise.  The cost is known
blind spots (attribute loads, subscript reads, and slices are also
CLEAN), documented in DESIGN.md §12.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

#: Bare-name constructors that produce unordered collections.
SET_CONSTRUCTORS = frozenset({"set", "frozenset"})

#: Dotted-suffix calls returning filesystem-order (unstable) listings.
ORDER_SOURCE_SUFFIXES: dict[tuple[str, str], str] = {
    ("os", "listdir"): "os.listdir() directory order",
    ("os", "scandir"): "os.scandir() directory order",
    ("glob", "glob"): "glob.glob() directory order",
    ("glob", "iglob"): "glob.iglob() directory order",
}

#: Method calls returning filesystem-order listings (``Path`` et al.).
ORDER_SOURCE_METHODS = frozenset({"glob", "rglob", "iterdir", "scandir"})

#: Dotted-suffix sinks: digest canonicalization and serialization.
SINK_SUFFIXES: dict[tuple[str, str], str] = {
    ("digest", "results_digest"): "digest canonicalization",
    ("fingerprint", "combine"): "digest canonicalization",
    ("fingerprint", "hash_text"): "digest canonicalization",
    ("json", "dump"): "JSON serialization",
    ("json", "dumps"): "JSON serialization",
    ("pickle", "dump"): "pickle serialization",
    ("pickle", "dumps"): "pickle serialization",
}

#: Constructor names whose instances are wire payloads in their own right.
SINK_CLASSES: dict[str, str] = {
    "ShardResult": "ShardResult payload construction",
}

#: Method-call sinks (the artifact cache write surface).
SINK_METHODS: dict[str, str] = {
    "store": "artifact cache write",
}

#: The explicit deterministic-iteration helpers (satellites of this rule).
BARRIER_HELPERS = frozenset({"ordered", "ordered_items", "ordered_merge"})

#: Builtins whose result's order follows their arguments' order.
PROPAGATING_BUILTINS = frozenset({
    "list", "tuple", "iter", "next", "reversed", "enumerate", "zip",
    "map", "filter", "dict", "str", "repr", "format",
})

#: Builtins that reduce a collection to an order-independent scalar.
SCALAR_BUILTINS = frozenset({
    "len", "sum", "min", "max", "any", "all", "abs", "round", "hash",
    "bool", "int", "float", "range", "isinstance", "issubclass",
    "getattr", "hasattr", "id", "print", "type",
})

#: Methods whose result inherits the *receiver's* order instability.
RECEIVER_PROPAGATING_METHODS = frozenset({
    "keys", "values", "items", "copy", "pop", "popitem", "elements",
    "split", "rsplit", "splitlines",
})

#: Set-operator methods: receiver or argument taint makes an unordered
#: result (these also *produce* sets, but matching the operands keeps the
#: provenance line pointing at the original source).
SET_OPERATOR_METHODS = frozenset({
    "union", "intersection", "difference", "symmetric_difference",
})

#: Methods whose result inherits their *arguments'* order instability.
ARG_PROPAGATING_METHODS = frozenset({"join", "fromkeys"})

#: Mutators that fold an argument (and the enclosing loop's iteration
#: order) into their receiver.
MUTATOR_ARG_METHODS = frozenset({
    "append", "add", "insert", "extend", "update", "setdefault",
    "appendleft", "extendleft",
})

#: Cap on distinct call dependencies tracked per abstract value.
_MAX_CALLS = 8

#: Cap on class-hierarchy candidates consulted per method call.
_MAX_CANDIDATES = 8


@dataclass(frozen=True)
class CallTaint:
    """One call whose result (or argument flow) the taint depends on."""

    kind: str  # ``dotted`` | ``local`` | ``method``
    target: str
    line: int
    args: tuple["Taint", ...] = ()
    kwargs: tuple[tuple[str, "Taint"], ...] = ()

    def to_dict(self) -> dict[str, object]:
        return {"kind": self.kind, "target": self.target, "line": self.line,
                "args": [taint.to_dict() for taint in self.args],
                "kwargs": [[name, taint.to_dict()]
                           for name, taint in self.kwargs]}

    @classmethod
    def from_dict(cls, payload: dict) -> "CallTaint":
        return cls(
            kind=str(payload["kind"]), target=str(payload["target"]),
            line=int(payload["line"]),
            args=tuple(Taint.from_dict(entry)
                       for entry in payload.get("args", ())),
            kwargs=tuple((str(name), Taint.from_dict(entry))
                         for name, entry in payload.get("kwargs", ())))


@dataclass(frozen=True)
class Taint:
    """Why a value's iteration order may be unstable.

    ``source`` is intrinsic evidence (``(detail, line)``), ``params``
    names the enclosing function's parameters whose order instability
    would flow here, and ``calls`` are call results the value depends
    on — resolved against the project graph by :class:`OrderAnalysis`.
    An empty taint (``CLEAN``) means deterministically ordered.
    """

    source: tuple[str, int] | None = None
    params: tuple[str, ...] = ()
    calls: tuple[CallTaint, ...] = ()

    @property
    def is_clean(self) -> bool:
        return (self.source is None and not self.params
                and not self.calls)

    def to_dict(self) -> dict[str, object]:
        return {"source": None if self.source is None
                else [self.source[0], self.source[1]],
                "params": list(self.params),
                "calls": [call.to_dict() for call in self.calls]}

    @classmethod
    def from_dict(cls, payload: dict) -> "Taint":
        source = payload.get("source")
        return cls(
            source=None if source is None else (str(source[0]),
                                                int(source[1])),
            params=tuple(payload.get("params", ())),
            calls=tuple(CallTaint.from_dict(entry)
                        for entry in payload.get("calls", ())))


CLEAN = Taint()


def join(*taints: Taint) -> Taint:
    """Least upper bound: any operand's instability taints the result."""
    source = None
    params: list[str] = []
    calls: list[CallTaint] = []
    for taint in taints:
        if taint is None or taint.is_clean:
            continue
        if source is None and taint.source is not None:
            source = taint.source
        for param in taint.params:
            if param not in params:
                params.append(param)
        for call in taint.calls:
            if call not in calls and len(calls) < _MAX_CALLS:
                calls.append(call)
    if source is None and not params and not calls:
        return CLEAN
    return Taint(source=source, params=tuple(params), calls=tuple(calls))


@dataclass(frozen=True)
class SinkHit:
    """A non-clean abstract value observed flowing into one sink."""

    label: str
    target: str
    line: int
    taint: Taint

    def to_dict(self) -> dict[str, object]:
        return {"label": self.label, "target": self.target,
                "line": self.line, "taint": self.taint.to_dict()}

    @classmethod
    def from_dict(cls, payload: dict) -> "SinkHit":
        return cls(label=str(payload["label"]), target=str(payload["target"]),
                   line=int(payload["line"]),
                   taint=Taint.from_dict(payload["taint"]))


@dataclass(frozen=True)
class FunctionOrderSummary:
    """The order-dataflow facts of one function, cache-round-trippable.

    ``params`` is the positional parameter order (so call-site arguments
    can be matched back to the names ``Taint.params`` uses); ``calls``
    records call sites that pass non-clean arguments onward, for the
    downward direction (caller taint reaching a callee's sink).
    """

    name: str
    params: tuple[str, ...] = ()
    returns: Taint = CLEAN
    sinks: tuple[SinkHit, ...] = ()
    calls: tuple[CallTaint, ...] = ()

    @property
    def is_trivial(self) -> bool:
        return self.returns.is_clean and not self.sinks and not self.calls

    def to_dict(self) -> dict[str, object]:
        return {"name": self.name, "params": list(self.params),
                "returns": self.returns.to_dict(),
                "sinks": [sink.to_dict() for sink in self.sinks],
                "calls": [call.to_dict() for call in self.calls]}

    @classmethod
    def from_dict(cls, payload: dict) -> "FunctionOrderSummary":
        return cls(
            name=str(payload["name"]),
            params=tuple(payload.get("params", ())),
            returns=Taint.from_dict(payload["returns"]),
            sinks=tuple(SinkHit.from_dict(entry)
                        for entry in payload.get("sinks", ())),
            calls=tuple(CallTaint.from_dict(entry)
                        for entry in payload.get("calls", ())))


# -- the intraprocedural interpreter -----------------------------------------

class _OrderTracker:
    """Sequential abstract interpretation of one function body."""

    def __init__(self, node: ast.FunctionDef | ast.AsyncFunctionDef,
                 imports: dict[str, str]) -> None:
        self.node = node
        self.imports = imports
        args = node.args
        names = [arg.arg for arg in
                 (*args.posonlyargs, *args.args, *args.kwonlyargs)]
        self.params = tuple(names)
        self.env: dict[str, Taint] = {
            name: Taint(params=(name,)) for name in names}
        self.return_taint = CLEAN
        self.sinks: list[SinkHit] = []
        self.downward: list[CallTaint] = []
        self._loop_context: list[Taint] = []

    def run(self) -> tuple[Taint, list[SinkHit], list[CallTaint]]:
        self._process_body(self.node.body)
        seen_sinks: set[tuple[str, int]] = set()
        sinks = [hit for hit in self.sinks
                 if (hit.label, hit.line) not in seen_sinks
                 and not seen_sinks.add((hit.label, hit.line))]
        seen_calls: set[tuple[str, int]] = set()
        downward = [call for call in self.downward
                    if (call.target, call.line) not in seen_calls
                    and not seen_calls.add((call.target, call.line))]
        return self.return_taint, sinks, downward

    # -- statements ----------------------------------------------------------

    def _process_body(self, body: list[ast.stmt]) -> None:
        for stmt in body:
            self._process(stmt)

    def _process(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            return  # nested scopes are out of range for this pass
        if isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self.return_taint = join(self.return_taint,
                                         self._eval(stmt.value))
        elif isinstance(stmt, ast.Assign):
            taint = self._eval(stmt.value)
            for target in stmt.targets:
                self._bind(target, taint)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._bind(stmt.target, self._eval(stmt.value))
        elif isinstance(stmt, ast.AugAssign):
            taint = self._eval(stmt.value)
            if isinstance(stmt.target, ast.Name):
                name = stmt.target.id
                self.env[name] = join(self.env.get(name, CLEAN), taint,
                                      self._context())
            else:
                self._taint_root(stmt.target, taint)
        elif isinstance(stmt, ast.Expr):
            self._eval(stmt.value)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            iter_taint = self._eval(stmt.iter)
            self._bind(stmt.target, iter_taint)
            self._loop_context.append(join(self._context(), iter_taint))
            try:
                # Two passes so loop-carried accumulation stabilizes
                # (``acc`` tainted on pass one is *read* tainted on two).
                self._process_body(stmt.body)
                self._process_body(stmt.body)
            finally:
                self._loop_context.pop()
            self._process_body(stmt.orelse)
        elif isinstance(stmt, ast.While):
            self._eval(stmt.test)
            self._process_body(stmt.body)
            self._process_body(stmt.body)
            self._process_body(stmt.orelse)
        elif isinstance(stmt, ast.If):
            self._eval(stmt.test)
            self._process_body(stmt.body)
            self._process_body(stmt.orelse)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                taint = self._eval(item.context_expr)
                if item.optional_vars is not None:
                    self._bind(item.optional_vars, taint)
            self._process_body(stmt.body)
        elif isinstance(stmt, ast.Try):
            self._process_body(stmt.body)
            for handler in stmt.handlers:
                self._process_body(handler.body)
            self._process_body(stmt.orelse)
            self._process_body(stmt.finalbody)
        elif isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                self._eval(stmt.exc)
        elif isinstance(stmt, ast.Assert):
            self._eval(stmt.test)
            if stmt.msg is not None:
                self._eval(stmt.msg)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    self.env.pop(target.id, None)
        elif stmt.__class__.__name__ == "Match":
            self._eval(stmt.subject)  # type: ignore[attr-defined]
            for case in stmt.cases:  # type: ignore[attr-defined]
                self._process_body(case.body)
        # Pass / Break / Continue / Import / Global / Nonlocal: no flow.

    def _context(self) -> Taint:
        return self._loop_context[-1] if self._loop_context else CLEAN

    def _bind(self, target: ast.expr, taint: Taint) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = taint  # rebinding sanitizes
        elif isinstance(target, ast.Starred):
            self._bind(target.value, taint)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._bind(element, taint)
        elif isinstance(target, (ast.Subscript, ast.Attribute)):
            self._taint_root(target, taint)

    def _taint_root(self, expr: ast.expr, taint: Taint) -> None:
        """Join taint (plus loop context) into the written container."""
        from repro.devtools.callgraph import _root_name

        root = _root_name(expr)
        if root is not None:
            self.env[root] = join(self.env.get(root, CLEAN), taint,
                                  self._context())

    # -- expressions ---------------------------------------------------------

    def _eval(self, expr: ast.expr) -> Taint:
        if isinstance(expr, ast.Constant):
            return CLEAN
        if isinstance(expr, ast.Name):
            return self.env.get(expr.id, CLEAN)
        if isinstance(expr, ast.Set):
            return Taint(source=("set literal", expr.lineno))
        if isinstance(expr, ast.SetComp):
            return Taint(source=("set comprehension", expr.lineno))
        if isinstance(expr, (ast.ListComp, ast.GeneratorExp, ast.DictComp)):
            return join(*(self._eval(gen.iter) for gen in expr.generators))
        if isinstance(expr, ast.Dict):
            return join(*(self._eval(key) for key in expr.keys
                          if key is not None),
                        *(self._eval(value) for value in expr.values))
        if isinstance(expr, (ast.List, ast.Tuple)):
            return join(*(self._eval(element) for element in expr.elts))
        if isinstance(expr, ast.Starred):
            return self._eval(expr.value)
        if isinstance(expr, ast.BinOp):
            return join(self._eval(expr.left), self._eval(expr.right))
        if isinstance(expr, ast.BoolOp):
            return join(*(self._eval(value) for value in expr.values))
        if isinstance(expr, ast.UnaryOp):
            return self._eval(expr.operand)
        if isinstance(expr, ast.Compare):
            self._eval(expr.left)
            for comparator in expr.comparators:
                self._eval(comparator)
            return CLEAN  # membership/comparison: order-independent
        if isinstance(expr, ast.IfExp):
            self._eval(expr.test)
            return join(self._eval(expr.body), self._eval(expr.orelse))
        if isinstance(expr, ast.Call):
            return self._call(expr)
        if isinstance(expr, ast.JoinedStr):
            return join(*(self._eval(value) for value in expr.values))
        if isinstance(expr, ast.FormattedValue):
            return self._eval(expr.value)
        if isinstance(expr, ast.Await):
            return self._eval(expr.value)
        if isinstance(expr, ast.NamedExpr):
            taint = self._eval(expr.value)
            self._bind(expr.target, taint)
            return taint
        if isinstance(expr, (ast.Yield, ast.YieldFrom)):
            if expr.value is not None:
                self.return_taint = join(self.return_taint,
                                         self._eval(expr.value))
            return CLEAN
        # Subscript/Attribute loads, slices, lambdas: CLEAN by policy —
        # by-key access is order-independent, and tracking object fields
        # would need a heap model this lint does not carry.
        return CLEAN

    def _call(self, call: ast.Call) -> Taint:
        from repro.devtools.callgraph import _call_site

        site = _call_site(call, self.imports)
        arg_taints = tuple(self._eval(arg) for arg in call.args)
        kw_taints = tuple((keyword.arg, self._eval(keyword.value))
                          for keyword in call.keywords
                          if keyword.arg is not None)
        for keyword in call.keywords:
            if keyword.arg is None:
                self._eval(keyword.value)
        receiver = CLEAN
        if isinstance(call.func, ast.Attribute):
            receiver = self._eval(call.func.value)

        parts = tuple(site.target.split(".")) if site.kind == "dotted" \
            else ()
        last = parts[-1] if parts else site.target
        passed = join(*arg_taints, *(taint for _, taint in kw_taints))

        # 1. receiver sanitizer: ``x.sort()`` leaves x deterministic.
        if site.kind == "method" and site.target == "sort":
            if isinstance(call.func.value, ast.Name):
                self.env[call.func.value.id] = CLEAN
            return CLEAN

        # 2. sinks (checked before propagation: the hit is the finding).
        label = None
        if len(parts) >= 2 and parts[-2:] in SINK_SUFFIXES:
            label = SINK_SUFFIXES[parts[-2:]]
        elif last == "results_digest":
            label = "digest canonicalization"
        elif last in SINK_CLASSES:
            label = SINK_CLASSES[last]
        elif site.kind == "method" and site.target in SINK_METHODS:
            label = SINK_METHODS[site.target]
        if label is not None:
            if not passed.is_clean:
                self.sinks.append(SinkHit(label, last or site.target,
                                          call.lineno, passed))
            return CLEAN

        # 3. barriers.
        if site.kind == "local" and site.target == "sorted":
            return CLEAN
        if last in BARRIER_HELPERS:
            return CLEAN

        # 4. sources.
        if site.kind == "local" and site.target in SET_CONSTRUCTORS:
            return Taint(source=("%s()" % site.target, call.lineno))
        if len(parts) >= 2 and parts[-2:] in ORDER_SOURCE_SUFFIXES:
            return Taint(source=(ORDER_SOURCE_SUFFIXES[parts[-2:]],
                                 call.lineno))
        if site.kind == "method" and site.target in ORDER_SOURCE_METHODS:
            return Taint(source=(".%s() directory order" % site.target,
                                 call.lineno))

        # 5. mutators folding arguments (and loop order) into a receiver.
        if site.kind == "method" and site.target in MUTATOR_ARG_METHODS:
            self._taint_root(call.func.value, passed)
            return CLEAN

        # 6. order-propagating and order-erasing vocabulary.
        if site.kind == "local":
            if site.target in PROPAGATING_BUILTINS:
                return passed
            if site.target in SCALAR_BUILTINS:
                return CLEAN
        if site.kind == "method":
            if site.target in SET_OPERATOR_METHODS:
                return join(receiver, passed)
            if site.target in RECEIVER_PROPAGATING_METHODS:
                return receiver
            if site.target in ARG_PROPAGATING_METHODS:
                return passed

        # 7. everything else: defer to project-graph resolution.
        if site.kind == "dynamic":
            return CLEAN
        args_for_call = ((receiver,) + arg_taints)
        if site.kind != "method":
            args_for_call = arg_taints
        dependency = CallTaint(kind=site.kind, target=site.target,
                               line=call.lineno, args=args_for_call,
                               kwargs=kw_taints)
        if not passed.is_clean:
            self.downward.append(dependency)
        return Taint(calls=(dependency,))


def order_summary(node: ast.FunctionDef | ast.AsyncFunctionDef,
                  qualname: str,
                  imports: dict[str, str]) -> FunctionOrderSummary | None:
    """Order-dataflow summary of one function; ``None`` when trivial."""
    tracker = _OrderTracker(node, imports)
    returns, sinks, downward = tracker.run()
    summary = FunctionOrderSummary(
        name=qualname, params=tracker.params, returns=returns,
        sinks=tuple(sinks), calls=tuple(downward))
    return None if summary.is_trivial else summary


# -- the interprocedural fixpoint --------------------------------------------

@dataclass(frozen=True)
class OrderFinding:
    """One RPR009 finding, ready for a project diagnostic."""

    path: str
    line: int
    message: str


_REMEDY = ("iterate in sorted order — sorted(), .sort() or "
           "repro.util.ordering — or suppress with a justified "
           "noqa[RPR009]")


class OrderAnalysis:
    """Project-wide order-taint resolution with witness chains.

    Three facts are iterated to a fixpoint over the call graph, mirroring
    :class:`~repro.devtools.effects.EffectAnalysis`:

    * ``returns_tainted(f)`` — f returns an order-unstable value even
      with deterministically ordered arguments;
    * ``tainted_params(f)`` — parameters whose instability reaches f's
      return value;
    * ``sink_params(f)`` — parameters whose instability reaches a sink
      inside f (directly or through further calls).
    """

    def __init__(self, project) -> None:
        self.project = project
        # qualname -> (module, FunctionOrderSummary)
        self._funcs: dict[str, tuple[str, FunctionOrderSummary]] = {}
        for module, summary in project.summaries.items():
            for name, fos in getattr(summary, "order", {}).items():
                self._funcs["%s.%s" % (module, name)] = (module, fos)
        self._returns_tainted: set[str] = set()
        self._tainted_params: dict[str, set[str]] = {
            qual: set() for qual in self._funcs}
        self._sink_params: dict[str, set[str]] = {
            qual: set() for qual in self._funcs}
        self._sink_route: dict[tuple[str, str], list[str]] = {}
        self._solve()

    # -- resolution ----------------------------------------------------------

    def _resolve(self, call: CallTaint,
                 module: str) -> list[tuple[str, str]]:
        """``(kind, qualname)`` candidates for one recorded call."""
        project = self.project
        if call.kind == "dotted":
            resolved = project.resolve_callable(call.target)
            if resolved is not None and resolved[0] in ("function", "class"):
                return [resolved]
            return []
        if call.kind == "local":
            summary = project.summaries.get(module)
            if summary is None:
                return []
            if call.target in summary.functions:
                return [("function", "%s.%s" % (module, call.target))]
            if call.target in summary.classes:
                return [("class", "%s.%s" % (module, call.target))]
            return []
        candidates = project.methods_named_from(call.target, module)
        return [("function", qual)
                for qual in candidates[:_MAX_CANDIDATES]]

    def _arg_for(self, call: CallTaint, callee: FunctionOrderSummary,
                 param: str) -> Taint | None:
        """The taint a call site passes into one named callee parameter."""
        found = None
        if param in callee.params:
            index = callee.params.index(param)
            if index < len(call.args):
                found = call.args[index]
        for name, taint in call.kwargs:
            if name == param:
                found = taint if found is None else join(found, taint)
        return found

    # -- the abstract evaluator ----------------------------------------------

    def _tainted(self, taint: Taint, module: str,
                 flags: frozenset[str]) -> bool:
        """Does ``taint`` evaluate unstable, given unstable params?"""
        if taint.source is not None:
            return True
        if any(param in flags for param in taint.params):
            return True
        for call in taint.calls:
            for kind, qual in self._resolve(call, module):
                if kind == "class":
                    # A value object wraps its fields: constructing one
                    # from an unstable value keeps the instability.
                    if any(self._tainted(arg, module, flags)
                           for arg in call.args) or \
                       any(self._tainted(value, module, flags)
                           for _, value in call.kwargs):
                        return True
                    continue
                if qual in self._returns_tainted:
                    return True
                entry = self._funcs.get(qual)
                if entry is None:
                    continue
                for param in self._tainted_params.get(qual, ()):
                    passed = self._arg_for(call, entry[1], param)
                    if passed is not None and self._tainted(
                            passed, module, flags):
                        return True
        return False

    def _solve(self) -> None:
        changed = True
        while changed:
            changed = False
            for qual, (module, fos) in self._funcs.items():
                if qual not in self._returns_tainted and self._tainted(
                        fos.returns, module, frozenset()):
                    self._returns_tainted.add(qual)
                    changed = True
                for param in fos.params:
                    flags = frozenset({param})
                    if param not in self._tainted_params[qual] \
                            and self._tainted(fos.returns, module, flags):
                        self._tainted_params[qual].add(param)
                        changed = True
                    if param in self._sink_params[qual]:
                        continue
                    for hit in fos.sinks:
                        if self._tainted(hit.taint, module, flags):
                            self._sink_params[qual].add(param)
                            self._sink_route[(qual, param)] = [
                                "%s (line %d)" % (hit.label, hit.line)]
                            changed = True
                            break
                    if param in self._sink_params[qual]:
                        continue
                    for call in fos.calls:
                        route = self._transitive_route(call, module, param)
                        if route is not None:
                            self._sink_params[qual].add(param)
                            self._sink_route[(qual, param)] = route
                            changed = True
                            break

    def _transitive_route(self, call: CallTaint, module: str,
                          param: str) -> list[str] | None:
        """Sink route when ``param`` flows through ``call`` into a sink."""
        flags = frozenset({param})
        for kind, qual in self._resolve(call, module):
            if kind != "function":
                continue
            entry = self._funcs.get(qual)
            if entry is None:
                continue
            for callee_param in sorted(self._sink_params.get(qual, ())):
                passed = self._arg_for(call, entry[1], callee_param)
                if passed is not None and self._tainted(passed, module,
                                                        flags):
                    return (["%s (argument '%s')" % (qual, callee_param)]
                            + self._sink_route.get((qual, callee_param),
                                                   []))
        return None

    # -- witness chains ------------------------------------------------------

    def _chain(self, taint: Taint, module: str,
               seen: frozenset[str] = frozenset()) -> list[str]:
        """Provenance chain for a taint that evaluates unstable."""
        if taint.source is not None:
            return ["%s (line %d)" % taint.source]
        for call in taint.calls:
            for kind, qual in self._resolve(call, module):
                if kind == "class":
                    for arg in (*call.args,
                                *(value for _, value in call.kwargs)):
                        if self._tainted(arg, module, frozenset()):
                            return (["%s(...)" % qual]
                                    + self._chain(arg, module, seen))
                    continue
                if qual in seen:
                    continue
                entry = self._funcs.get(qual)
                if qual in self._returns_tainted and entry is not None:
                    return [qual] + self._chain(
                        entry[1].returns, entry[0], seen | {qual})
                if entry is None:
                    continue
                for param in sorted(self._tainted_params.get(qual, ())):
                    passed = self._arg_for(call, entry[1], param)
                    if passed is not None and self._tainted(
                            passed, module, frozenset()):
                        return (["%s (argument '%s')" % (qual, param)]
                                + self._chain(passed, module,
                                              seen | {qual}))
        return []

    # -- findings ------------------------------------------------------------

    def findings(self) -> list[OrderFinding]:
        found: list[OrderFinding] = []
        seen: set[tuple[str, int, str]] = set()
        for qual in sorted(self._funcs):
            module, fos = self._funcs[qual]
            summary = self.project.summaries.get(module)
            path = summary.path if summary is not None else module
            for hit in fos.sinks:
                if not self._tainted(hit.taint, module, frozenset()):
                    continue
                chain = " -> ".join(
                    [qual] + self._chain(hit.taint, module)
                    + ["%s (line %d)" % (hit.label, hit.line)])
                message = ("order-unstable value reaches %s in %s: %s "
                           "(%s)" % (hit.label, qual, chain, _REMEDY))
                key = (path, hit.line, message)
                if key not in seen:
                    seen.add(key)
                    found.append(OrderFinding(path, hit.line, message))
            for call in fos.calls:
                for kind, callee_qual in self._resolve(call, module):
                    if kind != "function":
                        continue
                    entry = self._funcs.get(callee_qual)
                    if entry is None:
                        continue
                    for param in sorted(
                            self._sink_params.get(callee_qual, ())):
                        passed = self._arg_for(call, entry[1], param)
                        if passed is None or not self._tainted(
                                passed, module, frozenset()):
                            continue
                        route = self._sink_route.get(
                            (callee_qual, param), [])
                        chain = " -> ".join(
                            [qual] + self._chain(passed, module)
                            + ["%s (argument '%s')"
                             % (callee_qual, param)] + route)
                        message = ("order-unstable value passed to %s "
                                   "reaches %s: %s (%s)"
                                   % (callee_qual,
                                      route[-1] if route else "a sink",
                                      chain, _REMEDY))
                        key = (path, call.line, message)
                        if key not in seen:
                            seen.add(key)
                            found.append(
                                OrderFinding(path, call.line, message))
        return sorted(found, key=lambda f: (f.path, f.line, f.message))
