"""SARIF 2.1.0 rendering of lint results.

SARIF (Static Analysis Results Interchange Format) is the schema GitHub
code scanning ingests, so ``repro-lint --format sarif`` output uploads
directly and findings surface as PR annotations.  The mapping is
deliberately minimal: one run, one ``tool.driver`` carrying the rule
catalog, one ``result`` per diagnostic.  SARIF regions are 1-based in
both coordinates, while :class:`~repro.devtools.diagnostics.Diagnostic`
columns are 0-based (``ast`` convention) — hence the ``col + 1``.
"""

from __future__ import annotations

from typing import Iterable

from repro.devtools.diagnostics import Diagnostic, Severity
from repro.devtools.registry import all_checkers

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                "master/Schemata/sarif-schema-2.1.0.json")

_LEVELS = {Severity.ERROR: "error", Severity.WARNING: "warning"}


def _rule_catalog() -> list[dict[str, object]]:
    return [
        {
            "id": checker.rule,
            "shortDescription": {"text": checker.summary},
        }
        for checker in all_checkers()
    ]


def to_sarif(diagnostics: Iterable[Diagnostic]) -> dict[str, object]:
    """Render diagnostics as a SARIF log dictionary (JSON-dump ready)."""
    results = [
        {
            "ruleId": diagnostic.rule,
            "level": _LEVELS[diagnostic.severity],
            "message": {"text": diagnostic.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": diagnostic.path.replace("\\", "/"),
                        },
                        "region": {
                            "startLine": diagnostic.line,
                            "startColumn": diagnostic.col + 1,
                        },
                    },
                }
            ],
        }
        for diagnostic in diagnostics
    ]
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri":
                            "https://github.com/repro/repro#repro-lint",
                        "rules": _rule_catalog(),
                    },
                },
                "results": results,
            }
        ],
    }
