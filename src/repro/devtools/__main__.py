"""Allow ``python -m repro.devtools`` as an uninstalled-equivalent of
``repro-lint`` (useful in environments where the console script is absent)."""

import sys

from repro.devtools.cli import main

sys.exit(main())
