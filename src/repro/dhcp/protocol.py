"""Message-level DHCP server front-end (the DORA exchange).

Wraps :class:`~repro.dhcp.server.DhcpServer` behind RFC 2131 message
handling: DISCOVER yields an OFFER (the binding is reserved at offer time,
as production servers do), REQUEST yields an ACK when it matches the
reserved/active binding and a NAK otherwise, RELEASE frees the binding,
and INFORM answers configuration-only queries without touching bindings.
"""

from __future__ import annotations

from repro.dhcp.messages import DhcpMessage, DhcpMessageType
from repro.dhcp.server import DhcpServer
from repro.errors import SimulationError
from repro.net.ipv4 import IPv4Address


class DhcpMessageHandler:
    """Processes client messages against one server."""

    def __init__(self, server: DhcpServer, server_id: IPv4Address) -> None:
        self._server = server
        self._server_id = server_id

    @property
    def server_id(self) -> IPv4Address:
        """The server-identifier option value this server uses."""
        return self._server_id

    def handle(self, message: DhcpMessage, now: float) -> DhcpMessage | None:
        """Handle one client message; returns the reply or None."""
        handlers = {
            DhcpMessageType.DISCOVER: self._handle_discover,
            DhcpMessageType.REQUEST: self._handle_request,
            DhcpMessageType.RELEASE: self._handle_release,
            DhcpMessageType.INFORM: self._handle_inform,
            DhcpMessageType.DECLINE: self._handle_decline,
        }
        handler = handlers.get(message.message_type)
        if handler is None:
            raise SimulationError(
                "server cannot handle %s" % message.message_type.name
            )
        return handler(message, now)

    def _handle_discover(self, message: DhcpMessage,
                         now: float) -> DhcpMessage:
        lease = self._server.request(message.client_id, now)
        return DhcpMessage(
            DhcpMessageType.OFFER, message.xid, message.client_id,
            yiaddr=lease.address, lease_time=int(lease.duration),
            server_id=self._server_id)

    def _handle_request(self, message: DhcpMessage,
                        now: float) -> DhcpMessage:
        binding = self._server.binding_for(message.client_id)
        wanted = message.requested_ip or (
            message.ciaddr if message.ciaddr.value else None)
        if binding is None or wanted is None or binding.address != wanted:
            # Requesting an address we do not have bound for this client:
            # the client must restart from DISCOVER.
            return DhcpMessage(
                DhcpMessageType.NAK, message.xid, message.client_id,
                server_id=self._server_id)
        if message.requested_ip is None and not binding.is_active(now):
            # A renewal (ciaddr set) of an already expired lease fails.
            return DhcpMessage(
                DhcpMessageType.NAK, message.xid, message.client_id,
                server_id=self._server_id)
        if binding.is_active(now):
            lease = self._server.renew(message.client_id, now)
        else:
            lease = self._server.request(message.client_id, now)
            if lease.address != wanted:
                return DhcpMessage(
                    DhcpMessageType.NAK, message.xid, message.client_id,
                    server_id=self._server_id)
        return DhcpMessage(
            DhcpMessageType.ACK, message.xid, message.client_id,
            ciaddr=message.ciaddr, yiaddr=lease.address,
            lease_time=int(lease.duration), server_id=self._server_id)

    def _handle_release(self, message: DhcpMessage,
                        now: float) -> None:
        if self._server.binding_for(message.client_id) is not None:
            self._server.release(message.client_id, now)
        return None

    def _handle_decline(self, message: DhcpMessage,
                        now: float) -> None:
        # The client found the address in use elsewhere; drop the binding.
        if self._server.binding_for(message.client_id) is not None:
            self._server.release(message.client_id, now)
        return None

    def _handle_inform(self, message: DhcpMessage,
                       now: float) -> DhcpMessage:
        del now  # INFORM never touches lease state
        return DhcpMessage(
            DhcpMessageType.ACK, message.xid, message.client_id,
            ciaddr=message.ciaddr, server_id=self._server_id)


def run_dora(handler: DhcpMessageHandler, client_id: str, now: float,
             xid: int = 1) -> DhcpMessage:
    """Run a full DISCOVER/OFFER/REQUEST/ACK exchange; returns the ACK."""
    offer = handler.handle(
        DhcpMessage(DhcpMessageType.DISCOVER, xid, client_id), now)
    if offer is None or offer.message_type is not DhcpMessageType.OFFER:
        raise SimulationError("expected OFFER, got %r" % (offer,))
    ack = handler.handle(
        DhcpMessage(DhcpMessageType.REQUEST, xid, client_id,
                    requested_ip=offer.yiaddr, server_id=offer.server_id),
        now)
    if ack is None or ack.message_type is not DhcpMessageType.ACK:
        raise SimulationError("expected ACK, got %r" % (ack,))
    return ack
