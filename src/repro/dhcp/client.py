"""DHCP client state machine (RFC 2131 timer behaviour).

The simulator mostly drives the server through event-level shortcuts, but
the client FSM exists so the protocol semantics the paper relies on —
renew at T1, rebind at T2, restart from INIT after expiry — are implemented
and testable, not just asserted in prose.

States follow RFC 2131 Figure 5, reduced to the address-lifecycle subset
that matters for churn analysis: INIT, BOUND, RENEWING, REBINDING.
"""

from __future__ import annotations

import enum

from repro.dhcp.lease import Lease
from repro.dhcp.server import DhcpServer
from repro.errors import SimulationError


class ClientState(enum.Enum):
    """RFC 2131 client states relevant to address lifetime."""

    INIT = "init"
    BOUND = "bound"
    RENEWING = "renewing"
    REBINDING = "rebinding"


class DhcpClient:
    """A client that obtains and maintains a lease from one server.

    Drive it with :meth:`boot` and :meth:`advance_to`.  ``advance_to`` walks
    the timer events (T1, T2, expiry) between the current clock and the
    target time; ``reachable=False`` simulates a network outage in which
    renewal traffic cannot reach the server, so the lease runs out and the
    client falls back to INIT.
    """

    def __init__(self, client_id: str, server: DhcpServer) -> None:
        self._client_id = client_id
        self._server = server
        self._state = ClientState.INIT
        self._lease: Lease | None = None
        self._clock = float("-inf")

    @property
    def state(self) -> ClientState:
        """Current FSM state."""
        return self._state

    @property
    def lease(self) -> Lease | None:
        """The currently held lease, or None in INIT."""
        return self._lease

    @property
    def address(self):
        """The currently held address, or None in INIT."""
        return None if self._lease is None else self._lease.address

    def boot(self, now: float) -> Lease:
        """(Re)start the client: request a lease from INIT.

        Per the server's RFC 2131 preservation, a rebooting client usually
        gets its previous address back.
        """
        self._advance_clock(now)
        self._lease = self._server.request(self._client_id, now)
        self._state = ClientState.BOUND
        return self._lease

    def release(self, now: float) -> None:
        """Gracefully release the lease and return to INIT."""
        self._advance_clock(now)
        if self._lease is None:
            raise SimulationError("client %r holds no lease" % self._client_id)
        self._server.release(self._client_id, now)
        self._lease = None
        self._state = ClientState.INIT

    def advance_to(self, now: float, reachable: bool = True) -> None:
        """Process all timer events up to ``now``.

        With ``reachable=True`` the client renews at T1 (staying BOUND from
        the caller's perspective after the round trip).  With
        ``reachable=False`` renewal attempts fail: the client passes through
        RENEWING and REBINDING and, once the lease expires, returns to INIT
        with no address — it must :meth:`boot` again when service returns.
        """
        self._advance_clock(now)
        if self._state is ClientState.INIT or self._lease is None:
            return
        while True:
            lease = self._lease
            if lease is None:
                return
            if reachable and now >= lease.t1:
                # Renew as soon as T1 passes; the server restarts the clock.
                self._state = ClientState.RENEWING
                self._lease = self._server.renew(self._client_id, lease.t1)
                self._state = ClientState.BOUND
                continue
            break
        lease = self._lease
        if lease is None:
            return
        if not reachable:
            if now >= lease.expires_at:
                # Lease ran out with the server unreachable: RFC 2131 says
                # the client must halt use of the address.
                self._lease = None
                self._state = ClientState.INIT
            elif now >= lease.t2:
                self._state = ClientState.REBINDING
            elif now >= lease.t1:
                self._state = ClientState.RENEWING

    def _advance_clock(self, now: float) -> None:
        if now < self._clock:
            raise SimulationError(
                "time went backwards: %r after %r" % (now, self._clock)
            )
        self._clock = now
