"""A DHCP server with RFC 2131 §4.3.1 binding preservation.

The design goal quoted by the paper — *"a DHCP client should be assigned the
same address in response to each request, whenever possible"* — is the crux
of why DHCP-run ISPs rarely renumber: the server remembers the client's
binding even after the lease expires and re-issues the same address unless
it has since been reclaimed for another customer.

:class:`DhcpServer` implements that behaviour against any allocator exposing
the :class:`repro.isp.pool.AddressPool` interface (``try_allocate`` /
``allocate`` / ``release``).  Address reclamation pressure is modelled by an
exponential survival process: once a binding has been expired for ``t``
hours, it survives with probability ``exp(-churn_rate_per_hour * t)``.  The
paper's Figure 9 (LGI panel) is exactly this mechanism seen from outside:
short outages never renumber, multi-day outages usually do.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Protocol

from repro.dhcp.lease import Lease
from repro.errors import SimulationError
from repro.net.ipv4 import IPv4Address
from repro.util.timeutil import HOUR


class Allocator(Protocol):
    """Address allocator interface (implemented by AddressPool)."""

    def allocate(self, rng: random.Random,
                 previous: IPv4Address | None = None,
                 now: float | None = None) -> IPv4Address: ...

    def release(self, address: IPv4Address) -> None: ...


@dataclass(frozen=True)
class ReconnectResult:
    """Outcome of a client returning after an outage."""

    lease: Lease
    address_changed: bool


class DhcpServer:
    """Issues and preserves dynamic address bindings for clients."""

    def __init__(self, allocator: Allocator, lease_duration: float,
                 rng: random.Random,
                 churn_rate_per_hour: float = 0.0) -> None:
        if lease_duration <= 0:
            raise SimulationError("lease duration must be positive")
        if churn_rate_per_hour < 0:
            raise SimulationError("churn rate must be non-negative")
        self._allocator = allocator
        self._lease_duration = lease_duration
        self._rng = rng
        self._churn_rate = churn_rate_per_hour
        self._bindings: dict[str, Lease] = {}

    @property
    def lease_duration(self) -> float:
        """Configured lease duration in seconds."""
        return self._lease_duration

    def binding_for(self, client_id: str) -> Lease | None:
        """Return the remembered binding for a client, if any."""
        return self._bindings.get(client_id)

    def request(self, client_id: str, now: float) -> Lease:
        """Handle DHCPDISCOVER/REQUEST from a (re)booting client.

        Per RFC 2131 §4.3.1, the server prefers the client's existing
        binding — active *or* expired — and only allocates a fresh address
        when that binding's address has been given away.
        """
        binding = self._bindings.get(client_id)
        if binding is not None:
            if binding.is_active(now) or self._survives_reclaim(
                    now - binding.expires_at):
                # Active, or expired but unclaimed: the preferred RFC 2131
                # outcome — the client keeps its address.
                return self._renew_binding(client_id, binding, now)
            self._allocator.release(binding.address)
            return self._issue_fresh(client_id, now, previous=binding.address)
        return self._issue_fresh(client_id, now, previous=None)

    def renew(self, client_id: str, now: float) -> Lease:
        """Handle a renewal (RENEWING/REBINDING states) for an active lease."""
        binding = self._bindings.get(client_id)
        if binding is None or not binding.is_active(now):
            raise SimulationError(
                "client %r has no active lease to renew" % client_id
            )
        return self._renew_binding(client_id, binding, now)

    def release(self, client_id: str, now: float) -> None:
        """Handle DHCPRELEASE: free the address, forget the binding."""
        del now  # releases are immediate regardless of remaining lease time
        binding = self._bindings.pop(client_id, None)
        if binding is None:
            raise SimulationError("client %r holds no binding" % client_id)
        self._allocator.release(binding.address)

    def reconnect_after_outage(self, client_id: str, outage_start: float,
                               now: float) -> ReconnectResult:
        """Event-level shortcut: a continuously renewing client went dark.

        While healthy, the client renews at T1, so at ``outage_start`` the
        lease has between half and the full duration left; we sample that
        residual uniformly rather than replaying every renewal.  If the
        outage outlasts the residual lease, the binding survives reclaim
        with probability ``exp(-churn * hours_expired)``.
        """
        if now < outage_start:
            raise SimulationError("reconnect precedes outage start")
        binding = self._bindings.get(client_id)
        if binding is None:
            lease = self._issue_fresh(client_id, now, previous=None)
            return ReconnectResult(lease, True)

        residual = self._rng.uniform(0.5, 1.0) * self._lease_duration
        expiry = outage_start + residual
        if now < expiry or self._survives_reclaim(now - expiry):
            return ReconnectResult(
                self._renew_binding(client_id, binding, now), False
            )
        # Reclaimed: the old address went to another customer.
        self._allocator.release(binding.address)
        lease = self._issue_fresh(client_id, now, previous=binding.address)
        return ReconnectResult(lease, True)

    def renumber(self, client_id: str, now: float) -> Lease:
        """Administratively force a fresh address for a client.

        Used to model the rare DHCP-side changes the paper attributes to
        reconfiguration or client-identifier churn (a replaced CPE presents
        a new DUID and the binding no longer matches).
        """
        binding = self._bindings.get(client_id)
        previous: IPv4Address | None = None
        if binding is not None:
            self._allocator.release(binding.address)
            previous = binding.address
        return self._issue_fresh(client_id, now, previous=previous)

    def _survives_reclaim(self, expired_for: float) -> bool:
        if expired_for <= 0:
            return True
        probability = math.exp(-self._churn_rate * expired_for / HOUR)
        return self._rng.random() < probability

    def _renew_binding(self, client_id: str, binding: Lease,
                       now: float) -> Lease:
        lease = binding.renewed(now)
        self._bindings[client_id] = lease
        return lease

    def _issue(self, client_id: str, address: IPv4Address,
               now: float) -> Lease:
        lease = Lease(address, client_id, now, self._lease_duration)
        self._bindings[client_id] = lease
        return lease

    def _issue_fresh(self, client_id: str, now: float,
                     previous: IPv4Address | None) -> Lease:
        address = self._allocator.allocate(self._rng, previous=previous,
                                           now=now)
        return self._issue(client_id, address, now)
