"""DHCP substrate: messages, leases, preserving server, client FSM."""

from repro.dhcp.client import ClientState, DhcpClient
from repro.dhcp.lease import T1_FRACTION, T2_FRACTION, Lease
from repro.dhcp.messages import DhcpMessage, DhcpMessageType, Op
from repro.dhcp.protocol import DhcpMessageHandler, run_dora
from repro.dhcp.server import DhcpServer, ReconnectResult

__all__ = [
    "ClientState",
    "DhcpClient",
    "DhcpMessage",
    "DhcpMessageHandler",
    "DhcpMessageType",
    "DhcpServer",
    "Lease",
    "Op",
    "ReconnectResult",
    "T1_FRACTION",
    "T2_FRACTION",
    "run_dora",
]
