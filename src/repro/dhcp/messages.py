"""DHCP message model with binary wire encoding (RFC 2131 / RFC 2132).

The simulator drives the DHCP server through its Python API, but the
protocol itself is implemented: messages carry the fixed BOOTP-style
header fields the lease lifecycle needs (op, xid, ciaddr, yiaddr) plus a
TLV option area behind the magic cookie, and encode/decode to bytes.

Supported options are the address-lifecycle subset: message type (53),
requested IP address (50), lease time (51), server identifier (54), and
client identifier (61).
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass, field

from repro.errors import ParseError
from repro.net.ipv4 import IPv4Address

#: RFC 2131 magic cookie introducing the options area.
MAGIC_COOKIE = b"\x63\x82\x53\x63"

_HEADER = struct.Struct("!BBBBIHHIIII16s64s128s")

OPT_PAD = 0
OPT_REQUESTED_IP = 50
OPT_LEASE_TIME = 51
OPT_MESSAGE_TYPE = 53
OPT_SERVER_ID = 54
OPT_CLIENT_ID = 61
OPT_END = 255


class Op(enum.IntEnum):
    """BOOTP op field."""

    REQUEST = 1
    REPLY = 2


class DhcpMessageType(enum.IntEnum):
    """Option 53 values (RFC 2132 section 9.6)."""

    DISCOVER = 1
    OFFER = 2
    REQUEST = 3
    DECLINE = 4
    ACK = 5
    NAK = 6
    RELEASE = 7
    INFORM = 8


_REPLY_TYPES = {DhcpMessageType.OFFER, DhcpMessageType.ACK,
                DhcpMessageType.NAK}


@dataclass(frozen=True)
class DhcpMessage:
    """One DHCP message; unset addresses are 0.0.0.0 as on the wire."""

    message_type: DhcpMessageType
    xid: int
    client_id: str
    ciaddr: IPv4Address = field(default=IPv4Address(0))
    yiaddr: IPv4Address = field(default=IPv4Address(0))
    requested_ip: IPv4Address | None = None
    lease_time: int | None = None
    server_id: IPv4Address | None = None

    def __post_init__(self) -> None:
        if not 0 <= self.xid < 2 ** 32:
            raise ParseError("xid out of range: %r" % (self.xid,))
        if not self.client_id:
            raise ParseError("client id must be non-empty")
        if len(self.client_id.encode("utf-8")) > 254:
            raise ParseError("client id too long for option encoding")
        if self.lease_time is not None and not 0 < self.lease_time < 2 ** 32:
            raise ParseError("lease time out of range: %r" % (self.lease_time,))

    @property
    def op(self) -> Op:
        """BOOTP op implied by the message type."""
        return Op.REPLY if self.message_type in _REPLY_TYPES else Op.REQUEST

    # -- wire format ---------------------------------------------------------

    def encode(self) -> bytes:
        """Serialize to RFC 2131 wire format."""
        header = _HEADER.pack(
            int(self.op), 1, 6, 0,          # op, htype=ethernet, hlen, hops
            self.xid, 0, 0,                  # xid, secs, flags
            self.ciaddr.value, self.yiaddr.value, 0, 0,  # siaddr, giaddr
            b"\x00" * 16, b"\x00" * 64, b"\x00" * 128,   # chaddr, sname, file
        )
        options = bytearray(MAGIC_COOKIE)
        options += bytes([OPT_MESSAGE_TYPE, 1, int(self.message_type)])
        client_id = self.client_id.encode("utf-8")
        options += bytes([OPT_CLIENT_ID, len(client_id)]) + client_id
        if self.requested_ip is not None:
            options += bytes([OPT_REQUESTED_IP, 4])
            options += struct.pack("!I", self.requested_ip.value)
        if self.lease_time is not None:
            options += bytes([OPT_LEASE_TIME, 4])
            options += struct.pack("!I", self.lease_time)
        if self.server_id is not None:
            options += bytes([OPT_SERVER_ID, 4])
            options += struct.pack("!I", self.server_id.value)
        options.append(OPT_END)
        return header + bytes(options)

    @classmethod
    def decode(cls, data: bytes) -> "DhcpMessage":
        """Parse wire format, rejecting malformed input."""
        if len(data) < _HEADER.size + len(MAGIC_COOKIE) + 1:
            raise ParseError("DHCP message truncated: %d bytes" % len(data))
        fields = _HEADER.unpack_from(data, 0)
        op, _htype, _hlen, _hops, xid = fields[:5]
        ciaddr_value, yiaddr_value = fields[7], fields[8]
        cookie_at = _HEADER.size
        if data[cookie_at:cookie_at + 4] != MAGIC_COOKIE:
            raise ParseError("bad DHCP magic cookie")

        message_type: DhcpMessageType | None = None
        client_id: str | None = None
        requested_ip: IPv4Address | None = None
        lease_time: int | None = None
        server_id: IPv4Address | None = None
        index = cookie_at + 4
        while index < len(data):
            code = data[index]
            index += 1
            if code == OPT_PAD:
                continue
            if code == OPT_END:
                break
            if index >= len(data):
                raise ParseError("option %d missing length" % code)
            length = data[index]
            index += 1
            value = data[index:index + length]
            if len(value) != length:
                raise ParseError("option %d truncated" % code)
            index += length
            if code == OPT_MESSAGE_TYPE:
                if length != 1:
                    raise ParseError("message-type option must be 1 byte")
                try:
                    message_type = DhcpMessageType(value[0])
                except ValueError:
                    raise ParseError(
                        "unknown DHCP message type %d" % value[0]) from None
            elif code == OPT_CLIENT_ID:
                client_id = value.decode("utf-8", errors="strict")
            elif code == OPT_REQUESTED_IP:
                requested_ip = IPv4Address(struct.unpack("!I", value)[0])
            elif code == OPT_LEASE_TIME:
                lease_time = struct.unpack("!I", value)[0]
            elif code == OPT_SERVER_ID:
                server_id = IPv4Address(struct.unpack("!I", value)[0])
        else:
            raise ParseError("options not terminated with END")

        if message_type is None:
            raise ParseError("missing message-type option")
        if client_id is None:
            raise ParseError("missing client-id option")
        message = cls(
            message_type=message_type, xid=xid, client_id=client_id,
            ciaddr=IPv4Address(ciaddr_value), yiaddr=IPv4Address(yiaddr_value),
            requested_ip=requested_ip, lease_time=lease_time,
            server_id=server_id,
        )
        if int(message.op) != op:
            raise ParseError(
                "op %d inconsistent with message type %s"
                % (op, message_type.name)
            )
        return message
