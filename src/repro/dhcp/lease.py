"""DHCP lease bookkeeping.

A :class:`Lease` records one address binding: the client it was issued to,
when it was issued, and for how long.  Timer rules follow RFC 2131: the
renewal time T1 defaults to half the lease duration and the rebinding time
T2 to 87.5% of it.  The paper's DHCP discussion (Section 2.1) hinges on the
client renewing at T1 and the server preferring to extend the same binding.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import SimulationError
from repro.net.ipv4 import IPv4Address

#: RFC 2131 default fractions of the lease duration.
T1_FRACTION = 0.5
T2_FRACTION = 0.875


@dataclass(frozen=True)
class Lease:
    """An address lease issued to a client."""

    address: IPv4Address
    client_id: str
    issued_at: float
    duration: float

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise SimulationError(
                "lease duration must be positive, got %r" % (self.duration,)
            )

    @property
    def expires_at(self) -> float:
        """Absolute expiry time of the lease."""
        return self.issued_at + self.duration

    @property
    def t1(self) -> float:
        """Absolute time at which the client should start renewing."""
        return self.issued_at + T1_FRACTION * self.duration

    @property
    def t2(self) -> float:
        """Absolute time at which the client starts rebinding."""
        return self.issued_at + T2_FRACTION * self.duration

    def is_active(self, now: float) -> bool:
        """True while the lease has not expired."""
        return now < self.expires_at

    def renewed(self, now: float) -> "Lease":
        """Return a copy of the lease re-issued at ``now``.

        Renewal keeps the address and client; only the clock restarts.
        """
        return replace(self, issued_at=now)
