"""On-disk dataset bundles: write a simulated world, load it for analysis.

The paper worked from files scraped once and analyzed many times; this
module gives the reproduction the same workflow.  ``repro-simulate`` writes
a directory bundle; the analysis CLI (and any downstream tool) loads it
without re-running the simulator.

Bundle layout::

    <dir>/meta.json        window, seed, AS names/countries
    <dir>/archive.tsv      probe metadata
    <dir>/connlog.tsv      connection log (ConnectionLog text format)
    <dir>/uptime.tsv       SOS-uptime records (UptimeDataset text format)
    <dir>/kroot.json       per-probe ping-series state (sparse intervals)
    <dir>/pfx2as/<yyyy>-<mm>.txt   monthly IP-to-AS snapshots
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.atlas.archive import ProbeArchive
from repro.atlas.connlog import ConnectionLog
from repro.atlas.kroot import KRootDataset, KRootSeries
from repro.atlas.sosuptime import UptimeDataset
from repro.atlas.types import ProbeMeta, ProbeVersion
from repro.errors import DatasetError, ParseError
from repro.net.pfx2as import IpToAsDataset, Pfx2AsSnapshot
from repro.sim.world import WorldData
from repro.util import timeutil
from repro.util.intervals import Interval, IntervalSet

BUNDLE_VERSION = 1


@dataclass
class DatasetBundle:
    """Datasets loaded from disk, ready for AnalysisPipeline."""

    start: float
    end: float
    seed: int
    archive: ProbeArchive
    connlog: ConnectionLog
    kroot: KRootDataset
    uptime: UptimeDataset
    ip2as: IpToAsDataset
    as_names: dict[int, str]
    as_countries: dict[int, str]


def _series_state(series: KRootSeries) -> dict:
    return {
        "probe_id": series.probe_id,
        "start": series.observed_start,
        "end": series.observed_end,
        "cadence": series.cadence,
        "phase": series.phase,
        "power_off": [[iv.start, iv.end] for iv in series.power_off],
        "network_down": [[iv.start, iv.end] for iv in series.network_down],
    }


def _series_from_state(state: dict) -> KRootSeries:
    try:
        return KRootSeries(
            int(state["probe_id"]), float(state["start"]),
            float(state["end"]),
            power_off=IntervalSet(Interval(a, b)
                                  for a, b in state["power_off"]),
            network_down=IntervalSet(Interval(a, b)
                                     for a, b in state["network_down"]),
            cadence=float(state["cadence"]),
            phase=float(state["phase"]),
        )
    except (KeyError, TypeError, ValueError) as error:
        raise ParseError("malformed k-root series state: %s" % error) from None


def write_world(world: WorldData, directory: str | Path) -> Path:
    """Write a world's datasets as a bundle; returns the directory."""
    root = Path(directory)
    root.mkdir(parents=True, exist_ok=True)

    as_names: dict[int, str] = {}
    as_countries: dict[int, str] = {}
    for profile in world.config.profiles:
        as_names[profile.spec.asn] = profile.spec.name
        as_countries[profile.spec.asn] = profile.spec.country
    meta = {
        "bundle_version": BUNDLE_VERSION,
        "start": world.config.start,
        "end": world.config.end,
        "seed": world.config.seed,
        "as_names": {str(asn): name for asn, name in as_names.items()},
        "as_countries": {str(asn): country
                         for asn, country in as_countries.items()},
    }
    (root / "meta.json").write_text(json.dumps(meta, indent=2))

    with open(root / "archive.tsv", "w") as stream:
        for probe in world.archive:
            stream.write("%d\t%s\t%s\t%d\t%s\n" % (
                probe.probe_id, probe.country, probe.continent,
                probe.version.value, ",".join(probe.tags)))

    with open(root / "connlog.tsv", "w") as stream:
        world.connlog.write(stream)
    with open(root / "uptime.tsv", "w") as stream:
        world.uptime.write(stream)

    states = [_series_state(world.kroot.series(pid))
              for pid in world.kroot.probe_ids()]
    (root / "kroot.json").write_text(json.dumps(states))

    pfx_dir = root / "pfx2as"
    pfx_dir.mkdir(exist_ok=True)
    for year, month in world.ip2as.months():
        snapshot = world.ip2as.snapshot_for(timeutil.epoch(year, month, 1))
        with open(pfx_dir / ("%04d-%02d.txt" % (year, month)), "w") as stream:
            snapshot.write(stream)
    return root


def _read_archive(path: Path) -> ProbeArchive:
    archive = ProbeArchive()
    with open(path) as stream:
        for line_number, line in enumerate(stream, start=1):
            text = line.strip()
            if not text:
                continue
            fields = text.split("\t")
            if len(fields) not in (4, 5):
                raise ParseError(
                    "archive line %d: expected 4-5 fields" % line_number)
            tags = tuple(t for t in (fields[4].split(",")
                                     if len(fields) == 5 else []) if t)
            archive.add(ProbeMeta(
                int(fields[0]), fields[1], fields[2],
                ProbeVersion(int(fields[3])), tags))
    return archive


def load_bundle(directory: str | Path) -> DatasetBundle:
    """Load a dataset bundle written by :func:`write_world`."""
    root = Path(directory)
    meta_path = root / "meta.json"
    if not meta_path.exists():
        raise DatasetError("no bundle at %s (missing meta.json)" % root)
    meta = json.loads(meta_path.read_text())
    if meta.get("bundle_version") != BUNDLE_VERSION:
        raise DatasetError(
            "unsupported bundle version %r" % meta.get("bundle_version"))

    archive = _read_archive(root / "archive.tsv")
    with open(root / "connlog.tsv") as stream:
        connlog = ConnectionLog.read(stream)
    with open(root / "uptime.tsv") as stream:
        uptime = UptimeDataset.read(stream)

    kroot = KRootDataset()
    for state in json.loads((root / "kroot.json").read_text()):
        kroot.add_series(_series_from_state(state))

    ip2as = IpToAsDataset()
    for path in sorted((root / "pfx2as").glob("*.txt")):
        year_text, _, month_text = path.stem.partition("-")
        with open(path) as stream:
            ip2as.add_snapshot(int(year_text), int(month_text),
                               Pfx2AsSnapshot.read(stream))

    return DatasetBundle(
        start=float(meta["start"]), end=float(meta["end"]),
        seed=int(meta["seed"]),
        archive=archive, connlog=connlog, kroot=kroot, uptime=uptime,
        ip2as=ip2as,
        as_names={int(k): v for k, v in meta["as_names"].items()},
        as_countries={int(k): v for k, v in meta["as_countries"].items()},
    )


