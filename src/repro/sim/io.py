"""On-disk dataset bundles: write a simulated world, load it for analysis.

The paper worked from files scraped once and analyzed many times; this
module gives the reproduction the same workflow.  ``repro-simulate`` writes
a directory bundle; the analysis CLI (and any downstream tool) loads it
without re-running the simulator.

Bundle layout::

    <dir>/meta.json        window, seed, AS names/countries
    <dir>/archive.tsv      probe metadata
    <dir>/connlog.tsv      connection log (ConnectionLog text format)
    <dir>/uptime.tsv       SOS-uptime records (UptimeDataset text format)
    <dir>/kroot.json       per-probe ping-series state (sparse intervals)
    <dir>/pfx2as/<yyyy>-<mm>.txt   monthly IP-to-AS snapshots
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.atlas.archive import ProbeArchive
from repro.atlas.connlog import ConnectionLog
from repro.atlas.kroot import KRootDataset, KRootSeries
from repro.atlas.sosuptime import UptimeDataset
from repro.atlas.types import ProbeMeta, ProbeVersion
from repro.errors import DatasetError, ParseError
from repro.net.pfx2as import IpToAsDataset, Pfx2AsSnapshot
from repro.sim.world import WorldData
from repro.util import timeutil
from repro.util import fingerprint as fp
from repro.util.ingest import (
    IngestReport,
    ReadPolicy,
    format_line_error,
)
from repro.util.intervals import Interval, IntervalSet

BUNDLE_VERSION = 1

#: Bundle files a load consults besides ``meta.json`` (which is always
#: required: without the window and seed nothing can be interpreted).
BUNDLE_FILES = ("archive.tsv", "connlog.tsv", "uptime.tsv", "kroot.json")

#: Informational copy of the content fingerprint, written next to the data
#: files.  Loads recompute the fingerprint from the bytes on disk rather
#: than trusting this file, so it is excluded from the hash itself.
FINGERPRINT_FILE = "fingerprint.txt"


@dataclass
class DatasetBundle:
    """Datasets loaded from disk, ready for AnalysisPipeline."""

    start: float
    end: float
    seed: int
    archive: ProbeArchive
    connlog: ConnectionLog
    kroot: KRootDataset
    uptime: UptimeDataset
    ip2as: IpToAsDataset
    as_names: dict[int, str]
    as_countries: dict[int, str]
    #: Content fingerprint of the on-disk files this bundle was loaded
    #: from (:func:`bundle_fingerprint`); empty for synthetic bundles.
    fingerprint: str = ""


def bundle_fingerprint(directory: str | Path) -> str:
    """Content fingerprint of a bundle directory.

    Covers ``meta.json``, every dataset file and every pfx2as snapshot, in
    a canonical order, so any byte-level edit — one repaired connlog line,
    a swapped snapshot month — yields a different fingerprint.  The
    runtime artifact cache keys stage outputs on this value.
    """
    root = Path(directory)
    paths = [root / "meta.json"]
    paths.extend(root / name for name in BUNDLE_FILES)
    paths.extend(sorted((root / "pfx2as").glob("*.txt")))
    return fp.hash_files(path for path in paths if path.exists())


def _series_state(series: KRootSeries) -> dict:
    return {
        "probe_id": series.probe_id,
        "start": series.observed_start,
        "end": series.observed_end,
        "cadence": series.cadence,
        "phase": series.phase,
        "power_off": [[iv.start, iv.end] for iv in series.power_off],
        "network_down": [[iv.start, iv.end] for iv in series.network_down],
    }


def _series_from_state(state: dict, source: str = "<kroot>",
                       index: int = 0) -> KRootSeries:
    try:
        return KRootSeries(
            int(state["probe_id"]), float(state["start"]),
            float(state["end"]),
            power_off=IntervalSet(Interval(a, b)
                                  for a, b in state["power_off"]),
            network_down=IntervalSet(Interval(a, b)
                                     for a, b in state["network_down"]),
            cadence=float(state["cadence"]),
            phase=float(state["phase"]),
        )
    except (KeyError, TypeError, ValueError) as error:
        raise ParseError(format_line_error(
            source, index, "malformed k-root series state: %s" % error
        )) from None


def write_world(world: WorldData, directory: str | Path) -> Path:
    """Write a world's datasets as a bundle; returns the directory."""
    root = Path(directory)
    root.mkdir(parents=True, exist_ok=True)

    as_names: dict[int, str] = {}
    as_countries: dict[int, str] = {}
    for profile in world.config.profiles:
        as_names[profile.spec.asn] = profile.spec.name
        as_countries[profile.spec.asn] = profile.spec.country
    meta = {
        "bundle_version": BUNDLE_VERSION,
        "start": world.config.start,
        "end": world.config.end,
        "seed": world.config.seed,
        "as_names": {str(asn): name for asn, name in as_names.items()},
        "as_countries": {str(asn): country
                         for asn, country in as_countries.items()},
    }
    (root / "meta.json").write_text(json.dumps(meta, indent=2))

    with open(root / "archive.tsv", "w") as stream:
        for probe in world.archive:
            stream.write("%d\t%s\t%s\t%d\t%s\n" % (
                probe.probe_id, probe.country, probe.continent,
                probe.version.value, ",".join(probe.tags)))

    with open(root / "connlog.tsv", "w") as stream:
        world.connlog.write(stream)
    with open(root / "uptime.tsv", "w") as stream:
        world.uptime.write(stream)

    states = [_series_state(world.kroot.series(pid))
              for pid in world.kroot.probe_ids()]
    (root / "kroot.json").write_text(json.dumps(states))

    pfx_dir = root / "pfx2as"
    pfx_dir.mkdir(exist_ok=True)
    for year, month in world.ip2as.months():
        snapshot = world.ip2as.snapshot_for(timeutil.epoch(year, month, 1))
        with open(pfx_dir / ("%04d-%02d.txt" % (year, month)), "w") as stream:
            snapshot.write(stream)
    (root / FINGERPRINT_FILE).write_text(bundle_fingerprint(root) + "\n")
    return root


def _parse_archive_line(text: str) -> ProbeMeta:
    """Parse one archive record; raises :class:`ParseError` sans location."""
    fields = text.split("\t")
    if len(fields) not in (4, 5):
        raise ParseError("expected 4-5 fields, got %d" % len(fields))
    tags = tuple(t for t in (fields[4].split(",")
                             if len(fields) == 5 else []) if t)
    try:
        probe_id = int(fields[0])
        version = ProbeVersion(int(fields[3]))
    except ValueError:
        raise ParseError("malformed probe id or version") from None
    return ProbeMeta(probe_id, fields[1], fields[2], version, tags)


def _read_archive(path: Path,
                  policy: ReadPolicy = ReadPolicy.STRICT,
                  report: IngestReport | None = None) -> ProbeArchive:
    source = str(path)
    report = report if report is not None else IngestReport()
    archive = ProbeArchive()
    with open(path) as stream:
        for line_number, line in enumerate(stream, start=1):
            text = line.strip()
            if not text or text.startswith("#"):
                continue
            try:
                # ProbeArchive.add rejects duplicates and unknown
                # continents (DatasetError).
                archive.add(_parse_archive_line(text))
            except (ParseError, DatasetError) as error:
                if policy is ReadPolicy.STRICT:
                    raise type(error)(
                        format_line_error(source, line_number, error)
                    ) from None
                report.quarantined("archive", source, line_number,
                                   str(error))
                continue
            report.parsed("archive")
    return archive


def _require_file(root: Path, name: str, policy: ReadPolicy,
                  report: IngestReport) -> Path | None:
    """Resolve a bundle file; STRICT raises, REPAIR notes and returns None."""
    path = root / name
    if path.exists():
        return path
    if policy is ReadPolicy.STRICT:
        raise DatasetError("bundle file missing: %s" % path)
    report.note("bundle", str(path),
                "%s missing; continuing with an empty dataset" % name)
    return None


def _load_meta(root: Path) -> dict:
    """Read and validate ``meta.json``; always fatal when broken."""
    meta_path = root / "meta.json"
    if not meta_path.exists():
        raise DatasetError("no bundle at %s (missing meta.json)" % root)
    try:
        meta = json.loads(meta_path.read_text())
    except json.JSONDecodeError as error:
        raise DatasetError("%s: malformed JSON: %s"
                           % (meta_path, error)) from None
    if meta.get("bundle_version") != BUNDLE_VERSION:
        raise DatasetError(
            "unsupported bundle version %r" % meta.get("bundle_version"))
    try:
        meta["start"] = float(meta["start"])
        meta["end"] = float(meta["end"])
        meta["seed"] = int(meta["seed"])
        meta["as_names"] = {int(k): v
                            for k, v in meta["as_names"].items()}
        meta["as_countries"] = {int(k): v
                                for k, v in meta["as_countries"].items()}
    except (KeyError, TypeError, ValueError) as error:
        raise DatasetError("%s: malformed metadata: %s"
                           % (meta_path, error)) from None
    return meta


def _load_kroot(path: Path | None, policy: ReadPolicy,
                report: IngestReport) -> KRootDataset:
    """Load the per-probe k-root series states."""
    kroot = KRootDataset()
    if path is None:
        return kroot
    source = str(path)
    try:
        states = json.loads(path.read_text())
    except json.JSONDecodeError as error:
        if policy is ReadPolicy.STRICT:
            raise DatasetError("%s: malformed JSON: %s"
                               % (source, error)) from None
        report.note("kroot", source,
                    "malformed JSON (%s); continuing with an empty "
                    "dataset" % error)
        return kroot
    if not isinstance(states, list):
        raise DatasetError("%s: expected a JSON array of series states"
                           % source)
    for index, state in enumerate(states, start=1):
        try:
            # KRootDataset.add_series rejects duplicates (DatasetError).
            kroot.add_series(_series_from_state(state, source, index))
        except (ParseError, DatasetError) as error:
            if policy is ReadPolicy.STRICT:
                raise
            report.quarantined("kroot", source, index, str(error))
            continue
        report.parsed("kroot")
    return kroot


def _load_ip2as(root: Path, meta: dict, policy: ReadPolicy,
                report: IngestReport) -> IpToAsDataset:
    """Load monthly pfx2as snapshots, detecting gaps under REPAIR."""
    ip2as = IpToAsDataset()
    for path in sorted((root / "pfx2as").glob("*.txt")):
        year_text, _, month_text = path.stem.partition("-")
        try:
            year, month = int(year_text), int(month_text)
        except ValueError:
            if policy is ReadPolicy.STRICT:
                raise DatasetError(
                    "unrecognized pfx2as filename %s (expected "
                    "YYYY-MM.txt)" % path) from None
            report.note("pfx2as", str(path),
                        "unrecognized filename; expected YYYY-MM.txt, "
                        "skipping")
            continue
        with open(path) as stream:
            snapshot = Pfx2AsSnapshot.read(stream, policy, report,
                                           source=str(path))
        try:
            ip2as.add_snapshot(year, month, snapshot)
        except DatasetError as error:
            if policy is ReadPolicy.STRICT:
                raise DatasetError("%s: %s" % (path, error)) from None
            report.note("pfx2as", str(path), "%s; skipping file" % error)
    if policy is ReadPolicy.REPAIR:
        present = set(ip2as.months())
        for year, month, _ in timeutil.iter_month_starts(meta["start"],
                                                         meta["end"]):
            key = (year, month)
            if key not in present:
                report.note(
                    "pfx2as", str(root / "pfx2as"),
                    "no snapshot for %04d-%02d; lookups fall back to the "
                    "nearest earlier month" % key)
                ip2as.fallback = True
    return ip2as


def load_bundle(directory: str | Path,
                policy: ReadPolicy = ReadPolicy.STRICT,
                report: IngestReport | None = None) -> DatasetBundle:
    """Load a dataset bundle written by :func:`write_world`.

    ``policy`` selects the ingestion contract: ``STRICT`` (default)
    raises a :class:`~repro.errors.ReproError` subtype on the first
    missing file or malformed record; ``REPAIR`` loads what it can,
    quarantining bad records and degrading missing datasets to empty
    ones, with every decision accounted in ``report`` (pass an
    :class:`~repro.util.ingest.IngestReport` to inspect it).
    ``meta.json`` problems are fatal under both policies — without the
    observation window and seed the bundle cannot be interpreted.
    """
    root = Path(directory)
    report = report if report is not None else IngestReport()
    meta = _load_meta(root)

    archive_path = _require_file(root, "archive.tsv", policy, report)
    archive = (ProbeArchive() if archive_path is None
               else _read_archive(archive_path, policy, report))

    connlog_path = _require_file(root, "connlog.tsv", policy, report)
    if connlog_path is None:
        connlog = ConnectionLog()
    else:
        with open(connlog_path) as stream:
            connlog = ConnectionLog.read(stream, policy, report,
                                         source=str(connlog_path))

    uptime_path = _require_file(root, "uptime.tsv", policy, report)
    if uptime_path is None:
        uptime = UptimeDataset()
    else:
        with open(uptime_path) as stream:
            uptime = UptimeDataset.read(stream, policy, report,
                                        source=str(uptime_path))

    kroot_path = _require_file(root, "kroot.json", policy, report)
    kroot = _load_kroot(kroot_path, policy, report)

    ip2as = _load_ip2as(root, meta, policy, report)

    return DatasetBundle(
        start=meta["start"], end=meta["end"], seed=meta["seed"],
        archive=archive, connlog=connlog, kroot=kroot, uptime=uptime,
        ip2as=ip2as,
        as_names=meta["as_names"], as_countries=meta["as_countries"],
        fingerprint=bundle_fingerprint(root),
    )


