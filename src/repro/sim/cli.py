"""Command-line simulator: write a dataset bundle to disk.

Usage::

    repro-simulate --out data/ --scale 0.3 --seed 2015
    repro-experiment table5 --data data/      # analyze from disk
"""

from __future__ import annotations

import argparse

from repro.sim.io import write_world
from repro.sim.scenario import paper_scenario
from repro.sim.world import build_world


def main(argv: list[str] | None = None) -> int:
    """Build the paper scenario and write its datasets as a bundle."""
    parser = argparse.ArgumentParser(
        description="Simulate the 2015 RIPE Atlas world and write its "
                    "datasets (connection logs, k-root state, SOS-uptime, "
                    "pfx2as) to a directory bundle")
    parser.add_argument("--out", required=True,
                        help="output directory for the bundle")
    parser.add_argument("--scale", type=float, default=0.5,
                        help="scenario scale factor (default %(default)s)")
    parser.add_argument("--seed", type=int, default=2015,
                        help="scenario seed (default %(default)s)")
    args = parser.parse_args(argv)

    world = build_world(paper_scenario(scale=args.scale, seed=args.seed))
    root = write_world(world, args.out)
    print("Wrote bundle to %s (%d probes, %d connection-log entries)"
          % (root, len(world.archive), world.connlog.entry_count()))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
