"""Per-probe timeline simulation.

:class:`ProbeSimulator` walks one probe through the study year, producing
exactly the observable traces the paper works from:

* connection-log entries — the controller TCP connection breaks on address
  changes, probe/CPE reboots, outages, and benign TCP breaks;
* SOS-uptime records — reported at every connection establishment, with
  the counter resetting on reboots;
* power-off and network-down interval sets — the generative state behind
  the probe's k-root ping series.

The walker interleaves two event sources: the CPE's pre-sampled
interruptions (:mod:`repro.sim.outages`) and the ISP's scheduled session
cuts (:mod:`repro.isp.policy`).  Reconnect gaps follow the paper's
observation that an address change keeps TCP retrying for ~15-25 minutes,
while a plain reconnect returns within a few minutes.

Confounder behaviours — dual-stack family alternation, multihomed
fixed/dynamic alternation, the RIPE testing address, v1/v2 memory-
fragmentation reboots, firmware-update reboots — are all modelled here so
the filtering pipeline has real signals to detect.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.atlas.types import ConnectionLogEntry, ProbeVersion, UptimeRecord
from repro.errors import SimulationError
from repro.isp.policy import DhcpPlant, PppPlant
from repro.net.ipv4 import TESTING_ADDRESS, IPv4Address
from repro.sim.outages import Interruption, InterruptionKind
from repro.util.intervals import IntervalSet
from repro.util.timeutil import DAY, MINUTE

#: Reconnect delay bounds when the address changed (TCP retransmission
#: exhaustion per RFC 1122 4.2.3.5; the paper observes 15-25 minutes).
CHANGE_DELAY = (15 * MINUTE, 25 * MINUTE)
#: Reconnect delay bounds when the address did not change.
PLAIN_DELAY = (1 * MINUTE, 4 * MINUTE)
#: How long a probe takes to reboot (firmware installs, fragmentation).
REBOOT_DURATION = 3 * MINUTE
#: Dark window for a probe-only reboot: boot plus measurement resync.
#: Longer than the ping cadence so at least one round goes missing.
PROBE_REBOOT_OUTAGE = 5 * MINUTE


@dataclass(frozen=True)
class Segment:
    """One stretch of the year during which the probe sits in one ISP.

    Movers have two segments; everyone else has one.
    """

    plant: DhcpPlant | PppPlant | None
    cpe_id: str
    start: float
    end: float

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise SimulationError("segment window is empty")


@dataclass
class ProbeOutput:
    """Everything one probe contributes to the world's datasets."""

    entries: list[ConnectionLogEntry] = field(default_factory=list)
    uptime_records: list[UptimeRecord] = field(default_factory=list)
    power_off: IntervalSet = field(default_factory=IntervalSet)
    network_down: IntervalSet = field(default_factory=IntervalSet)
    #: Ground truth: times at which the probe's IPv4 address changed.
    true_changes: list[float] = field(default_factory=list)


class ProbeSimulator:
    """Simulates one probe's year of connections.

    ``family_mode`` is ``"v4"``, ``"dual"`` or ``"v6"``; ``fixed_address``
    enables multihomed alternation between a fixed and the dynamic address;
    ``testing_first`` prepends a connection from the RIPE testing address.
    """

    def __init__(self, probe_id: int, rng: random.Random,
                 interruptions_by_segment: list[list[Interruption]],
                 segments: list[Segment],
                 version: ProbeVersion = ProbeVersion.V3,
                 fate_sharing: bool = True,
                 frag_reboot_prob: float = 0.0,
                 firmware_campaigns: tuple[float, ...] = (),
                 family_mode: str = "v4",
                 ipv6_address: str | None = None,
                 fixed_address: IPv4Address | None = None,
                 testing_first: bool = False) -> None:
        if family_mode not in ("v4", "dual", "v6"):
            raise SimulationError("unknown family mode %r" % family_mode)
        if family_mode in ("dual", "v6") and ipv6_address is None:
            raise SimulationError("family mode %r needs an IPv6 address"
                                  % family_mode)
        if len(interruptions_by_segment) != len(segments):
            raise SimulationError("one interruption list per segment required")
        if not segments:
            raise SimulationError("at least one segment required")
        self.probe_id = probe_id
        self._rng = rng
        self._segments = segments
        self._interruptions = interruptions_by_segment
        self._version = version
        self._fate_sharing = fate_sharing
        self._frag_prob = (frag_reboot_prob
                           if version is not ProbeVersion.V3 else 0.0)
        self._campaigns = sorted(firmware_campaigns)
        self._family_mode = family_mode
        self._ipv6_address = ipv6_address
        self._fixed_address = fixed_address
        # Mutable walk state.
        self._out = ProbeOutput()
        self._last_boot = 0.0
        self._applied_campaigns = 0
        self._connection_index = 0
        self._testing_first = testing_first

    # -- public ------------------------------------------------------------

    def run(self) -> ProbeOutput:
        """Walk all segments and return the probe's dataset contributions."""
        first_start = self._segments[0].start
        self._last_boot = first_start - self._rng.uniform(0, 30 * DAY)
        previous_end: float | None = None
        for segment, interruptions in zip(self._segments,
                                          self._interruptions):
            if previous_end is not None and segment.start < previous_end:
                raise SimulationError("segments overlap")
            self._walk_segment(segment, interruptions)
            previous_end = segment.end
        return self._out

    # -- walk --------------------------------------------------------------

    def _walk_segment(self, segment: Segment,
                      interruptions: list[Interruption]) -> None:
        plant = segment.plant
        clock = segment.start
        if self._testing_first:
            # Pre-shipment test connection from the RIPE NCC lab.
            self._emit_entry(clock, clock + 10 * MINUTE, TESTING_ADDRESS,
                             force_v4=True)
            clock += 20 * MINUTE
            self._testing_first = False

        address = (plant.connect(segment.cpe_id, clock)
                   if plant is not None else None)
        session_start = clock
        conn_start = clock
        next_cut = (plant.scheduled_cut(segment.cpe_id, session_start)
                    if plant is not None else None)
        self._emit_uptime(conn_start)

        index = 0
        while True:
            upcoming = interruptions[index] if index < len(interruptions) else None
            cut = next_cut
            if cut is not None and cut <= segment.end and (
                    upcoming is None or cut <= upcoming.start):
                # Scheduled periodic cut fires first.
                cut_at = max(cut, conn_start + MINUTE)
                self._emit_entry(conn_start, cut_at, address)
                assert isinstance(plant, PppPlant)
                plant.periodic_cut(segment.cpe_id, cut_at)
                reconnect = cut_at + self._delay(changed=True)
                reconnect = self._gap_reboots(cut_at, reconnect,
                                              address_changed=True)
                address = plant.connect(segment.cpe_id, cut_at)
                self._out.true_changes.append(cut_at)
                session_start = cut_at
                next_cut = plant.scheduled_cut(segment.cpe_id, session_start)
                conn_start = reconnect
                self._emit_uptime(conn_start)
                index = self._skip_interruptions(interruptions, index,
                                                 reconnect)
                continue
            if upcoming is None or upcoming.start >= segment.end:
                break
            index += 1
            if upcoming.start <= conn_start:
                continue  # swallowed by a previous gap
            changed, reconnect, new_address = self._handle_interruption(
                segment, upcoming, conn_start, address)
            if changed:
                self._out.true_changes.append(upcoming.end)
                session_start = upcoming.end
                if plant is not None:
                    next_cut = plant.scheduled_cut(segment.cpe_id,
                                                   session_start)
            address = new_address
            conn_start = reconnect
            self._emit_uptime(conn_start)
            index = self._skip_interruptions(interruptions, index, reconnect)

        if conn_start < segment.end:
            self._emit_entry(conn_start, segment.end, address)
        if plant is not None and isinstance(plant, PppPlant) and \
                plant.concentrator.active_session(segment.cpe_id) is not None:
            # Close the books so a mover's first ISP does not leak sessions.
            plant.concentrator.disconnect(segment.cpe_id, segment.end,
                                          cause="Probe-Moved")

    def _handle_interruption(self, segment: Segment, event: Interruption,
                             conn_start: float,
                             address: IPv4Address | None
                             ) -> tuple[bool, float, IPv4Address | None]:
        """Process one interruption; returns (changed, reconnect, address)."""
        self._emit_entry(conn_start, event.start, address)
        plant = segment.plant
        if event.kind is InterruptionKind.BREAK:
            reconnect = event.start + self._delay(changed=False)
            reconnect = self._gap_reboots(event.start, reconnect,
                                          address_changed=False)
            return False, reconnect, address
        if event.kind is InterruptionKind.ADMIN:
            # ISP-scheduled mass renumbering: the session drops and comes
            # back with an address from the migration prefix.
            if plant is None:
                reconnect = event.start + self._delay(changed=False)
                return False, reconnect, address
            new_address = plant.admin_renumber(segment.cpe_id, event.start)
            reconnect = event.start + self._delay(changed=True)
            reconnect = self._gap_reboots(event.start, reconnect,
                                          address_changed=True)
            return True, reconnect, new_address
        if event.kind is InterruptionKind.PROBE_REBOOT:
            # Only the probe restarts: the CPE keeps its session and
            # address, but the uptime counter resets and a few ping rounds
            # go missing — a false-positive power outage for the analysis.
            boot_end = event.start + PROBE_REBOOT_OUTAGE
            self._out.power_off.add_span(event.start, boot_end)
            self._last_boot = boot_end
            reconnect = boot_end + self._delay(changed=False)
            return False, reconnect, address

        cpe_lost_power = event.kind is InterruptionKind.POWER
        if cpe_lost_power and self._fate_sharing:
            # The probe is USB-powered from the CPE: it goes dark too.
            self._out.power_off.add_span(event.start, event.end)
            self._last_boot = event.end
        else:
            # The probe stays up and watches its pings fail.
            self._out.network_down.add_span(event.start, event.end)

        if plant is None:
            changed = False
        else:
            outcome = plant.reconnect(segment.cpe_id, event.start, event.end,
                                      lost_power=cpe_lost_power)
            changed = outcome.changed
            address = outcome.address
        reconnect = event.end + self._delay(changed)
        reconnect = self._gap_reboots(event.end, reconnect,
                                      address_changed=changed)
        return changed, reconnect, address

    def _skip_interruptions(self, interruptions: list[Interruption],
                            index: int, horizon: float) -> int:
        """Drop events that would start while the probe is still reconnecting."""
        while (index < len(interruptions)
               and interruptions[index].start <= horizon):
            index += 1
        return index

    # -- gap-side effects ----------------------------------------------------

    def _gap_reboots(self, gap_start: float, reconnect: float,
                     address_changed: bool) -> float:
        """Model firmware-install and fragmentation reboots inside a gap.

        The reboot dark window starts when the connection broke and never
        reaches back into the preceding connection; a reboot longer than
        the planned gap pushes the reconnect out.  Returns the (possibly
        extended) reconnect time.
        """
        rebooted = False
        while (self._applied_campaigns < len(self._campaigns)
               and self._campaigns[self._applied_campaigns] <= gap_start):
            self._applied_campaigns += 1
            rebooted = True
        if not rebooted and address_changed and \
                self._rng.random() < self._frag_prob:
            # v1/v2 memory fragmentation: new connections can reboot the
            # probe (Section 5.1), a false-positive power outage.
            rebooted = True
        if rebooted:
            boot_end = gap_start + REBOOT_DURATION
            self._out.power_off.add_span(gap_start, boot_end)
            self._last_boot = boot_end
            reconnect = max(reconnect, boot_end + MINUTE)
        return reconnect

    # -- emission ------------------------------------------------------------

    def _delay(self, changed: bool) -> float:
        low, high = CHANGE_DELAY if changed else PLAIN_DELAY
        return self._rng.uniform(low, high)

    def _emit_uptime(self, timestamp: float) -> None:
        self._out.uptime_records.append(
            UptimeRecord(self.probe_id, timestamp,
                         max(0.0, timestamp - self._last_boot))
        )

    def _emit_entry(self, start: float, end: float,
                    address: IPv4Address | None,
                    force_v4: bool = False) -> None:
        if end <= start:
            return
        self._connection_index += 1
        use_v6 = False
        if not force_v4:
            if self._family_mode == "v6":
                use_v6 = True
            elif self._family_mode == "dual":
                use_v6 = self._rng.random() < 0.5
        if use_v6:
            self._out.entries.append(
                ConnectionLogEntry(self.probe_id, start, end, None,
                                   ipv6_address=self._ipv6_address)
            )
            return
        chosen = address
        if (self._fixed_address is not None
                and self._connection_index % 2 == 0):
            chosen = self._fixed_address
        if chosen is None:
            # IPv4 leg of a probe with no IPv4 plant cannot be emitted.
            raise SimulationError(
                "probe %d has no IPv4 address to report" % self.probe_id
            )
        self._out.entries.append(
            ConnectionLogEntry(self.probe_id, start, end, chosen)
        )
