"""Event simulation: outage processes, probe timelines, world builder."""

from repro.sim.outages import (
    Interruption,
    InterruptionKind,
    generate_interruptions,
)
from repro.sim.scenario import (
    FIRMWARE_CAMPAIGN_DATES,
    ScenarioConfig,
    paper_scenario,
)
from repro.sim.timeline import ProbeOutput, ProbeSimulator, Segment
from repro.sim.world import ProbeRole, ProbeTruth, WorldData, build_world

__all__ = [
    "FIRMWARE_CAMPAIGN_DATES",
    "Interruption",
    "InterruptionKind",
    "ProbeOutput",
    "ProbeRole",
    "ProbeSimulator",
    "ProbeTruth",
    "ScenarioConfig",
    "Segment",
    "WorldData",
    "build_world",
    "generate_interruptions",
    "paper_scenario",
]
