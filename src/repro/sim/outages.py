"""Per-CPE outage and connection-break processes.

Each CPE experiences power outages, network outages (Section 5 of the
paper), and benign TCP connection breaks (NAT rebinds, controller restarts)
that break the probe's controller connection without any outage.  Arrivals
are Poisson; outage durations are lognormal, giving the heavy-tailed
spread across Figure 9's buckets from under five minutes to over a week.

Events are generated disjoint and separated by enough slack that an event
never lands inside the previous event's reconnect gap.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass

from repro.errors import SimulationError
from repro.isp.spec import IspSpec
from repro.util.rng import lognormal_from_median, poisson_arrivals
from repro.util.timeutil import DAY, HOUR, MINUTE


class InterruptionKind(enum.Enum):
    """What broke the probe's controller connection."""

    POWER = "power"
    NETWORK = "network"
    BREAK = "break"  # TCP-level break with no underlying outage
    #: The probe alone reboots (USB glitch, manual replug) while the CPE
    #: stays up — the paper's false-positive power outage (Section 5.1).
    PROBE_REBOOT = "probe-reboot"
    #: The ISP administratively renumbers the customer (Section 2.3);
    #: injected by the world for ISPs with an ``admin_renumber_day``.
    ADMIN = "admin"


@dataclass(frozen=True)
class Interruption:
    """One connection-breaking event at a CPE."""

    kind: InterruptionKind
    start: float
    end: float

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise SimulationError("interruption ends before it starts")

    @property
    def duration(self) -> float:
        """Outage length (zero for bare TCP breaks)."""
        return self.end - self.start


#: Minimum spacing between accepted events, covering the longest reconnect
#: gap (~25 min) plus detection margins.
MIN_SEPARATION = 1.5 * HOUR

#: Outage durations are clipped below to one ping round so every accepted
#: outage is in principle detectable.
MIN_OUTAGE_DURATION = 5 * MINUTE

#: Per-probe yearly rate of benign TCP breaks.
DEFAULT_BREAK_RATE_PER_YEAR = 26.0

#: Per-probe yearly rate of probe-only reboots.  Calibrated so roughly half
#: the probes see none all year, matching Table 6's P(ac|pw)=1 column.
DEFAULT_PROBE_REBOOT_RATE_PER_YEAR = 0.7

_YEAR_SECONDS = 365.0 * DAY


def generate_interruptions(rng: random.Random, spec: IspSpec, start: float,
                           end: float,
                           break_rate_per_year: float =
                           DEFAULT_BREAK_RATE_PER_YEAR,
                           probe_reboot_rate_per_year: float =
                           DEFAULT_PROBE_REBOOT_RATE_PER_YEAR
                           ) -> list[Interruption]:
    """Sample this CPE's year of interruptions, sorted and disjoint.

    Overlapping or too-close events are resolved by keeping the earlier
    one — a second failure during an ongoing outage is invisible anyway.
    """
    candidates: list[Interruption] = []
    for kind, rate, median, sigma in (
        (InterruptionKind.POWER, spec.power_outages_per_year,
         spec.power_duration_median, spec.power_duration_sigma),
        (InterruptionKind.NETWORK, spec.network_outages_per_year,
         spec.network_duration_median, spec.network_duration_sigma),
    ):
        for arrival in poisson_arrivals(rng, rate / _YEAR_SECONDS, start, end):
            duration = max(
                MIN_OUTAGE_DURATION,
                lognormal_from_median(rng, median, sigma),
            )
            candidates.append(
                Interruption(kind, arrival, min(arrival + duration, end))
            )
    break_rate = break_rate_per_year / _YEAR_SECONDS
    for arrival in poisson_arrivals(rng, break_rate, start, end):
        candidates.append(Interruption(InterruptionKind.BREAK, arrival, arrival))
    reboot_rate = probe_reboot_rate_per_year / _YEAR_SECONDS
    for arrival in poisson_arrivals(rng, reboot_rate, start, end):
        candidates.append(
            Interruption(InterruptionKind.PROBE_REBOOT, arrival, arrival))

    candidates.sort(key=lambda event: event.start)
    accepted: list[Interruption] = []
    horizon = start
    for event in candidates:
        if event.start < horizon:
            continue
        accepted.append(event)
        horizon = event.end + MIN_SEPARATION
    return accepted


def inject_event(events: list[Interruption],
                 event: Interruption) -> list[Interruption]:
    """Insert a mandatory event, evicting neighbours it would collide with.

    Used for administrative renumbering, which happens on the ISP's
    schedule regardless of the CPE's outage history.
    """
    kept = [e for e in events
            if e.end + MIN_SEPARATION <= event.start
            or e.start >= event.end + MIN_SEPARATION]
    kept.append(event)
    kept.sort(key=lambda e: e.start)
    return kept
