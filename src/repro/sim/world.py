"""World builder: run a scenario and emit the three Atlas datasets.

:func:`build_world` stands up every ISP plant, deploys regular and
confounder probe populations, walks each probe through the year with
:class:`~repro.sim.timeline.ProbeSimulator`, and packages the results as
the datasets the analysis pipeline consumes — plus per-probe ground truth
so integration tests can check the pipeline recovers what was configured.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field

from repro.atlas.archive import ProbeArchive, continent_of
from repro.atlas.connlog import ConnectionLog
from repro.atlas.kroot import KRootDataset, KRootSeries
from repro.atlas.sosuptime import UptimeDataset
from repro.atlas.types import ProbeMeta, ProbeVersion
from repro.isp.policy import DhcpPlant, PppPlant, build_plant
from repro.isp.pool import AddressPool, PoolPolicy
from repro.isp.spec import AccessTechnology, IspSpec
from repro.net.bgpgen import AddressSpaceAllocator, AddressSpacePlan
from repro.net.ipv4 import IPv4Address, IPv4Prefix
from repro.net.pfx2as import AsMapping, IpToAsDataset
from repro.sim.outages import (
    Interruption,
    InterruptionKind,
    generate_interruptions,
    inject_event,
)
from repro.sim.scenario import ScenarioConfig
from repro.sim.timeline import ProbeOutput, ProbeSimulator, Segment
from repro.util import timeutil
from repro.util.rng import substream, weighted_choice

#: The RIPE NCC's AS, used for the testing-address mapping.
RIPE_NCC_ASN = 3333
RIPE_TESTING_PREFIX = IPv4Prefix.parse("193.0.0.0/21")


class ProbeRole(enum.Enum):
    """Why a probe is in the scenario (ground truth for tests)."""

    DYNAMIC = "dynamic"
    MOVER = "mover"
    STATIC = "static"
    DUAL_STACK = "dual-stack"
    IPV6_ONLY = "ipv6-only"
    TAGGED = "tagged"
    MULTIHOMED = "multihomed"
    TESTING = "testing"


@dataclass(frozen=True)
class ProbeTruth:
    """Ground truth about one simulated probe."""

    probe_id: int
    role: ProbeRole
    asns: tuple[int, ...]
    isp_names: tuple[str, ...]
    version: ProbeVersion
    fate_sharing: bool
    true_change_count: int


@dataclass
class WorldData:
    """The simulated equivalents of the paper's input datasets."""

    config: ScenarioConfig
    archive: ProbeArchive
    connlog: ConnectionLog
    kroot: KRootDataset
    uptime: UptimeDataset
    ip2as: IpToAsDataset
    truth: dict[int, ProbeTruth] = field(default_factory=dict)


def _static_specs() -> list[IspSpec]:
    """Internal 'static assignment' ISPs hosting never-changing probes."""
    plan = AddressSpacePlan(num_prefixes=2, prefix_length=20,
                            slash16_groups=1, slash8_groups=1)
    countries = ("US", "DE", "JP", "AU", "BR", "ZA")
    return [
        IspSpec(
            name="Static-%s" % country, asn=65000 + index, country=country,
            access=AccessTechnology.DHCP, plan=plan,
            pool_policy=PoolPolicy(),
            lease_duration=timeutil.DAY,
            churn_rate_per_hour=0.0, dhcp_change_prob=0.0,
        )
        for index, country in enumerate(countries)
    ]


class _WorldBuilder:
    """Stateful assembly of one world; use :func:`build_world`."""

    def __init__(self, config: ScenarioConfig) -> None:
        self.config = config
        self.allocator = AddressSpaceAllocator(seed=config.seed)
        self.archive = ProbeArchive()
        self.connlog = ConnectionLog()
        self.kroot = KRootDataset()
        self.uptime = UptimeDataset()
        self.truth: dict[int, ProbeTruth] = {}
        self._next_probe_id = 1001
        self._plants: dict[int, DhcpPlant | PppPlant] = {}
        self._specs: dict[int, IspSpec] = {}
        self._pools: dict[int, AddressPool] = {}
        self._fixed_rng = substream(config.seed, "world", "fixed-addresses")

    # -- plants ------------------------------------------------------------

    def add_isp(self, spec: IspSpec) -> None:
        prefixes = self.allocator.allocate(spec.asn, spec.plan)
        pool = AddressPool(prefixes, spec.pool_policy)
        if spec.admin_renumber_day is not None:
            # The final prefix is the migration target: allocation starts
            # out restricted to the others and flips on the admin day.
            pool.schedule_allocation(self.config.start, prefixes[:-1])
            pool.schedule_allocation(self._admin_time(spec), prefixes[-1:])
        self._plants[spec.asn] = build_plant(spec, pool, self.config.seed)
        self._specs[spec.asn] = spec
        self._pools[spec.asn] = pool

    def _admin_time(self, spec: IspSpec) -> float:
        """Instant of the ISP's administrative renumbering.

        ``admin_renumber_day`` counts days from the scenario start (equal
        to day-of-year for the default full-2015 window).
        """
        assert spec.admin_renumber_day is not None
        return self.config.start + (spec.admin_renumber_day - 1) * timeutil.DAY

    def plant(self, asn: int) -> DhcpPlant | PppPlant:
        return self._plants[asn]

    # -- probes ------------------------------------------------------------

    def _new_probe_id(self) -> int:
        probe_id = self._next_probe_id
        self._next_probe_id += 1
        return probe_id

    def _draw_version(self, rng: random.Random) -> ProbeVersion:
        return weighted_choice(
            rng, [ProbeVersion.V1, ProbeVersion.V2, ProbeVersion.V3],
            list(self.config.version_weights))

    def deploy_probe(self, asns: list[int], role: ProbeRole,
                     family_mode: str = "v4",
                     fixed_address: IPv4Address | None = None,
                     testing_first: bool = False,
                     tags: tuple[str, ...] = (),
                     switch_time: float | None = None) -> int:
        """Create one probe, simulate its year, and record its datasets."""
        config = self.config
        probe_id = self._new_probe_id()
        rng = substream(config.seed, "probe", probe_id)
        version = self._draw_version(rng)
        fate_sharing = rng.random() < config.fate_sharing_prob
        home_spec = self._specs[asns[0]]

        # Probes go live at staggered times (real deployments trickle in);
        # this also spreads free-running periodic cuts across the day.
        window = config.end - config.start
        first_start = config.start + rng.uniform(
            0, min(2 * timeutil.DAY, window / 4))
        if len(asns) == 1:
            bounds = [(first_start, config.end)]
        else:
            if switch_time is None:
                switch_time = rng.uniform(
                    config.start + 0.25 * window,
                    config.start + 0.75 * window)
            bounds = [(first_start, switch_time),
                      (switch_time + 2 * timeutil.HOUR, config.end)]

        segments: list[Segment] = []
        interruptions = []
        for (seg_start, seg_end), asn in zip(bounds, asns):
            spec = self._specs[asn]
            plant = None if family_mode == "v6" else self._plants[asn]
            segments.append(Segment(plant, "cpe-%d-%d" % (probe_id, asn),
                                    seg_start, seg_end))
            events = generate_interruptions(
                substream(config.seed, "probe", probe_id, "outages", asn),
                spec, seg_start, seg_end,
                break_rate_per_year=config.break_rate_per_year,
                probe_reboot_rate_per_year=config.probe_reboot_rate_per_year)
            if spec.admin_renumber_day is not None and plant is not None:
                admin_at = self._admin_time(spec) + rng.uniform(
                    0, 2 * timeutil.HOUR)
                if seg_start < admin_at < seg_end:
                    events = inject_event(
                        events,
                        Interruption(InterruptionKind.ADMIN, admin_at,
                                     admin_at))
            interruptions.append(events)

        simulator = ProbeSimulator(
            probe_id, rng, interruptions, segments,
            version=version, fate_sharing=fate_sharing,
            frag_reboot_prob=config.frag_reboot_prob,
            firmware_campaigns=config.firmware_campaigns,
            family_mode=family_mode,
            ipv6_address=("2001:db8:%x::1" % probe_id
                          if family_mode in ("dual", "v6") else None),
            fixed_address=fixed_address,
            testing_first=testing_first,
        )
        output = simulator.run()
        self._record(probe_id, home_spec, version, tags, output,
                     observed_start=bounds[0][0])
        self.truth[probe_id] = ProbeTruth(
            probe_id, role, tuple(asns),
            tuple(self._specs[asn].name for asn in asns),
            version, fate_sharing, len(output.true_changes))
        return probe_id

    def _record(self, probe_id: int, home_spec: IspSpec,
                version: ProbeVersion, tags: tuple[str, ...],
                output: ProbeOutput,
                observed_start: float | None = None) -> None:
        config = self.config
        self.archive.add(ProbeMeta(
            probe_id, home_spec.country, continent_of(home_spec.country),
            version, tags))
        for entry in output.entries:
            self.connlog.add(entry)
        for record in output.uptime_records:
            self.uptime.add(record)
        self.kroot.add_series(KRootSeries(
            probe_id,
            config.start if observed_start is None else observed_start,
            config.end,
            power_off=output.power_off,
            network_down=output.network_down))

    def allocate_fixed_address(self, asn: int) -> IPv4Address:
        """A long-held secondary address for multihomed probes."""
        return self._pools[asn].allocate(self._fixed_rng)

    # -- finishing ----------------------------------------------------------

    def build_ip2as(self) -> IpToAsDataset:
        dataset = self.allocator.build_dataset(self.config.start,
                                               self.config.end)
        testing = AsMapping(RIPE_TESTING_PREFIX, RIPE_NCC_ASN)
        for year, month in dataset.months():
            dataset.snapshot_for(timeutil.epoch(year, month, 1)).add(testing)
        return dataset


def build_world(config: ScenarioConfig) -> WorldData:
    """Run the whole scenario and return its datasets plus ground truth."""
    builder = _WorldBuilder(config)
    for profile in config.profiles:
        builder.add_isp(profile.spec)
    static_specs = _static_specs()
    for spec in static_specs:
        builder.add_isp(spec)

    regular_asns = [p.spec.asn for p in config.profiles]
    static_asns = [s.asn for s in static_specs]
    # Confounders and movers live in cheap-to-simulate ISPs: the static
    # ASes plus the scenario's DHCP profiles.
    dhcp_asns = [p.spec.asn for p in config.profiles
                 if p.spec.access is AccessTechnology.DHCP] or regular_asns
    host_asns = static_asns + dhcp_asns

    # Regular dynamic populations.
    for profile in config.profiles:
        for _ in range(profile.probes):
            builder.deploy_probe([profile.spec.asn], ProbeRole.DYNAMIC)

    pick = substream(config.seed, "world", "assignment")
    for _ in range(config.static_probes):
        builder.deploy_probe([pick.choice(static_asns)], ProbeRole.STATIC)
    for _ in range(config.dual_stack_probes):
        builder.deploy_probe([pick.choice(host_asns)], ProbeRole.DUAL_STACK,
                             family_mode="dual")
    for _ in range(config.ipv6_probes):
        builder.deploy_probe([pick.choice(host_asns)], ProbeRole.IPV6_ONLY,
                             family_mode="v6")
    tag_names = ("multihomed", "datacentre", "core")
    for index in range(config.tagged_probes):
        fixed = None
        if index % 2 == 0:  # about half the tagged probes also alternate
            fixed = builder.allocate_fixed_address(pick.choice(static_asns))
        builder.deploy_probe(
            [pick.choice(host_asns)], ProbeRole.TAGGED,
            fixed_address=fixed, tags=(tag_names[index % len(tag_names)],))
    for _ in range(config.multihomed_probes):
        fixed = builder.allocate_fixed_address(pick.choice(static_asns))
        builder.deploy_probe([pick.choice(dhcp_asns)], ProbeRole.MULTIHOMED,
                             fixed_address=fixed)
    for _ in range(config.testing_only_probes):
        builder.deploy_probe([pick.choice(static_asns)], ProbeRole.TESTING,
                             testing_first=True)
    for _ in range(config.mover_probes):
        origin, target = pick.sample(host_asns, 2)
        builder.deploy_probe([origin, target], ProbeRole.MOVER)

    return WorldData(
        config=config,
        archive=builder.archive,
        connlog=builder.connlog,
        kroot=builder.kroot,
        uptime=builder.uptime,
        ip2as=builder.build_ip2as(),
        truth=builder.truth,
    )
