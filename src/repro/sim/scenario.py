"""Scenario configuration for the simulated RIPE Atlas world.

A scenario pins down the ISP population, the confounder probe populations
that Section 3.2's filtering must remove (dual-stack, IPv6-only, tagged,
behaviourally multihomed, testing-address, cross-AS movers), probe hardware
demographics, and the firmware campaign dates that produce Figure 6's
reboot spikes.

Confounder counts default to the paper's Table 2 proportions relative to
the analyzable population.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SimulationError
from repro.isp.profiles import IspProfile, all_profiles
from repro.util import timeutil

#: Firmware distribution days the paper observed in 2015 (Section 5.2).
FIRMWARE_CAMPAIGN_DATES: tuple[float, ...] = (
    timeutil.epoch(2015, 1, 25),
    timeutil.epoch(2015, 3, 23),
    timeutil.epoch(2015, 4, 14),
    timeutil.epoch(2015, 7, 6),
    timeutil.epoch(2015, 10, 5),
)

#: Table 2 population ratios relative to the analyzable probe count (3,038),
#: except movers, which are expressed relative to the single-AS analyzable
#: population (2,272) they are added on top of.
_STATIC_RATIO = 3073 / 3038
_DUAL_STACK_RATIO = 3728 / 3038
_IPV6_RATIO = 237 / 3038
_TAGGED_RATIO = 174 / 3038
_MULTIHOMED_RATIO = 511 / 3038
_TESTING_RATIO = 216 / 3038
_MOVER_RATIO = 766 / 2272


@dataclass(frozen=True)
class ScenarioConfig:
    """Everything needed to build and run one simulated world."""

    profiles: tuple[IspProfile, ...]
    seed: int = 2015
    start: float = timeutil.YEAR_2015_START
    end: float = timeutil.YEAR_2015_END

    # Confounder populations (Section 3.2 / Table 2).
    static_probes: int = 0
    dual_stack_probes: int = 0
    ipv6_probes: int = 0
    tagged_probes: int = 0
    multihomed_probes: int = 0
    testing_only_probes: int = 0
    mover_probes: int = 0

    # Probe hardware demographics (Section 5).
    version_weights: tuple[float, float, float] = (0.10, 0.15, 0.75)
    #: Probability a probe is USB-powered from the CPE (power fate sharing).
    fate_sharing_prob: float = 0.9
    #: Probability a v1/v2 probe reboots when making a new TCP connection.
    frag_reboot_prob: float = 0.35
    #: Yearly rate of benign TCP breaks per probe.
    break_rate_per_year: float = 26.0
    #: Yearly rate of probe-only reboots (false-positive power outages).
    probe_reboot_rate_per_year: float = 0.7

    firmware_campaigns: tuple[float, ...] = field(
        default=FIRMWARE_CAMPAIGN_DATES)

    def __post_init__(self) -> None:
        if not self.profiles:
            raise SimulationError("scenario needs at least one ISP profile")
        if self.end <= self.start:
            raise SimulationError("scenario window is empty")
        for name in ("static_probes", "dual_stack_probes", "ipv6_probes",
                     "tagged_probes", "multihomed_probes",
                     "testing_only_probes", "mover_probes"):
            if getattr(self, name) < 0:
                raise SimulationError("%s must be non-negative" % name)
        if len(self.version_weights) != 3 or sum(self.version_weights) <= 0:
            raise SimulationError("version_weights must be 3 positive weights")
        for name in ("fate_sharing_prob", "frag_reboot_prob"):
            if not 0.0 <= getattr(self, name) <= 1.0:
                raise SimulationError("%s must be in [0, 1]" % name)

    @property
    def dynamic_probe_count(self) -> int:
        """Probes deployed in regular ISP populations."""
        return sum(profile.probes for profile in self.profiles)

    @property
    def total_probe_count(self) -> int:
        """All probes including confounders."""
        return (self.dynamic_probe_count + self.static_probes
                + self.dual_stack_probes + self.ipv6_probes
                + self.tagged_probes + self.multihomed_probes
                + self.testing_only_probes + self.mover_probes)


def _scaled(count: int, scale: float) -> int:
    return max(1, round(count * scale))


def paper_scenario(scale: float = 1.0, seed: int = 2015) -> ScenarioConfig:
    """The default year-2015 world mirroring the paper's populations.

    ``scale`` shrinks every population proportionally for quick runs; the
    analyzable population at scale 1.0 is roughly 900 probes (the paper's
    3,038 scaled down ~3x to keep simulation wall-clock reasonable), with
    confounders kept at the paper's Table 2 proportions.
    """
    if scale <= 0:
        raise SimulationError("scale must be positive")
    profiles = tuple(
        IspProfile(profile.spec, _scaled(profile.probes, scale))
        for profile in all_profiles()
    )
    regular = sum(profile.probes for profile in profiles)
    movers = max(1, round(regular * _MOVER_RATIO))
    analyzable = regular + movers
    return ScenarioConfig(
        profiles=profiles,
        seed=seed,
        static_probes=round(analyzable * _STATIC_RATIO),
        dual_stack_probes=round(analyzable * _DUAL_STACK_RATIO),
        ipv6_probes=round(analyzable * _IPV6_RATIO),
        tagged_probes=round(analyzable * _TAGGED_RATIO),
        multihomed_probes=round(analyzable * _MULTIHOMED_RATIO),
        testing_only_probes=round(analyzable * _TESTING_RATIO),
        mover_probes=movers,
    )
