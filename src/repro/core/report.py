"""Text rendering of the paper's tables and figure series.

Benchmarks and examples call these to print rows directly comparable to
the paper; everything renders through :mod:`repro.util.tables`.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.core.conditional import OutageRenumberingRow
from repro.core.geography import GroupDurations
from repro.core.outage_buckets import DurationBucket
from repro.core.periodicity import PeriodicityRow
from repro.core.prefixes import PrefixChangeRow
from repro.util.stats import CdfPoint, cdf_fraction_at
from repro.util.tables import percent, render_table
from repro.util.timeutil import HOUR

#: Duration grid (hours) used when rendering CDF series as rows.
CDF_GRID_HOURS = (1, 6, 12, 24, 72, 168, 336, 720, 1440)


def render_table2(rows: Sequence[tuple[str, int]]) -> str:
    """Table 2: probe filtering summary."""
    return render_table(["Category", "Probes"], list(rows),
                        title="Table 2: probe filtering")


def render_table5(rows: Sequence[PeriodicityRow],
                  all_rows: Sequence[PeriodicityRow] = ()) -> str:
    """Table 5: periodic renumbering per AS."""
    body = []
    for row in list(all_rows) + list(rows):
        body.append([
            row.as_name, row.asn if row.asn is not None else "-",
            row.country or "-", "%.0f" % row.period_hours,
            row.n_changed, row.n_periodic,
            percent(row.pct_over_50), percent(row.pct_over_75),
            percent(row.pct_max_le_d), percent(row.pct_harmonic),
        ])
    return render_table(
        ["AS", "ASN", "Country", "d(h)", "N", "f>0.25", "f>0.5",
         "f>0.75", "MAX<=d", "Harmonic"],
        body, title="Table 5: periodic renumbering")


def render_table6(rows: Sequence[OutageRenumberingRow]) -> str:
    """Table 6: renumbering upon outages per AS."""
    body = [[row.as_name, row.asn, row.country or "-", row.n,
             percent(row.pct_network_over_80), percent(row.pct_network_eq_1),
             percent(row.pct_power_over_80), percent(row.pct_power_eq_1)]
            for row in rows]
    return render_table(
        ["AS", "ASN", "Country", "N", "P(ac|nw)>0.8", "P(ac|nw)=1",
         "P(ac|pw)>0.8", "P(ac|pw)=1"],
        body, title="Table 6: address changes upon outages")


def render_table7(overall: PrefixChangeRow,
                  rows: Sequence[PrefixChangeRow]) -> str:
    """Table 7: address changes across prefixes."""
    body = []
    for row in [overall] + list(rows):
        body.append([
            row.as_name, row.asn if row.asn is not None else "-",
            row.country or "-", row.total_changes,
            row.diff_bgp, percent(row.pct_bgp),
            row.diff_slash16, percent(row.pct_slash16),
            row.diff_slash8, percent(row.pct_slash8),
        ])
    return render_table(
        ["AS", "ASN", "Country", "Changes", "Diff BGP", "%", "Diff /16",
         "%", "Diff /8", "%"],
        body, title="Table 7: address changes across prefixes")


def render_cdf_series(series: Mapping[str, Sequence[CdfPoint]],
                      grid_hours: Sequence[float] = CDF_GRID_HOURS,
                      title: str = "") -> str:
    """Render CDF curves as one row per group, sampled on a duration grid."""
    headers = ["Group"] + ["<=%gh" % h for h in grid_hours]
    body = []
    for label, points in series.items():
        body.append([label] + [
            "%.2f" % cdf_fraction_at(points, h * HOUR) for h in grid_hours
        ])
    return render_table(headers, body, title=title)


def render_probability_cdfs(series: Mapping[str, Sequence[CdfPoint]],
                            title: str = "") -> str:
    """Render P(ac|outage) CDFs sampled at fixed probability points."""
    grid = (0.0, 0.2, 0.4, 0.6, 0.8, 0.99)
    headers = ["AS"] + ["P<=%.2f" % p for p in grid]
    body = []
    for label, points in series.items():
        body.append([label] + [
            "%.2f" % cdf_fraction_at(points, p) for p in grid
        ])
    return render_table(headers, body, title=title)


def render_hour_histogram(counts: Sequence[int], title: str = "") -> str:
    """Figures 4-5: address changes per GMT hour."""
    body = [[hour, counts[hour]] for hour in range(24)]
    return render_table(["Hour (GMT)", "Address changes"], body, title=title)


def render_figure6(day_counts: Mapping[int, int],
                   firmware_days: Sequence[int]) -> str:
    """Figure 6: reboot spikes and inferred firmware days."""
    spikes = sorted(day_counts.items(), key=lambda kv: -kv[1])[:10]
    body = [[day, count, "firmware" if day in firmware_days else ""]
            for day, count in sorted(spikes)]
    table = render_table(["Day of year", "Rebooted probes", "Inferred"],
                         body, title="Figure 6: top reboot days")
    return table + "\nInferred firmware days: %s" % list(firmware_days)


def render_figure9(buckets: Sequence[DurationBucket],
                   title: str = "") -> str:
    """Figure 9: renumbering likelihood per outage-duration bucket."""
    body = [[b.label, b.total, b.renumbered,
             percent(b.renumbered_fraction)] for b in buckets]
    return render_table(["Outage duration", "Outages", "Renumbered", "%"],
                        body, title=title)


def render_group_durations(groups: Sequence[GroupDurations],
                           title: str = "") -> str:
    """Figures 1/3 legend info plus sampled CDFs."""
    series = {("%s (%.1fy)" % (g.label, g.total_years)): g.cdf()
              for g in groups}
    return render_cdf_series(series, title=title)
