"""Periodic-renumbering classification (Sections 4.3-4.4, Table 5).

A probe is *periodic* at duration ``d`` when its total time fraction at
``d`` exceeds 0.25 (the paper's threshold, chosen so outage-truncated and
occasionally skipped cycles don't hide the period).  An AS appears in
Table 5 when at least five of its probes yielded an address change and at
least three are periodic at some common ``d``.

Persistence columns report how many of the periodic probes have
``f_d > 0.5`` / ``f_d > 0.75``; ``MAX <= d`` reports how many never held
an address longer than ``d`` (with 5% slack); ``Harmonic`` loosens that to
durations near integer multiples of ``d`` — a skipped renumbering or a
by-chance re-grant of the same address.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.core.timefraction import (
    DEFAULT_BIN,
    bin_duration,
    binned_time,
    total_time_fraction,
)
from repro.util.stats import fraction
from repro.util.timeutil import HOUR

PERIODIC_THRESHOLD = 0.25
#: Ignore candidate periods below this; the paper's shortest is 12 hours,
#: and shorter modes come from outage clustering, not ISP schedules.
MIN_PERIOD = 6 * HOUR
#: A probe needs at least this many measured durations before a period is
#: inferred: with one or two samples, a total time fraction above any
#: threshold is vacuous (a single duration always has f = 1).
MIN_DURATIONS = 3
#: Slack applied to d for the MAX <= d and harmonic columns (the paper
#: adjusted d to d + 5%).
DURATION_SLACK = 1.05


@dataclass(frozen=True)
class ProbePeriodicity:
    """Per-probe periodicity verdict."""

    probe_id: int
    period: float | None
    fraction_at_period: float

    @property
    def is_periodic(self) -> bool:
        """True when a period with f_d above threshold was found."""
        return self.period is not None


def detect_probe_period(durations: Sequence[float],
                        threshold: float = PERIODIC_THRESHOLD,
                        bin_width: float = DEFAULT_BIN,
                        min_period: float = MIN_PERIOD,
                        min_durations: int = MIN_DURATIONS
                        ) -> tuple[float, float] | None:
    """Find the duration bin holding more than ``threshold`` of total time.

    Returns ``(d, f_d)`` for the strongest qualifying bin, or None.
    Probes with fewer than ``min_durations`` measured durations are never
    periodic — the fraction is statistically vacuous.
    """
    if len(durations) < min_durations:
        return None
    total = sum(durations)
    if total == 0:
        return None
    best: tuple[float, float] | None = None
    for d, time_at in binned_time(durations, bin_width).items():
        if d < min_period:
            continue
        f = time_at / total
        if f > threshold and (best is None or f > best[1]):
            best = (d, f)
    return best


def classify_probe(probe_id: int, durations: Sequence[float],
                   threshold: float = PERIODIC_THRESHOLD,
                   bin_width: float = DEFAULT_BIN) -> ProbePeriodicity:
    """Classify one probe; non-periodic probes carry period None."""
    found = detect_probe_period(durations, threshold, bin_width)
    if found is None:
        return ProbePeriodicity(probe_id, None, 0.0)
    return ProbePeriodicity(probe_id, found[0], found[1])


def max_within(durations: Sequence[float], period: float,
               slack: float = DURATION_SLACK) -> bool:
    """True when no duration exceeds ``period * slack`` (MAX <= d column)."""
    return all(duration <= period * slack for duration in durations)


def is_harmonic(durations: Sequence[float], period: float,
                slack: float = DURATION_SLACK,
                rel_tol: float = 0.05) -> bool:
    """True when every duration is <= d or near an integer multiple of d."""
    for duration in durations:
        if duration <= period * slack:
            continue
        multiple = round(duration / period)
        if multiple < 1 or abs(duration - multiple * period) > \
                rel_tol * multiple * period:
            return False
    return True


@dataclass(frozen=True)
class PeriodicityRow:
    """One Table 5 row: an (AS, period) pair and its probe statistics."""

    as_name: str
    asn: int | None
    country: str
    period: float
    n_changed: int
    n_periodic: int
    pct_over_50: float
    pct_over_75: float
    pct_max_le_d: float
    pct_harmonic: float

    @property
    def period_hours(self) -> float:
        """The period in hours, as Table 5 prints it."""
        return self.period / HOUR


def _row_for_group(as_name: str, asn: int | None, country: str,
                   period: float, n_changed: int,
                   member_durations: Sequence[Sequence[float]],
                   bin_width: float) -> PeriodicityRow:
    over_50 = over_75 = max_le = harmonic = 0
    for durations in member_durations:
        f = total_time_fraction(durations, period, bin_width)
        if f > 0.5:
            over_50 += 1
        if f > 0.75:
            over_75 += 1
        if max_within(durations, period):
            max_le += 1
        if is_harmonic(durations, period):
            harmonic += 1
    n_periodic = len(member_durations)
    return PeriodicityRow(
        as_name=as_name, asn=asn, country=country, period=period,
        n_changed=n_changed, n_periodic=n_periodic,
        pct_over_50=fraction(over_50, n_periodic),
        pct_over_75=fraction(over_75, n_periodic),
        pct_max_le_d=fraction(max_le, n_periodic),
        pct_harmonic=fraction(harmonic, n_periodic),
    )


def as_periodicity_table(durations_by_probe: Mapping[int, Sequence[float]],
                         asn_by_probe: Mapping[int, int],
                         as_names: Mapping[int, str],
                         as_countries: Mapping[int, str] | None = None,
                         min_probes: int = 5,
                         min_periodic: int = 3,
                         threshold: float = PERIODIC_THRESHOLD,
                         bin_width: float = DEFAULT_BIN
                         ) -> list[PeriodicityRow]:
    """Build Table 5: one row per (AS, period) with enough periodic probes.

    ``durations_by_probe`` should contain only probes with at least one
    known duration (i.e. at least two address changes).
    """
    probes_by_asn: dict[int, list[int]] = defaultdict(list)
    for probe_id, asn in asn_by_probe.items():
        if probe_id in durations_by_probe:
            probes_by_asn[asn].append(probe_id)

    rows: list[PeriodicityRow] = []
    for asn, probe_ids in probes_by_asn.items():
        changed = [pid for pid in probe_ids
                   if len(durations_by_probe[pid]) >= 1]
        if len(changed) < min_probes:
            continue
        by_period: dict[float, list[int]] = defaultdict(list)
        for pid in changed:
            verdict = classify_probe(pid, durations_by_probe[pid],
                                     threshold, bin_width)
            if verdict.is_periodic:
                by_period[verdict.period].append(pid)
        for period, members in by_period.items():
            if len(members) < min_periodic:
                continue
            rows.append(_row_for_group(
                as_names.get(asn, "AS%d" % asn), asn,
                (as_countries or {}).get(asn, ""),
                period, len(changed),
                [durations_by_probe[pid] for pid in members], bin_width))
    rows.sort(key=lambda row: -row.n_periodic)
    return rows


def all_probes_row(durations_by_probe: Mapping[int, Sequence[float]],
                   period: float,
                   threshold: float = PERIODIC_THRESHOLD,
                   bin_width: float = DEFAULT_BIN) -> PeriodicityRow:
    """The Table 5 'All' summary row for one period (24 h and 168 h)."""
    target = bin_duration(period, bin_width)
    members = []
    for pid, durations in durations_by_probe.items():
        verdict = classify_probe(pid, durations, threshold, bin_width)
        if verdict.is_periodic and verdict.period == target:
            members.append(durations)
    return _row_for_group("All", None, "", target,
                          len(durations_by_probe), members, bin_width)
