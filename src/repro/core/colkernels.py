"""Vectorized stage kernels over the columnar Atlas views.

Array-backed replacements for the hot per-probe kernels in
:mod:`repro.core.pipeline`: probe classification (stage ``filter``,
including change extraction and the batched IP-to-AS lookups), span
extraction (stage ``spans``), uptime-reset detection (stage ``reboots``)
and gap association (stage ``gaps``).  Each function is a drop-in for
the corresponding record-kernel and must produce **bit-identical**
objects — the ``results_digest`` equivalence suite and the differential
tests in ``tests/runtime`` pin this, and the legacy kernels remain
available (``--legacy-kernels``) as the oracle.

Exactness rules the implementations follow:

* every float that reaches a result dataclass is taken from the
  columns via ``tolist()`` (bit-identical to the source records) or
  computed with the same scalar IEEE operation the legacy kernel used
  (elementwise float64 add/sub equals the CPython scalar op);
* order-sensitive reductions (the 30-day connected-time threshold)
  use sequential ``sum`` over native floats, never pairwise numpy
  summation;
* numpy scalars never escape: indexes and values are converted with
  ``int()``/``tolist()`` before constructing result objects, so
  ``repr``-canonicalized digests cannot observe the backend.

The gap kernel avoids materializing ping records entirely: a
:class:`KRootOutageIndex` enumerates only the *all-lost* ticks of a
probe's generative series (the overwhelming majority of gaps touch
none, and classify as NONE straight from two ``searchsorted`` calls);
the few gaps near an outage or reboot fall back to an exact per-gap
path that reuses the legacy LTS-run rules and reboot bracketing.
"""

from __future__ import annotations

from typing import Sequence

from repro.atlas.columnar import ColumnarConnlog, ColumnarUptime
from repro.atlas.kroot import DEFAULT_CADENCE, HEALTHY_LTS, KRootSeries
from repro.core import association
from repro.core.association import WINDOW_MARGIN, GapCause, GapEvent
from repro.core.changes import AddressChange, AddressSpan
from repro.core.filtering import (
    MULTIHOMED_MIN_RUNS,
    ProbeCategory,
    ProbeVerdict,
)
from repro.core.reboots import Reboot
from repro.net.ipv4 import TESTING_ADDRESS
from repro.net.pfx2as import UNROUTED, IpToAsDataset, Pfx2AsSnapshot
from repro.util import timeutil
from repro.util.colpack import HAVE_NUMPY

if HAVE_NUMPY:
    import numpy as np

_TESTING_VALUE = TESTING_ADDRESS.value


def _require_numpy() -> None:
    if not HAVE_NUMPY:
        raise RuntimeError("columnar kernels require numpy; gate callers "
                           "on repro.util.colpack.HAVE_NUMPY")


def _strip_offset(col: ColumnarConnlog, lo: int, hi: int) -> int:
    """Start offset after the testing-entry strip (Section 3.3).

    The strip is a pure function of the raw entries — first entry is
    IPv4 and carries the RIPE testing address — so the spans and gaps
    kernels recompute it from the columns instead of needing the
    stripped entry lists a fat ``FilterReport`` would carry.
    """
    if (hi > lo and int(col.v6[lo]) == 0
            and int(col.addrs[lo]) == _TESTING_VALUE):
        return lo + 1
    return lo


# -- batched IP-to-AS lookups -------------------------------------------------

def _batch_origin_asns(ip2as: IpToAsDataset, addr_values: Sequence[int],
                       times: Sequence[float]):
    """Vectorized :meth:`IpToAsDataset.origin_asn` over parallel lists.

    Returns an int64 array with :data:`UNROUTED` standing in for None.
    Lookups are grouped by calendar month (the paper's snapshot
    granularity); each group resolves its snapshot through the normal
    ``snapshot_for`` path, so missing-month and fallback semantics are
    exactly the per-call dataset's.
    """
    if not addr_values:
        return np.empty(0, dtype=np.int64)
    addrs = np.asarray(addr_values, dtype=np.int64)
    when = np.asarray(times, dtype=np.float64)
    out = np.empty(len(addrs), dtype=np.int64)
    last_key = timeutil.month_of(float(when.max()))
    keys = [timeutil.month_of(float(when.min()))]
    while keys[-1] < last_key:
        year, month = keys[-1]
        keys.append((year + 1, 1) if month == 12 else (year, month + 1))
    bounds = np.asarray(
        [timeutil.epoch(year, month, 1) for year, month in keys],
        dtype=np.float64)
    group = np.searchsorted(bounds, when, side="right") - 1
    for index in range(len(keys)):
        mask = group == index
        if not mask.any():
            continue
        snapshot = ip2as.snapshot_for(float(bounds[index]))
        stab_bounds, stab_asns = snapshot.stab_arrays()
        pos = np.searchsorted(stab_bounds, addrs[mask], side="right") - 1
        out[mask] = stab_asns[pos]
    return out


# -- stage ``filter`` ---------------------------------------------------------

def classify_probes(col: ColumnarConnlog, connlog, archive,
                    ip2as: IpToAsDataset, min_connected: float,
                    probe_ids: Sequence[int] | None = None,
                    with_entries: bool = True) -> dict[int, ProbeVerdict]:
    """Columnar :meth:`~repro.core.filtering.ProbeFilter.classify` over
    many probes, in the same precedence order.

    ``with_entries=False`` leaves ``verdict.entries`` empty (the slim
    IPC/cache form); :func:`repro.core.filtering.restore_entries` can
    rebuild them exactly from the connection log.
    """
    _require_numpy()
    if probe_ids is None:
        pids = col.probe_ids.tolist()
    else:
        pids = [int(pid) for pid in probe_ids]
    durations = col.durations_list()
    run_starts = col.run_starts()
    v6_cumsum = np.concatenate((np.zeros(1, dtype=np.int64),
                                np.cumsum(col.v6, dtype=np.int64)))
    verdicts: dict[int, ProbeVerdict] = {}
    pending: list[tuple[int, list, list]] = []
    lookup_addrs: list[int] = []
    lookup_times: list[float] = []
    for pid in pids:
        lo, hi = col.slice_of(pid)
        # Sequential native-float sum: the 30-day threshold compare must
        # see the exact value the record path's ordered sum produces.
        if sum(durations[lo:hi]) < min_connected:
            verdicts[pid] = ProbeVerdict(pid, ProbeCategory.SHORT_LIVED)
            continue
        v6_count = int(v6_cumsum[hi] - v6_cumsum[lo])
        if v6_count:
            category = (ProbeCategory.IPV6_ONLY if v6_count == hi - lo
                        else ProbeCategory.DUAL_STACK)
            verdicts[pid] = ProbeVerdict(pid, category)
            continue
        if archive.has_probe(pid) and archive.get(pid).has_filtered_tag:
            verdicts[pid] = ProbeVerdict(pid, ProbeCategory.TAGGED)
            continue
        run_values = col.addrs[lo:hi][run_starts[lo:hi]]
        if run_values.size:
            _, counts = np.unique(run_values, return_counts=True)
            if int(counts.max()) >= MULTIHOMED_MIN_RUNS:
                verdicts[pid] = ProbeVerdict(pid, ProbeCategory.MULTIHOMED)
                continue
        slo = _strip_offset(col, lo, hi)
        entries = connlog.entries(pid)
        if slo > lo:
            entries = entries[1:]
        change_at = (np.nonzero(run_starts[slo + 1:hi])[0] + 1).tolist()
        if not change_at:
            category = (ProbeCategory.TESTING_ONLY if slo > lo
                        else ProbeCategory.NEVER_CHANGED)
            verdicts[pid] = ProbeVerdict(
                pid, category, entries=entries if with_entries else [])
            continue
        changes: list[AddressChange] = []
        for at in change_at:
            previous = entries[at - 1]
            current = entries[at]
            changes.append(AddressChange(pid, previous.address,
                                         current.address, previous.end,
                                         current.start))
            lookup_addrs.append(previous.address.value)
            lookup_times.append(current.start)
            lookup_addrs.append(current.address.value)
            lookup_times.append(current.start)
        # Placeholder keeps dict order; the AS split fills it in below.
        verdicts[pid] = ProbeVerdict(pid, ProbeCategory.ANALYZABLE)
        pending.append((pid, entries, changes))

    if not pending:
        return verdicts
    asns = _batch_origin_asns(ip2as, lookup_addrs, lookup_times)
    cursor = 0
    first_addrs: list[int] = []
    first_times: list[float] = []
    resolved: list[tuple[int, list, list, list, bool]] = []
    for pid, entries, changes in pending:
        span = asns[cursor:cursor + 2 * len(changes)]
        cursor += 2 * len(changes)
        old_asns = span[0::2]
        new_asns = span[1::2]
        crossed = ((old_asns != UNROUTED) & (new_asns != UNROUTED)
                   & (old_asns != new_asns))
        multi_as = bool(crossed.any())
        within = [change for change, crossing
                  in zip(changes, crossed.tolist()) if not crossing]
        resolved.append((pid, entries, changes, within, multi_as))
        if not multi_as:
            # Analyzable probes are pure IPv4 here, so the first v4
            # entry the record kernel scans for is simply entries[0].
            first_addrs.append(entries[0].address.value)
            first_times.append(entries[0].start)
    first_asns = _batch_origin_asns(ip2as, first_addrs, first_times)
    first_cursor = 0
    for pid, entries, changes, within, multi_as in resolved:
        asn = None
        if not multi_as:
            value = int(first_asns[first_cursor])
            first_cursor += 1
            asn = None if value == UNROUTED else value
        verdicts[pid] = ProbeVerdict(
            pid, ProbeCategory.ANALYZABLE,
            entries=entries if with_entries else [],
            changes=changes, within_as_changes=within,
            multi_as=multi_as, asn=asn)
    return verdicts


# -- stage ``spans`` ----------------------------------------------------------

def probe_spans_col(col: ColumnarConnlog, connlog,
                    probe_ids: Sequence[int]
                    ) -> dict[int, tuple[list[AddressSpan], list[float]]]:
    """Columnar :func:`~repro.core.pipeline.probe_spans` over a batch.

    Only valid for analyzable (pure-IPv4) probes: runs of equal
    addresses merge into spans, the first/last span of a probe has an
    unknown boundary, interior spans are the known durations.
    """
    _require_numpy()
    run_starts = col.run_starts()
    starts = col.starts.tolist()
    ends = col.ends.tolist()
    out: dict[int, tuple[list[AddressSpan], list[float]]] = {}
    for pid in probe_ids:
        pid = int(pid)
        lo, hi = col.slice_of(pid)
        slo = _strip_offset(col, lo, hi)
        if slo >= hi:
            out[pid] = ([], [])
            continue
        entries = connlog.entries(pid)
        heads = [slo] + (np.nonzero(run_starts[slo + 1:hi])[0]
                         + (slo + 1)).tolist()
        last = len(heads) - 1
        spans: list[AddressSpan] = []
        for position, head in enumerate(heads):
            tail = (heads[position + 1] if position < last else hi) - 1
            spans.append(AddressSpan(
                probe_id=pid,
                address=entries[head - lo].address,
                start=starts[head],
                end=ends[tail],
                complete_start=position > 0,
                complete_end=position < last))
        durations = [span.end - span.start for span in spans[1:-1]]
        out[pid] = (spans, durations)
    return out


# -- stage ``reboots`` --------------------------------------------------------

def detect_reboots_col(colup: ColumnarUptime,
                       probe_ids: Sequence[int] | None = None
                       ) -> dict[int, list[Reboot]]:
    """Columnar :func:`~repro.core.reboots.detect_reboots` over a batch.

    Every requested probe gets a key (possibly an empty list), matching
    :func:`~repro.core.reboots.detect_all_reboots`.
    """
    _require_numpy()
    if probe_ids is None:
        pids = colup.probe_ids.tolist()
    else:
        pids = [int(pid) for pid in probe_ids]
    total = len(colup.uptimes)
    resets = np.zeros(total, dtype=bool)
    if total:
        resets[1:] = colup.uptimes[1:] < colup.uptimes[:-1]
        firsts = colup.offsets[:-1]
        resets[firsts[firsts < total]] = False
    # Elementwise f64 subtract matches UptimeRecord.boot_time exactly.
    boots = (colup.timestamps - colup.uptimes).tolist()
    stamps = colup.timestamps.tolist()
    out: dict[int, list[Reboot]] = {}
    for pid in pids:
        lo, hi = colup.slice_of(pid)
        hits = (np.nonzero(resets[lo:hi])[0] + lo).tolist()
        out[pid] = [Reboot(pid, boots[at], stamps[at]) for at in hits]
    return out


# -- stage ``gaps`` -----------------------------------------------------------

def _tick_of(series: KRootSeries, index: int) -> float:
    # Must mirror KRootSeries._tick_time bit-for-bit (same expression).
    return series.observed_start + series.phase + index * series.cadence


def _first_tick_at_or_after(series: KRootSeries, timestamp: float) -> int:
    index = int((timestamp - series.observed_start - series.phase)
                // series.cadence)
    if _tick_of(series, index) < timestamp:
        index += 1
    return index


def _live_tick_between(series: KRootSeries, left: int, right: int) -> bool:
    """A present (not powered-off) tick strictly between two tick indexes.

    Such a tick is a healthy reported round, which breaks an all-lost
    run; powered-off ticks are absent from the record stream and do not.
    """
    holes = series.power_off.gaps_within(_tick_of(series, left),
                                         _tick_of(series, right))
    for hole in holes:
        index = _first_tick_at_or_after(series, hole.start)
        if index <= left:
            index = left + 1
        if index < right and _tick_of(series, index) < hole.end:
            return True
    return False


class KRootOutageIndex:
    """All-lost tick timeline of one generative k-root series.

    ``times`` holds every tick the series would report as all-pings-lost
    (present, inside a network-down interval), with the LTS value the
    materialized record would carry.  ``run`` assigns consecutive ticks
    the same id exactly when no healthy reported round separates them —
    i.e. when they belong to one all-lost run of the record stream — and
    ``grow[k]`` is the earliest index of the strictly-growing LTS chain
    ending at ``k`` inside its run.  Any window ``[a, b)`` of a run is
    then strictly growing iff ``grow[b - 1] <= a``, which is all
    :func:`~repro.core.outages.detect_network_outages` needs: window
    truncation can shorten a run but never merge two (the separating
    healthy tick lies between in-window ticks, hence in-window).
    """

    __slots__ = ("times", "times_list", "lts", "run", "grow")

    def __init__(self, series: KRootSeries) -> None:
        times: list[float] = []
        ticks: list[int] = []
        lts: list[float] = []
        for outage in series.network_down:
            start = max(outage.start, series.observed_start)
            stop = min(outage.end, series.observed_end)
            if stop <= start:
                continue
            index = _first_tick_at_or_after(series, start)
            tick = _tick_of(series, index)
            while tick < stop:
                if not series.power_off.contains(tick):
                    times.append(tick)
                    ticks.append(index)
                    lts.append(HEALTHY_LTS + (tick - outage.start))
                index += 1
                tick = _tick_of(series, index)
        run = [0] * len(times)
        grow = [0] * len(times)
        for k in range(1, len(times)):
            joined = (ticks[k] == ticks[k - 1] + 1
                      or not _live_tick_between(series, ticks[k - 1],
                                                ticks[k]))
            run[k] = run[k - 1] if joined else run[k - 1] + 1
            grow[k] = (grow[k - 1] if joined and lts[k] > lts[k - 1]
                       else k)
        self.times = np.asarray(times, dtype=np.float64)
        self.times_list = times
        self.lts = lts
        self.run = run
        self.grow = grow


def _classify_slow(pid: int, gap_start: float, gap_end: float,
                   changed: bool, index: KRootOutageIndex, j0: int, j1: int,
                   series: KRootSeries, ordered_reboots: list[Reboot],
                   i0: int, i1: int) -> GapEvent:
    """Exact classification of one gap that is near lost ticks/reboots."""
    run = index.run
    a = j0
    while a < j1:
        b = a + 1
        while b < j1 and run[b] == run[a]:
            b += 1
        if index.grow[b - 1] <= a and (b - a > 1
                                       or index.lts[a] > DEFAULT_CADENCE):
            start = index.times_list[a]
            end = index.times_list[b - 1]
            if start <= gap_end and gap_start <= end:
                return GapEvent(pid, gap_start, gap_end, GapCause.NETWORK,
                                changed, end - start)
        a = b
    for reboot in ordered_reboots[i0:i1]:
        # The legacy round-bracketing scan stays the oracle for power
        # outage durations; only ~a few thousand gaps reach it.
        missing, duration = association._missing_rounds_around(
            series, reboot.time)
        if missing:
            return GapEvent(pid, gap_start, gap_end, GapCause.POWER,
                            changed, duration)
    return GapEvent(pid, gap_start, gap_end, GapCause.NONE, changed, 0.0)


def gap_events_col(col: ColumnarConnlog, kroot,
                   items: Sequence[tuple[int, list[Reboot]]]
                   ) -> dict[int, list[GapEvent]]:
    """Columnar :func:`~repro.core.pipeline.probe_gap_events` over a batch.

    ``items`` pairs each probe id with its firmware-filtered reboots,
    exactly like the gap shard payloads.  The fast path proves NONE for
    every gap whose corroboration window contains no all-lost tick and
    no reboot; the remainder go through :func:`_classify_slow`.
    """
    _require_numpy()
    out: dict[int, list[GapEvent]] = {}
    for pid, reboots in items:
        pid = int(pid)
        series = kroot.series(pid)
        lo, hi = col.slice_of(pid)
        slo = _strip_offset(col, lo, hi)
        count = hi - slo - 1
        if count < 1:
            out[pid] = []
            continue
        gap_starts = col.ends[slo:hi - 1]
        gap_ends = col.starts[slo + 1:hi]
        changed = ((col.v6[slo:hi - 1] == 0) & (col.v6[slo + 1:hi] == 0)
                   & (col.addrs[slo:hi - 1] != col.addrs[slo + 1:hi]))
        index = KRootOutageIndex(series)
        window_lo = np.maximum(gap_starts - WINDOW_MARGIN,
                               series.observed_start)
        window_hi = np.minimum(gap_ends + WINDOW_MARGIN,
                               series.observed_end)
        lost_lo = np.searchsorted(index.times, window_lo, side="left")
        lost_hi = np.searchsorted(index.times, window_hi, side="left")
        ordered = sorted(reboots, key=lambda reboot: reboot.time)
        if ordered:
            reboot_times = np.asarray(
                [reboot.time for reboot in ordered], dtype=np.float64)
            rb_lo = np.searchsorted(reboot_times,
                                    gap_starts - WINDOW_MARGIN, side="left")
            rb_hi = np.searchsorted(reboot_times, gap_ends, side="right")
        else:
            rb_lo = rb_hi = np.zeros(count, dtype=np.int64)
        quiet = ((lost_hi <= lost_lo) & (rb_hi <= rb_lo)).tolist()
        gs_list = gap_starts.tolist()
        ge_list = gap_ends.tolist()
        changed_list = changed.tolist()
        jlo = lost_lo.tolist()
        jhi = lost_hi.tolist()
        ilo = rb_lo.tolist()
        ihi = rb_hi.tolist()
        events: list[GapEvent] = []
        for k in range(count):
            if quiet[k]:
                events.append(GapEvent(pid, gs_list[k], ge_list[k],
                                       GapCause.NONE, changed_list[k], 0.0))
            else:
                events.append(_classify_slow(
                    pid, gs_list[k], ge_list[k], changed_list[k], index,
                    jlo[k], max(jlo[k], jhi[k]), series, ordered,
                    ilo[k], max(ilo[k], ihi[k])))
        out[pid] = events
    return out
