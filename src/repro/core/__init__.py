"""Analysis core: the paper's address-change attribution pipeline."""

from repro.core.association import GapCause, GapEvent, associate_probe_gaps
from repro.core.changes import (
    AddressChange,
    AddressSpan,
    extract_changes,
    extract_spans,
    known_durations,
    strip_testing_entry,
)
from repro.core.conditional import (
    OutageRenumberingRow,
    ProbeOutageStats,
    conditional_cdf_network,
    conditional_cdf_power,
    outage_renumbering_table,
    probe_outage_stats,
)
from repro.core.filtering import (
    FilterReport,
    ProbeCategory,
    ProbeFilter,
    ProbeVerdict,
    looks_multihomed,
)
from repro.core.geography import (
    GroupDurations,
    country_as_breakdown,
    durations_by_continent,
    durations_by_country,
)
from repro.core.hourofday import (
    concentration,
    hour_histogram,
    periodic_change_hours,
)
from repro.core.outage_buckets import (
    BUCKETS,
    DurationBucket,
    bucket_outages,
)
from repro.core.outages import NetworkOutage, detect_network_outages
from repro.core.periodicity import (
    PeriodicityRow,
    ProbePeriodicity,
    all_probes_row,
    as_periodicity_table,
    classify_probe,
    detect_probe_period,
    is_harmonic,
    max_within,
)
from repro.core.pipeline import (
    AnalysisPipeline,
    AnalysisResults,
    pipeline_for_bundle,
    pipeline_for_world,
)
from repro.core.prefixes import (
    PrefixChangeRow,
    PrefixComparison,
    compare_change,
    prefix_change_table,
)
from repro.core.reboots import (
    Reboot,
    detect_all_reboots,
    detect_firmware_days,
    detect_reboots,
    firmware_filtered_reboots,
    reboots_per_day,
    remove_firmware_reboots,
)
from repro.core.timefraction import (
    bin_duration,
    binned_time,
    dominant_duration,
    time_fraction_cdf,
    total_time_fraction,
)

__all__ = [
    "AddressChange",
    "AddressSpan",
    "AnalysisPipeline",
    "AnalysisResults",
    "BUCKETS",
    "DurationBucket",
    "FilterReport",
    "GapCause",
    "GapEvent",
    "GroupDurations",
    "NetworkOutage",
    "OutageRenumberingRow",
    "PeriodicityRow",
    "PrefixChangeRow",
    "PrefixComparison",
    "ProbeCategory",
    "ProbeFilter",
    "ProbeOutageStats",
    "ProbePeriodicity",
    "ProbeVerdict",
    "Reboot",
    "all_probes_row",
    "as_periodicity_table",
    "associate_probe_gaps",
    "bin_duration",
    "binned_time",
    "bucket_outages",
    "classify_probe",
    "compare_change",
    "concentration",
    "conditional_cdf_network",
    "conditional_cdf_power",
    "country_as_breakdown",
    "detect_all_reboots",
    "detect_firmware_days",
    "detect_network_outages",
    "detect_probe_period",
    "detect_reboots",
    "dominant_duration",
    "durations_by_continent",
    "durations_by_country",
    "extract_changes",
    "extract_spans",
    "firmware_filtered_reboots",
    "hour_histogram",
    "is_harmonic",
    "known_durations",
    "looks_multihomed",
    "max_within",
    "outage_renumbering_table",
    "periodic_change_hours",
    "pipeline_for_bundle",
    "pipeline_for_world",
    "prefix_change_table",
    "probe_outage_stats",
    "reboots_per_day",
    "remove_firmware_reboots",
    "strip_testing_entry",
    "time_fraction_cdf",
    "total_time_fraction",
]
