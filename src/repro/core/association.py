"""Associating inter-connection gaps with outage events (Section 3.6).

Each pair of consecutive connections leaves a gap.  The paper's priority
order attributes the gap to a *network outage* when the k-root data shows
one, else to a *power outage* when an uptime reset coincides with missing
ping rounds, else to *no outage* (e.g. a periodic renumbering or a benign
TCP break).  The gap's address-change flag comes from comparing the peer
addresses on either side.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Sequence

from repro.atlas.kroot import DEFAULT_CADENCE, KRootSeries
from repro.atlas.types import ConnectionLogEntry
from repro.core.outages import detect_network_outages
from repro.core.reboots import Reboot

#: How far beyond the gap we look for corroborating measurements.
WINDOW_MARGIN = 2 * DEFAULT_CADENCE


class GapCause(enum.Enum):
    """What a gap between connections was attributed to."""

    NETWORK = "network outage"
    POWER = "power outage"
    NONE = "no outage"


@dataclass(frozen=True)
class GapEvent:
    """One classified inter-connection gap."""

    probe_id: int
    gap_start: float
    gap_end: float
    cause: GapCause
    address_changed: bool
    #: Estimated outage duration (0 for no-outage gaps).
    outage_duration: float


def _missing_rounds_around(series: KRootSeries, timestamp: float
                           ) -> tuple[bool, float]:
    """Check for a ping-round hole around ``timestamp``.

    Returns (rounds were missing, estimated outage duration).  The paper
    estimates a power outage's length as the spacing between the reported
    rounds bracketing the reboot.  The boot instant itself may coincide
    with a round tick, so we bracket the instant just before boot.
    """
    previous, following = series.ping_gap_around(timestamp - 1.0)
    if previous is None or following is None:
        return False, 0.0
    spacing = following - previous
    if spacing > 1.5 * series.cadence:
        return True, spacing
    return False, 0.0


def classify_gap(previous: ConnectionLogEntry, current: ConnectionLogEntry,
                 series: KRootSeries,
                 reboots: Sequence[Reboot]) -> GapEvent:
    """Attribute one gap using the paper's priority order."""
    gap_start = previous.end
    gap_end = current.start
    address_changed = (not previous.is_ipv6 and not current.is_ipv6
                       and previous.address != current.address)

    records = series.records(gap_start - WINDOW_MARGIN,
                             gap_end + WINDOW_MARGIN)
    outages = detect_network_outages(records)
    for outage in outages:
        if outage.overlaps(gap_start, gap_end):
            return GapEvent(previous.probe_id, gap_start, gap_end,
                            GapCause.NETWORK, address_changed,
                            outage.duration)

    for reboot in reboots:
        if gap_start - WINDOW_MARGIN <= reboot.time <= gap_end:
            missing, duration = _missing_rounds_around(series, reboot.time)
            if missing:
                return GapEvent(previous.probe_id, gap_start, gap_end,
                                GapCause.POWER, address_changed, duration)

    return GapEvent(previous.probe_id, gap_start, gap_end, GapCause.NONE,
                    address_changed, 0.0)


def associate_probe_gaps(entries: Sequence[ConnectionLogEntry],
                         series: KRootSeries,
                         reboots: Sequence[Reboot]) -> list[GapEvent]:
    """Classify every gap in one probe's connection log.

    ``reboots`` should already be firmware-filtered (Section 5.2).
    Gaps bounded by IPv6 connections are classified, but their
    address-change flag is False since no IPv4 comparison exists.
    """
    events: list[GapEvent] = []
    ordered_reboots = sorted(reboots, key=lambda r: r.time)
    for previous, current in zip(entries, entries[1:]):
        events.append(classify_gap(previous, current, series,
                                   ordered_reboots))
    return events
