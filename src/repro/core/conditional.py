"""Conditional probabilities of address change given outages (Section 5.3).

Per probe, ``P(ac|nw)`` is the fraction of its network outages that were
accompanied by an address change, and ``P(ac|pw)`` the same for power
outages.  Power statistics only use v3 probes: v1/v2 hardware can reboot
*because of* an address change (memory fragmentation), inverting the
causality (Section 5.1).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.core.association import GapCause, GapEvent
from repro.util.stats import CdfPoint, empirical_cdf, fraction


@dataclass(frozen=True)
class ProbeOutageStats:
    """Outage/change tallies for one probe."""

    probe_id: int
    network_outages: int
    network_changes: int
    power_outages: int
    power_changes: int

    @property
    def p_change_given_network(self) -> float:
        """P(ac|nw); zero when the probe saw no network outages."""
        return fraction(self.network_changes, self.network_outages)

    @property
    def p_change_given_power(self) -> float:
        """P(ac|pw); zero when the probe saw no power outages."""
        return fraction(self.power_changes, self.power_outages)


def probe_outage_stats(probe_id: int,
                       events: Iterable[GapEvent]) -> ProbeOutageStats:
    """Tally one probe's classified gaps."""
    nw = nw_changed = pw = pw_changed = 0
    for event in events:
        if event.cause is GapCause.NETWORK:
            nw += 1
            nw_changed += event.address_changed
        elif event.cause is GapCause.POWER:
            pw += 1
            pw_changed += event.address_changed
    return ProbeOutageStats(probe_id, nw, nw_changed, pw, pw_changed)


def conditional_cdf_network(stats: Iterable[ProbeOutageStats],
                            min_outages: int = 3) -> list[CdfPoint]:
    """Figure 7 series: CDF of P(ac|nw) over qualifying probes.

    Qualification follows the paper: at least ``min_outages`` network
    outage events.  (Callers restrict to probes with >= 1 address change.)
    """
    values = [s.p_change_given_network for s in stats
              if s.network_outages >= min_outages]
    return empirical_cdf(values)


def conditional_cdf_power(stats: Iterable[ProbeOutageStats],
                          min_outages: int = 3) -> list[CdfPoint]:
    """Figure 8 series: CDF of P(ac|pw); pass v3-only stats."""
    values = [s.p_change_given_power for s in stats
              if s.power_outages >= min_outages]
    return empirical_cdf(values)


@dataclass(frozen=True)
class OutageRenumberingRow:
    """One Table 6 row: an AS whose probes renumber on most outages."""

    as_name: str
    asn: int
    country: str
    n: int
    pct_network_over_80: float
    pct_network_eq_1: float
    pct_power_over_80: float
    pct_power_eq_1: float


def outage_renumbering_table(stats_by_probe: Mapping[int, ProbeOutageStats],
                             asn_by_probe: Mapping[int, int],
                             as_names: Mapping[int, str],
                             as_countries: Mapping[int, str] | None = None,
                             min_outages: int = 3,
                             min_qualifying_probes: int = 5,
                             probability_bar: float = 0.8
                             ) -> list[OutageRenumberingRow]:
    """Build Table 6.

    ``N`` counts probes with at least ``min_outages`` network *and* power
    outages; an AS is listed when at least ``min_qualifying_probes`` of
    them have P(ac|nw) above ``probability_bar``.  Pass v3-only stats so
    the power columns are trustworthy.
    """
    by_asn: dict[int, list[ProbeOutageStats]] = defaultdict(list)
    for probe_id, stats in stats_by_probe.items():
        if (stats.network_outages >= min_outages
                and stats.power_outages >= min_outages):
            by_asn[asn_by_probe[probe_id]].append(stats)

    rows: list[OutageRenumberingRow] = []
    for asn, members in by_asn.items():
        qualifying = [s for s in members
                      if s.p_change_given_network > probability_bar]
        if len(qualifying) < min_qualifying_probes:
            continue
        n = len(members)
        rows.append(OutageRenumberingRow(
            as_name=as_names.get(asn, "AS%d" % asn), asn=asn,
            country=(as_countries or {}).get(asn, ""),
            n=n,
            pct_network_over_80=fraction(
                sum(1 for s in members
                    if s.p_change_given_network > probability_bar), n),
            pct_network_eq_1=fraction(
                sum(1 for s in members
                    if s.network_outages and s.network_changes ==
                    s.network_outages), n),
            pct_power_over_80=fraction(
                sum(1 for s in members
                    if s.p_change_given_power > probability_bar), n),
            pct_power_eq_1=fraction(
                sum(1 for s in members
                    if s.power_outages and s.power_changes ==
                    s.power_outages), n),
        ))
    rows.sort(key=lambda row: -row.n)
    return rows


def stats_for_asn(stats_by_probe: Mapping[int, ProbeOutageStats],
                  asn_by_probe: Mapping[int, int],
                  asn: int,
                  changed_probes: set[int] | None = None
                  ) -> list[ProbeOutageStats]:
    """Stats of one AS's probes, optionally requiring >= 1 address change."""
    out: list[ProbeOutageStats] = []
    for probe_id, stats in stats_by_probe.items():
        if asn_by_probe.get(probe_id) != asn:
            continue
        if changed_probes is not None and probe_id not in changed_probes:
            continue
        out.append(stats)
    return out
