"""Probe filtering pipeline (Sections 3.2-3.3, Table 2).

Classifies every probe into exactly one category.  The paper's Table 2 is
presentational; we document an explicit precedence:

1. insufficient data (connected < 30 days — excluded from the total);
2. IPv6-only;
3. dual-stack;
4. tagged multihomed / datacentre / core;
5. behaviourally multihomed (address-alternation heuristic);
6. testing-address-only (first entry from 193.0.0.78, no further changes);
7. never changed;
8. analyzable — split into single-AS (AS-level analysis) and multi-AS
   (geography only), using monthly IP-to-AS snapshots.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Sequence

from repro.atlas.archive import ProbeArchive
from repro.atlas.connlog import ConnectionLog
from repro.atlas.types import ConnectionLogEntry
from repro.core.changes import AddressChange, extract_changes, strip_testing_entry
from repro.net.ipv4 import TESTING_ADDRESS, IPv4Address
from repro.net.pfx2as import IpToAsDataset
from repro.util.timeutil import DAY

#: An address seen in this many separate runs marks a probe as alternating
#: between concurrently held addresses (behavioural multihoming).  The
#: threshold is high enough that an ISP re-granting a previously held
#: address by chance (the paper's 'Harmonics') never trips it.
MULTIHOMED_MIN_RUNS = 5


class ProbeCategory(enum.Enum):
    """The Table 2 bucket a probe falls into."""

    SHORT_LIVED = "connected under 30 days"
    IPV6_ONLY = "IPv6"
    DUAL_STACK = "dual stack"
    TAGGED = "multihomed/core/datacenter (tags)"
    MULTIHOMED = "multihomed (alternating addresses)"
    TESTING_ONLY = "only address change from 193.0.0.78"
    NEVER_CHANGED = "never changed"
    ANALYZABLE = "analyzable"


@dataclass
class ProbeVerdict:
    """Classification outcome for one probe.

    Verdicts are pickled twice over: inside shard payloads crossing the
    worker boundary, and (entry-stripped) inside the cached
    ``FilterReport`` artifact — so the field layout is a wire contract
    (RPR010).
    """

    __wire_contract__ = "probe-verdict"

    probe_id: int
    category: ProbeCategory
    #: Entries after testing-entry removal (empty for filtered probes).
    entries: list[ConnectionLogEntry] = field(default_factory=list)
    #: All observed changes (for analyzable probes).
    changes: list[AddressChange] = field(default_factory=list)
    #: Changes whose endpoints map to the same AS.
    within_as_changes: list[AddressChange] = field(default_factory=list)
    #: True when some change crossed autonomous systems.
    multi_as: bool = False
    #: The AS the probe's addresses map to (single-AS probes only).
    asn: int | None = None


@dataclass
class FilterReport:
    """Aggregate filtering outcome, the reproduction of Table 2.

    The slim (entry-stripped) form of this report is the cached filter
    artifact, read back by later runs — a wire contract (RPR010).
    """

    __wire_contract__ = "filter-artifact"

    verdicts: dict[int, ProbeVerdict]
    total: int

    def probes_in(self, category: ProbeCategory) -> list[int]:
        """Probe ids classified into a category."""
        return sorted(v.probe_id for v in self.verdicts.values()
                      if v.category is category)

    def count(self, category: ProbeCategory) -> int:
        """Number of probes in a category."""
        return sum(1 for v in self.verdicts.values()
                   if v.category is category)

    def analyzable_geo(self) -> list[int]:
        """Probes usable for geographic analysis (Section 4.2)."""
        return self.probes_in(ProbeCategory.ANALYZABLE)

    def analyzable_as(self) -> list[int]:
        """Single-AS probes usable for AS-level analysis (Section 4.3)."""
        return sorted(v.probe_id for v in self.verdicts.values()
                      if v.category is ProbeCategory.ANALYZABLE
                      and not v.multi_as)

    def multi_as_probes(self) -> list[int]:
        """Analyzable probes whose changes span multiple ASes."""
        return sorted(v.probe_id for v in self.verdicts.values()
                      if v.category is ProbeCategory.ANALYZABLE
                      and v.multi_as)

    def table2_rows(self) -> list[tuple[str, int]]:
        """Rows in the paper's Table 2 ordering."""
        return [
            ("Total Probes", self.total),
            ("Never changed", self.count(ProbeCategory.NEVER_CHANGED)),
            ("Dual Stack", self.count(ProbeCategory.DUAL_STACK)),
            ("IPv6", self.count(ProbeCategory.IPV6_ONLY)),
            ("Multihomed / Core / Data-center (tags)",
             self.count(ProbeCategory.TAGGED)),
            ("Multihomed (alternating addresses)",
             self.count(ProbeCategory.MULTIHOMED)),
            ("Only address change from 193.0.0.78",
             self.count(ProbeCategory.TESTING_ONLY)),
            ("Analyzable (geography)", len(self.analyzable_geo())),
            ("Multiple ASes", len(self.multi_as_probes())),
            ("Analyzable (AS-level)", len(self.analyzable_as())),
        ]


def report_from_verdicts(verdicts: dict[int, ProbeVerdict]) -> FilterReport:
    """Assemble the Table 2 report from per-probe verdicts.

    The total excludes short-lived probes, matching the paper's Table 2
    denominator.  Split out from :meth:`ProbeFilter.run` so a sharded
    executor can merge per-shard verdict maps into the identical report.
    """
    total = sum(1 for v in verdicts.values()
                if v.category is not ProbeCategory.SHORT_LIVED)
    return FilterReport(verdicts=verdicts, total=total)


#: Categories whose verdicts carry (stripped) entry lists; every other
#: category stores ``entries=[]`` by construction, so these are the only
#: ones a slim artifact actually dropped anything from.
_ENTRY_CATEGORIES = (ProbeCategory.TESTING_ONLY, ProbeCategory.NEVER_CHANGED,
                     ProbeCategory.ANALYZABLE)


def restore_entries(report: FilterReport,
                    connlog: ConnectionLog) -> FilterReport:
    """Rebuild the entry lists a slim (entry-stripped) report dropped.

    A verdict's entries are always ``strip_testing_entry`` of the
    probe's connection-log entries — a pure function of the log — so a
    slim cached/IPC report plus the log reconstructs the fat report
    without re-running classification.  Mutates ``report`` in place and
    returns it.
    """
    for verdict in report.verdicts.values():
        if verdict.category in _ENTRY_CATEGORIES and not verdict.entries:
            verdict.entries, _ = strip_testing_entry(
                connlog.entries(verdict.probe_id), TESTING_ADDRESS)
    if getattr(report, "entries_stripped", False):
        report.entries_stripped = False  # type: ignore[attr-defined]
    return report


def looks_multihomed(addresses: Sequence[IPv4Address],
                     min_runs: int = MULTIHOMED_MIN_RUNS) -> bool:
    """Heuristic from Section 3.2: one address recurs in many separate runs.

    A probe alternating between a fixed and a changing address produces a
    run of the fixed address between every pair of dynamic connections.
    """
    runs: dict[int, int] = {}
    previous: int | None = None
    for address in addresses:
        if address.value != previous:
            runs[address.value] = runs.get(address.value, 0) + 1
            previous = address.value
    return bool(runs) and max(runs.values()) >= min_runs


class ProbeFilter:
    """Runs the classification over a connection log."""

    def __init__(self, connlog: ConnectionLog, archive: ProbeArchive,
                 ip2as: IpToAsDataset,
                 min_connected: float = 30 * DAY) -> None:
        self._connlog = connlog
        self._archive = archive
        self._ip2as = ip2as
        self._min_connected = min_connected

    def run(self) -> FilterReport:
        """Classify every probe in the log."""
        verdicts = {probe_id: self.classify(probe_id)
                    for probe_id in self._connlog.probe_ids()}
        return report_from_verdicts(verdicts)

    def classify(self, probe_id: int) -> ProbeVerdict:
        """Classify one probe; pure per-probe kernel, shard-safe."""
        entries = self._connlog.entries(probe_id)
        if self._connlog.total_connected_time(probe_id) < self._min_connected:
            return ProbeVerdict(probe_id, ProbeCategory.SHORT_LIVED)

        has_v6 = any(e.is_ipv6 for e in entries)
        has_v4 = any(not e.is_ipv6 for e in entries)
        if has_v6 and not has_v4:
            return ProbeVerdict(probe_id, ProbeCategory.IPV6_ONLY)
        if has_v6:
            return ProbeVerdict(probe_id, ProbeCategory.DUAL_STACK)

        if (self._archive.has_probe(probe_id)
                and self._archive.get(probe_id).has_filtered_tag):
            return ProbeVerdict(probe_id, ProbeCategory.TAGGED)

        if looks_multihomed([e.address for e in entries]):
            return ProbeVerdict(probe_id, ProbeCategory.MULTIHOMED)

        entries, had_testing = strip_testing_entry(entries, TESTING_ADDRESS)
        changes = extract_changes(entries)
        if not changes:
            category = (ProbeCategory.TESTING_ONLY if had_testing
                        else ProbeCategory.NEVER_CHANGED)
            return ProbeVerdict(probe_id, category, entries=entries)

        within, multi_as, asn = self._split_by_as(changes, entries)
        return ProbeVerdict(
            probe_id, ProbeCategory.ANALYZABLE, entries=entries,
            changes=changes, within_as_changes=within, multi_as=multi_as,
            asn=asn)

    def _split_by_as(self, changes: list[AddressChange],
                     entries: list[ConnectionLogEntry]
                     ) -> tuple[list[AddressChange], bool, int | None]:
        """Partition changes into within-AS and cross-AS (Section 3.3)."""
        within: list[AddressChange] = []
        multi_as = False
        for change in changes:
            old_asn = self._ip2as.origin_asn(change.old_address, change.time)
            new_asn = self._ip2as.origin_asn(change.new_address, change.time)
            if old_asn is not None and new_asn is not None \
                    and old_asn != new_asn:
                multi_as = True
            else:
                within.append(change)
        asn: int | None = None
        if not multi_as:
            first_v4 = next((e for e in entries if not e.is_ipv6), None)
            if first_v4 is not None:
                asn = self._ip2as.origin_asn(first_v4.address, first_v4.start)
        return within, multi_as, asn
