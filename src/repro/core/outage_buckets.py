"""Renumbering likelihood by outage duration (Section 5.4, Figure 9).

Buckets detected outage durations into the paper's twelve ranges (<5 min up
to >1 week) and reports, per bucket, how many outages were accompanied by
an address change.  DHCP ISPs (LGI) show renumbering probability growing
with duration; PPP ISPs (Orange) renumber even on the shortest outages.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.core.association import GapCause, GapEvent
from repro.util.stats import fraction
from repro.util.timeutil import DAY, HOUR, MINUTE, WEEK

#: The paper's Figure 9 bucket boundaries (seconds), with labels.
BUCKETS: tuple[tuple[str, float, float], ...] = (
    ("< 5m", 0.0, 5 * MINUTE),
    ("5-10m", 5 * MINUTE, 10 * MINUTE),
    ("10-20m", 10 * MINUTE, 20 * MINUTE),
    ("20-30m", 20 * MINUTE, 30 * MINUTE),
    ("30-60m", 30 * MINUTE, HOUR),
    ("1-3h", HOUR, 3 * HOUR),
    ("3-6h", 3 * HOUR, 6 * HOUR),
    ("6-12h", 6 * HOUR, 12 * HOUR),
    ("12-24h", 12 * HOUR, 24 * HOUR),
    ("1-3d", DAY, 3 * DAY),
    ("3d-7d", 3 * DAY, WEEK),
    ("> 1w", WEEK, float("inf")),
)


@dataclass(frozen=True)
class DurationBucket:
    """One Figure 9 bar: outages in a duration range."""

    label: str
    low: float
    high: float
    total: int
    renumbered: int

    @property
    def renumbered_fraction(self) -> float:
        """Share of the bucket's outages that changed the address."""
        return fraction(self.renumbered, self.total)


def bucket_outages(events: Iterable[GapEvent]) -> list[DurationBucket]:
    """Histogram outage-attributed gaps into the Figure 9 buckets.

    Pass only the gap events you want counted (e.g. network outages from
    all probes plus power outages from v3 probes, for one AS).
    """
    totals = [0] * len(BUCKETS)
    renumbered = [0] * len(BUCKETS)
    for event in events:
        if event.cause is GapCause.NONE:
            continue
        duration = event.outage_duration
        for index, (_label, low, high) in enumerate(BUCKETS):
            if low <= duration < high:
                totals[index] += 1
                renumbered[index] += event.address_changed
                break
    return [
        DurationBucket(label, low, high, totals[index], renumbered[index])
        for index, (label, low, high) in enumerate(BUCKETS)
    ]
