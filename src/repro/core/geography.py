"""Geographic aggregation of address durations (Section 4.2, Figures 1, 3).

Durations are aggregated by the probe's country and continent using the
probe archive, producing per-continent total-time-fraction CDFs (Figure 1)
and per-AS CDFs within one country (Figure 3 for Germany).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.atlas.archive import ProbeArchive
from repro.core.timefraction import DEFAULT_BIN, time_fraction_cdf
from repro.util.stats import CdfPoint
from repro.util.timeutil import DAY

#: One "total address duration" year, the unit Figure 1's legend uses.
YEAR_SECONDS = 365.0 * DAY


@dataclass(frozen=True)
class GroupDurations:
    """Pooled durations for one geographic or AS group."""

    label: str
    durations: tuple[float, ...]

    @property
    def total_years(self) -> float:
        """Total address time in years (the legend's parenthetical)."""
        return sum(self.durations) / YEAR_SECONDS

    def cdf(self, bin_width: float = DEFAULT_BIN) -> list[CdfPoint]:
        """Total-time-fraction CDF for the group."""
        return time_fraction_cdf(self.durations, bin_width)


def durations_by_continent(durations_by_probe: Mapping[int, Sequence[float]],
                           archive: ProbeArchive) -> list[GroupDurations]:
    """Pool durations per continent, largest total first (Figure 1).

    Probes absent from the archive (e.g. their metadata records were
    quarantined by a ``REPAIR`` load) cannot be geolocated and are
    skipped rather than failing the whole figure.
    """
    pooled: dict[str, list[float]] = defaultdict(list)
    for probe_id, durations in durations_by_probe.items():
        if not archive.has_probe(probe_id):
            continue
        meta = archive.get(probe_id)
        pooled[meta.continent].extend(durations)
    groups = [GroupDurations(continent, tuple(durations))
              for continent, durations in pooled.items()]
    groups.sort(key=lambda group: -group.total_years)
    return groups


def durations_by_country(durations_by_probe: Mapping[int, Sequence[float]],
                         archive: ProbeArchive) -> dict[str, GroupDurations]:
    """Pool durations per country code (unarchived probes skipped)."""
    pooled: dict[str, list[float]] = defaultdict(list)
    for probe_id, durations in durations_by_probe.items():
        if not archive.has_probe(probe_id):
            continue
        pooled[archive.get(probe_id).country].extend(durations)
    return {country: GroupDurations(country, tuple(durations))
            for country, durations in pooled.items()}


def country_as_breakdown(durations_by_probe: Mapping[int, Sequence[float]],
                         asn_by_probe: Mapping[int, int],
                         archive: ProbeArchive,
                         country: str,
                         as_names: Mapping[int, str],
                         min_total_years: float = 3.0
                         ) -> list[GroupDurations]:
    """Figure 3's per-AS view inside one country.

    ASes contributing less than ``min_total_years`` of address time pool
    into an 'others' group, as the paper does for Germany.
    """
    pooled: dict[int, list[float]] = defaultdict(list)
    for probe_id, durations in durations_by_probe.items():
        if not archive.has_probe(probe_id):
            continue
        if archive.get(probe_id).country != country:
            continue
        asn = asn_by_probe.get(probe_id)
        if asn is None:
            continue
        pooled[asn].extend(durations)

    groups: list[GroupDurations] = []
    others: list[float] = []
    for asn, durations in pooled.items():
        group = GroupDurations(as_names.get(asn, "AS%d" % asn),
                               tuple(durations))
        if group.total_years >= min_total_years:
            groups.append(group)
        else:
            others.extend(durations)
    groups.sort(key=lambda group: -group.total_years)
    if others:
        groups.append(GroupDurations("others", tuple(others)))
    return groups
