"""Hour-of-day analysis of periodic address changes (Section 4.4.3).

For an ISP's periodic probes, take every address span whose duration sits
in the period's bin and histogram the GMT hour in which the span ended.
Synchronized fleets (DTAG, Figure 5) pile up in a few night hours; free-
running fleets (Orange, Figure 4) spread roughly uniformly.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.core.changes import AddressSpan
from repro.core.timefraction import DEFAULT_BIN, bin_duration
from repro.util.timeutil import hour_of_day


def periodic_change_hours(spans: Iterable[AddressSpan], period: float,
                          bin_width: float = DEFAULT_BIN) -> list[int]:
    """GMT end hours of spans whose duration bins to ``period``."""
    target = bin_duration(period, bin_width)
    hours: list[int] = []
    for span in spans:
        if not span.has_known_duration:
            continue
        if bin_duration(span.duration, bin_width) == target:
            hours.append(hour_of_day(span.end))
    return hours


def hour_histogram(hours: Iterable[int]) -> list[int]:
    """Counts per GMT hour 0..23 (the Figures 4-5 bar heights)."""
    counts = [0] * 24
    for hour in hours:
        if not 0 <= hour <= 23:
            raise ValueError("hour %r outside 0..23" % (hour,))
        counts[hour] += 1
    return counts


def concentration(counts: Sequence[int], window: tuple[int, int]) -> float:
    """Fraction of changes inside the GMT hour window [start, end).

    The paper observes almost three quarters of DTAG's periodic changes in
    hours 0-6 GMT; this quantifies that.
    """
    start, end = window
    total = sum(counts)
    if total == 0:
        return 0.0
    in_window = sum(counts[hour] for hour in range(start, end))
    return in_window / total
