"""Address spans and address changes from connection logs (Section 3.1).

The paper infers an address change when consecutive connection-log entries
carry different peer addresses; the *duration* of an address is measured
from the first connection start using it to the last connection end using
it, and is only known when the span is bounded by observed changes on both
sides (the first and last spans of a probe have unknown duration —
Table 1's ``NA`` rows).

IPv6 entries interrupt IPv4 visibility: a dual-stack probe that connects
over IPv6 hides when its IPv4 address changed, so spans adjacent to IPv6
entries get unknown boundaries (Section 3.2's motivation for dropping
dual-stack probes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.atlas.types import ConnectionLogEntry
from repro.net.ipv4 import IPv4Address


@dataclass(frozen=True)
class AddressSpan:
    """One contiguous tenure of an address at a probe."""

    probe_id: int
    address: IPv4Address
    start: float
    end: float
    #: True when the span began with an observed address change.
    complete_start: bool
    #: True when the span ended with an observed address change.
    complete_end: bool

    @property
    def duration(self) -> float:
        """Tenure length; meaningful only when :attr:`has_known_duration`."""
        return self.end - self.start

    @property
    def has_known_duration(self) -> bool:
        """True when both boundaries are observed changes."""
        return self.complete_start and self.complete_end


@dataclass(frozen=True)
class AddressChange:
    """One observed change between consecutive IPv4 connections."""

    probe_id: int
    old_address: IPv4Address
    new_address: IPv4Address
    #: End of the last connection using the old address.
    gap_start: float
    #: Start of the first connection using the new address.
    gap_end: float

    @property
    def time(self) -> float:
        """The instant we first observe the new address."""
        return self.gap_end


def extract_spans(entries: Sequence[ConnectionLogEntry]) -> list[AddressSpan]:
    """Group a probe's entries into address spans.

    Consecutive IPv4 entries with the same address merge into one span.
    An IPv6 entry closes the current span with an unknown boundary and the
    following IPv4 span opens with one.
    """
    spans: list[AddressSpan] = []
    current: dict | None = None
    after_v6 = False
    for entry in entries:
        if entry.is_ipv6:
            if current is not None:
                spans.append(AddressSpan(complete_end=False, **current))
                current = None
            after_v6 = True
            continue
        if current is not None and entry.address == current["address"]:
            current["end"] = entry.end
            continue
        if current is not None:
            # Address differs: the old span ends with an observed change.
            spans.append(AddressSpan(complete_end=True, **current))
        current = dict(
            probe_id=entry.probe_id,
            address=entry.address,
            start=entry.start,
            end=entry.end,
            complete_start=(current is not None) and not after_v6,
        )
        if after_v6:
            after_v6 = False
    if current is not None:
        spans.append(AddressSpan(complete_end=False, **current))
    return spans


def extract_changes(entries: Sequence[ConnectionLogEntry]
                    ) -> list[AddressChange]:
    """Find address changes between consecutive IPv4 entries.

    IPv6 entries break adjacency: a change across an intervening IPv6
    connection cannot be timed and is not reported.
    """
    changes: list[AddressChange] = []
    previous: ConnectionLogEntry | None = None
    for entry in entries:
        if entry.is_ipv6:
            previous = None
            continue
        if previous is not None and entry.address != previous.address:
            changes.append(AddressChange(
                entry.probe_id, previous.address, entry.address,
                previous.end, entry.start))
        previous = entry
    return changes


def known_durations(spans: Iterable[AddressSpan]) -> list[float]:
    """Durations of the spans bounded by observed changes on both sides."""
    return [span.duration for span in spans if span.has_known_duration]


def strip_testing_entry(entries: Sequence[ConnectionLogEntry],
                        testing_address: IPv4Address
                        ) -> tuple[list[ConnectionLogEntry], bool]:
    """Drop a leading connection from the RIPE testing address.

    Returns the remaining entries and whether a testing entry was removed
    (Section 3.3: 427 probes began from 193.0.0.78).
    """
    if (entries and not entries[0].is_ipv6
            and entries[0].address == testing_address):
        return list(entries[1:]), True
    return list(entries), False
