"""End-to-end analysis pipeline.

Stitches the stages together in the paper's order: filter probes (Table 2),
extract spans/changes/durations, detect reboots and firmware campaigns,
associate gaps with outages, and compute per-probe outage statistics.
:class:`AnalysisResults` then exposes one method per table/figure, which
the experiment drivers and benchmarks call.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.atlas.archive import ProbeArchive
from repro.atlas.connlog import ConnectionLog
from repro.atlas.kroot import KRootDataset
from repro.atlas.sosuptime import UptimeDataset
from repro.atlas.types import ProbeVersion
from repro.core import geography
from repro.core.association import GapEvent, associate_probe_gaps
from repro.core.changes import (
    AddressChange,
    AddressSpan,
    extract_spans,
    known_durations,
)
from repro.core.conditional import (
    OutageRenumberingRow,
    ProbeOutageStats,
    conditional_cdf_network,
    conditional_cdf_power,
    outage_renumbering_table,
    probe_outage_stats,
    stats_for_asn,
)
from repro.core.filtering import FilterReport, ProbeFilter
from repro.core.hourofday import hour_histogram, periodic_change_hours
from repro.core.outage_buckets import DurationBucket, bucket_outages
from repro.core.periodicity import (
    PeriodicityRow,
    all_probes_row,
    as_periodicity_table,
    classify_probe,
)
from repro.core.prefixes import PrefixChangeRow, prefix_change_table
from repro.core.reboots import (
    detect_all_reboots,
    detect_firmware_days,
    firmware_filtered_reboots,
    reboots_per_day,
)
from repro.core.timefraction import DEFAULT_BIN
from repro.net.pfx2as import IpToAsDataset
from repro.util import timeutil
from repro.util.stats import CdfPoint


@dataclass
class AnalysisResults:
    """All per-stage outputs plus table/figure builders."""

    filter_report: FilterReport
    archive: ProbeArchive
    ip2as: IpToAsDataset
    as_names: dict[int, str]
    as_countries: dict[int, str]
    #: Spans per analyzable (geography) probe, testing entry removed.
    spans_by_probe: dict[int, list[AddressSpan]]
    #: Known durations per analyzable (geography) probe.
    durations_by_probe: dict[int, list[float]]
    #: All changes per single-AS (AS-level) probe.
    changes_by_probe: dict[int, list[AddressChange]]
    #: Home AS per single-AS probe.
    asn_by_probe: dict[int, int]
    #: Classified gaps per single-AS probe.
    gap_events_by_probe: dict[int, list[GapEvent]]
    #: Outage statistics per single-AS probe.
    stats_by_probe: dict[int, ProbeOutageStats]
    #: Unique probes rebooting per day of year (raw, Figure 6).
    reboot_day_counts: dict[int, int]
    #: Inferred firmware distribution days (day of year).
    firmware_days: list[int]
    _v3_probes: set[int] = field(default_factory=set)

    # -- subsets -----------------------------------------------------------

    def as_level_durations(self) -> dict[int, list[float]]:
        """Durations restricted to single-AS probes (Table 5 input)."""
        return {pid: durations
                for pid, durations in self.durations_by_probe.items()
                if pid in self.asn_by_probe}

    def changed_probes(self) -> set[int]:
        """Single-AS probes with at least one address change."""
        return {pid for pid, changes in self.changes_by_probe.items()
                if changes}

    def v3_stats(self) -> dict[int, ProbeOutageStats]:
        """Outage stats restricted to v3 probes (power analysis)."""
        return {pid: stats for pid, stats in self.stats_by_probe.items()
                if pid in self._v3_probes}

    # -- tables -------------------------------------------------------------

    def table2_rows(self) -> list[tuple[str, int]]:
        """Table 2: probe filtering summary."""
        return self.filter_report.table2_rows()

    def table5_rows(self, min_probes: int = 5,
                    min_periodic: int = 3) -> list[PeriodicityRow]:
        """Table 5: per-(AS, period) periodicity rows."""
        return as_periodicity_table(
            self.as_level_durations(), self.asn_by_probe, self.as_names,
            self.as_countries, min_probes=min_probes,
            min_periodic=min_periodic)

    def table5_all_rows(self) -> list[PeriodicityRow]:
        """Table 5's 'All' rows at 24 h and 168 h."""
        durations = self.as_level_durations()
        return [all_probes_row(durations, 24 * timeutil.HOUR),
                all_probes_row(durations, 168 * timeutil.HOUR)]

    def table6_rows(self, min_outages: int = 3,
                    min_qualifying_probes: int = 5
                    ) -> list[OutageRenumberingRow]:
        """Table 6: ASes renumbering on most outages (v3 probes)."""
        return outage_renumbering_table(
            self.v3_stats(), self.asn_by_probe, self.as_names,
            self.as_countries, min_outages=min_outages,
            min_qualifying_probes=min_qualifying_probes)

    def table7(self, top: int | None = 10
               ) -> tuple[PrefixChangeRow, list[PrefixChangeRow]]:
        """Table 7: cross-prefix change counts ('All' row + per-AS rows)."""
        return prefix_change_table(
            self.changes_by_probe, self.asn_by_probe, self.ip2as,
            self.as_names, self.as_countries, top=top)

    # -- figures ------------------------------------------------------------

    def figure1_groups(self) -> list[geography.GroupDurations]:
        """Figure 1: pooled durations per continent."""
        return geography.durations_by_continent(self.durations_by_probe,
                                                self.archive)

    def figure2_cdf(self, asn: int,
                    bin_width: float = DEFAULT_BIN) -> list[CdfPoint]:
        """Figures 2-3 series: one AS's total-time-fraction CDF."""
        group = self.as_group_durations(asn)
        return group.cdf(bin_width)

    def as_group_durations(self, asn: int) -> geography.GroupDurations:
        """Pooled durations of one AS's single-AS probes."""
        pooled: list[float] = []
        for pid, durations in self.as_level_durations().items():
            if self.asn_by_probe[pid] == asn:
                pooled.extend(durations)
        return geography.GroupDurations(
            self.as_names.get(asn, "AS%d" % asn), tuple(pooled))

    def figure3_groups(self, country: str = "DE",
                       min_total_years: float = 3.0
                       ) -> list[geography.GroupDurations]:
        """Figure 3: per-AS breakdown inside one country."""
        return geography.country_as_breakdown(
            self.as_level_durations(), self.asn_by_probe, self.archive,
            country, self.as_names, min_total_years=min_total_years)

    def figure45_histogram(self, asn: int, period: float) -> list[int]:
        """Figures 4-5: hour-of-day histogram of periodic changes."""
        hours: list[int] = []
        for pid, spans in self.spans_by_probe.items():
            if self.asn_by_probe.get(pid) != asn:
                continue
            verdict = classify_probe(pid,
                                     self.durations_by_probe.get(pid, []))
            if verdict.is_periodic and verdict.period == period:
                hours.extend(periodic_change_hours(spans, period))
        return hour_histogram(hours)

    def figure6_series(self) -> tuple[dict[int, int], list[int]]:
        """Figure 6: reboots per day plus inferred firmware days."""
        return self.reboot_day_counts, self.firmware_days

    def figure7_cdf(self, asn: int, min_outages: int = 3) -> list[CdfPoint]:
        """Figure 7: CDF of P(ac|nw) for one AS's changed probes."""
        stats = stats_for_asn(self.stats_by_probe, self.asn_by_probe, asn,
                              changed_probes=self.changed_probes())
        return conditional_cdf_network(stats, min_outages=min_outages)

    def figure8_cdf(self, asn: int, min_outages: int = 3) -> list[CdfPoint]:
        """Figure 8: CDF of P(ac|pw) for one AS's v3 changed probes."""
        stats = stats_for_asn(self.v3_stats(), self.asn_by_probe, asn,
                              changed_probes=self.changed_probes())
        return conditional_cdf_power(stats, min_outages=min_outages)

    def churn_series(self, start: float, end: float):
        """Daily active-address churn (Section 8 / Richter et al.)."""
        from repro.core.churn import churn_series, daily_active_addresses
        daily = daily_active_addresses(self.spans_by_probe, start, end)
        return churn_series(daily)

    def administrative_renumberings(self, start: float,
                                    min_probes: int = 5):
        """Mass prefix migrations detected per AS (Section 8)."""
        from repro.core.churn import detect_administrative_renumbering
        return detect_administrative_renumbering(
            self.changes_by_probe, self.asn_by_probe, self.ip2as, start,
            min_probes=min_probes)

    def figure9_buckets(self, asn: int) -> list[DurationBucket]:
        """Figure 9: renumbering by outage duration for one AS.

        Network outages come from probes of all versions; power outages
        only from v3 probes, per Section 5.4.
        """
        events: list[GapEvent] = []
        from repro.core.association import GapCause
        for pid, gaps in self.gap_events_by_probe.items():
            if self.asn_by_probe.get(pid) != asn:
                continue
            is_v3 = pid in self._v3_probes
            for event in gaps:
                if event.cause is GapCause.NETWORK or (
                        event.cause is GapCause.POWER and is_v3):
                    events.append(event)
        return bucket_outages(events)


class AnalysisPipeline:
    """Runs the full analysis over one set of input datasets.

    Degradation contract: the three auxiliary datasets are treated as
    *partial* — the paper's probes were routinely missing from one of
    them.  A probe absent from the k-root dataset contributes no outage
    stats (it still feeds periodicity and prefix analysis); a probe
    absent from SOS-uptime simply has no reboots; a probe absent from
    the archive is skipped by geography and the v3 power analysis.
    Only the connection log decides which probes exist at all.
    """

    def __init__(self, connlog: ConnectionLog, archive: ProbeArchive,
                 kroot: KRootDataset, uptime: UptimeDataset,
                 ip2as: IpToAsDataset,
                 as_names: Mapping[int, str] | None = None,
                 as_countries: Mapping[int, str] | None = None,
                 min_connected: float = 30 * timeutil.DAY) -> None:
        self._connlog = connlog
        self._archive = archive
        self._kroot = kroot
        self._uptime = uptime
        self._ip2as = ip2as
        self._as_names = dict(as_names or {})
        self._as_countries = dict(as_countries or {})
        self._min_connected = min_connected

    def run(self) -> AnalysisResults:
        """Execute all stages and return the results object."""
        filter_report = ProbeFilter(self._connlog, self._archive,
                                    self._ip2as,
                                    min_connected=self._min_connected).run()

        spans_by_probe: dict[int, list[AddressSpan]] = {}
        durations_by_probe: dict[int, list[float]] = {}
        for probe_id in filter_report.analyzable_geo():
            verdict = filter_report.verdicts[probe_id]
            spans = extract_spans(verdict.entries)
            spans_by_probe[probe_id] = spans
            durations = known_durations(spans)
            if durations:
                durations_by_probe[probe_id] = durations

        changes_by_probe: dict[int, list[AddressChange]] = {}
        asn_by_probe: dict[int, int] = {}
        for probe_id in filter_report.analyzable_as():
            verdict = filter_report.verdicts[probe_id]
            if verdict.asn is None:
                continue
            changes_by_probe[probe_id] = verdict.changes
            asn_by_probe[probe_id] = verdict.asn

        raw_reboots = detect_all_reboots(self._uptime)
        day_counts = reboots_per_day(raw_reboots)
        firmware_days = detect_firmware_days(day_counts)
        campaign_times = [timeutil.YEAR_2015_START
                          + (day - 1) * timeutil.DAY
                          for day in firmware_days]
        filtered_reboots = firmware_filtered_reboots(raw_reboots,
                                                     campaign_times)

        gap_events_by_probe: dict[int, list[GapEvent]] = {}
        stats_by_probe: dict[int, ProbeOutageStats] = {}
        for probe_id in filter_report.analyzable_as():
            verdict = filter_report.verdicts[probe_id]
            if not self._kroot.has_probe(probe_id):
                continue
            events = associate_probe_gaps(
                verdict.entries, self._kroot.series(probe_id),
                filtered_reboots.get(probe_id, []))
            gap_events_by_probe[probe_id] = events
            stats_by_probe[probe_id] = probe_outage_stats(probe_id, events)

        v3_probes = {
            pid for pid in asn_by_probe
            if self._archive.has_probe(pid)
            and self._archive.get(pid).version is ProbeVersion.V3
        }

        return AnalysisResults(
            filter_report=filter_report,
            archive=self._archive,
            ip2as=self._ip2as,
            as_names=self._as_names,
            as_countries=self._as_countries,
            spans_by_probe=spans_by_probe,
            durations_by_probe=durations_by_probe,
            changes_by_probe=changes_by_probe,
            asn_by_probe=asn_by_probe,
            gap_events_by_probe=gap_events_by_probe,
            stats_by_probe=stats_by_probe,
            reboot_day_counts=day_counts,
            firmware_days=firmware_days,
            _v3_probes=v3_probes,
        )


def pipeline_for_world(world,
                       min_connected: float | None = None
                       ) -> AnalysisPipeline:
    """Convenience: build a pipeline from a simulated WorldData.

    AS names and countries come from the scenario's ISP specs, mirroring
    how the paper labels its tables.  ``min_connected`` defaults to the
    paper's 30 days, capped at a tenth of the scenario window so short
    test scenarios keep their probes.
    """
    as_names: dict[int, str] = {}
    as_countries: dict[int, str] = {}
    for profile in world.config.profiles:
        as_names[profile.spec.asn] = profile.spec.name
        as_countries[profile.spec.asn] = profile.spec.country
    if min_connected is None:
        window = world.config.end - world.config.start
        min_connected = min(30 * timeutil.DAY, window / 10)
    return AnalysisPipeline(world.connlog, world.archive, world.kroot,
                            world.uptime, world.ip2as,
                            as_names=as_names, as_countries=as_countries,
                            min_connected=min_connected)


def pipeline_for_bundle(bundle,
                        min_connected: float | None = None
                        ) -> AnalysisPipeline:
    """Convenience: build a pipeline from a loaded on-disk dataset bundle.

    Mirror of :func:`pipeline_for_world` for the write-once, analyze-many
    workflow (:class:`repro.sim.io.DatasetBundle`); AS names and countries
    were stored in the bundle's ``meta.json`` at simulation time.  Lives
    here rather than in :mod:`repro.sim.io` because constructing the
    analysis pipeline is a core-layer concern — sim must not import core.
    """
    if min_connected is None:
        window = bundle.end - bundle.start
        min_connected = min(30 * timeutil.DAY, window / 10)
    return AnalysisPipeline(
        bundle.connlog, bundle.archive, bundle.kroot, bundle.uptime,
        bundle.ip2as, as_names=bundle.as_names,
        as_countries=bundle.as_countries, min_connected=min_connected)
