"""End-to-end analysis pipeline.

Stitches the stages together in the paper's order: filter probes (Table 2),
extract spans/changes/durations, detect reboots and firmware campaigns,
associate gaps with outages, and compute per-probe outage statistics.
:class:`AnalysisResults` then exposes one method per table/figure, which
the experiment drivers and benchmarks call.

Each stage is a named, module-level pure function (``stage_filter``,
``stage_spans``, ``stage_changes``, ``stage_reboots``, ``stage_gaps``,
``stage_stats``, ``stage_v3``) of its declared inputs only, plus per-probe
kernels (``probe_spans``, ``probe_gap_events``) for the stages that are
embarrassingly parallel across probes.  :class:`AnalysisPipeline` chains
them serially; :mod:`repro.runtime` wires the same functions into a stage
graph and fans the per-probe kernels out over shards, so the two paths
cannot drift apart.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.atlas.archive import ProbeArchive
from repro.atlas.columnar import ColumnarConnlog, ColumnarUptime
from repro.atlas.connlog import ConnectionLog
from repro.atlas.kroot import KRootDataset
from repro.atlas.sosuptime import UptimeDataset
from repro.atlas.types import ProbeVersion
from repro.core import colkernels, geography
from repro.core.association import GapEvent, associate_probe_gaps
from repro.core.changes import (
    AddressChange,
    AddressSpan,
    extract_spans,
    known_durations,
)
from repro.core.conditional import (
    OutageRenumberingRow,
    ProbeOutageStats,
    conditional_cdf_network,
    conditional_cdf_power,
    outage_renumbering_table,
    probe_outage_stats,
    stats_for_asn,
)
from repro.core.filtering import (
    FilterReport,
    ProbeFilter,
    report_from_verdicts,
)
from repro.core.hourofday import hour_histogram, periodic_change_hours
from repro.core.outage_buckets import DurationBucket, bucket_outages
from repro.core.periodicity import (
    PeriodicityRow,
    all_probes_row,
    as_periodicity_table,
    classify_probe,
)
from repro.core.prefixes import PrefixChangeRow, prefix_change_table
from repro.core.reboots import (
    detect_all_reboots,
    detect_firmware_days,
    firmware_filtered_reboots,
    reboots_per_day,
)
from repro.core.timefraction import DEFAULT_BIN
from repro.net.pfx2as import IpToAsDataset
from repro.util import timeutil
from repro.util.colpack import HAVE_NUMPY
from repro.util.ordering import ordered, ordered_items
from repro.util.stats import CdfPoint


@dataclass
class AnalysisResults:
    """All per-stage outputs plus table/figure builders."""

    filter_report: FilterReport
    archive: ProbeArchive
    ip2as: IpToAsDataset
    as_names: dict[int, str]
    as_countries: dict[int, str]
    #: Spans per analyzable (geography) probe, testing entry removed.
    spans_by_probe: dict[int, list[AddressSpan]]
    #: Known durations per analyzable (geography) probe.
    durations_by_probe: dict[int, list[float]]
    #: All changes per single-AS (AS-level) probe.
    changes_by_probe: dict[int, list[AddressChange]]
    #: Home AS per single-AS probe.
    asn_by_probe: dict[int, int]
    #: Classified gaps per single-AS probe.
    gap_events_by_probe: dict[int, list[GapEvent]]
    #: Outage statistics per single-AS probe.
    stats_by_probe: dict[int, ProbeOutageStats]
    #: Unique probes rebooting per day of year (raw, Figure 6).
    reboot_day_counts: dict[int, int]
    #: Inferred firmware distribution days (day of year).
    firmware_days: list[int]
    #: Sorted ids (membership-tested only; sorted so the digest and any
    #: future serialization see a deterministic order).
    _v3_probes: tuple[int, ...] = ()

    # -- subsets -----------------------------------------------------------

    def as_level_durations(self) -> dict[int, list[float]]:
        """Durations restricted to single-AS probes (Table 5 input)."""
        return {pid: durations
                for pid, durations in self.durations_by_probe.items()
                if pid in self.asn_by_probe}

    def changed_probes(self) -> set[int]:
        """Single-AS probes with at least one address change."""
        return {pid for pid, changes in self.changes_by_probe.items()
                if changes}

    def v3_stats(self) -> dict[int, ProbeOutageStats]:
        """Outage stats restricted to v3 probes (power analysis)."""
        return {pid: stats for pid, stats in self.stats_by_probe.items()
                if pid in self._v3_probes}

    # -- tables -------------------------------------------------------------

    def table2_rows(self) -> list[tuple[str, int]]:
        """Table 2: probe filtering summary."""
        return self.filter_report.table2_rows()

    def table5_rows(self, min_probes: int = 5,
                    min_periodic: int = 3) -> list[PeriodicityRow]:
        """Table 5: per-(AS, period) periodicity rows."""
        return as_periodicity_table(
            self.as_level_durations(), self.asn_by_probe, self.as_names,
            self.as_countries, min_probes=min_probes,
            min_periodic=min_periodic)

    def table5_all_rows(self) -> list[PeriodicityRow]:
        """Table 5's 'All' rows at 24 h and 168 h."""
        durations = self.as_level_durations()
        return [all_probes_row(durations, 24 * timeutil.HOUR),
                all_probes_row(durations, 168 * timeutil.HOUR)]

    def table6_rows(self, min_outages: int = 3,
                    min_qualifying_probes: int = 5
                    ) -> list[OutageRenumberingRow]:
        """Table 6: ASes renumbering on most outages (v3 probes)."""
        return outage_renumbering_table(
            self.v3_stats(), self.asn_by_probe, self.as_names,
            self.as_countries, min_outages=min_outages,
            min_qualifying_probes=min_qualifying_probes)

    def table7(self, top: int | None = 10
               ) -> tuple[PrefixChangeRow, list[PrefixChangeRow]]:
        """Table 7: cross-prefix change counts ('All' row + per-AS rows)."""
        return prefix_change_table(
            self.changes_by_probe, self.asn_by_probe, self.ip2as,
            self.as_names, self.as_countries, top=top)

    # -- figures ------------------------------------------------------------

    def figure1_groups(self) -> list[geography.GroupDurations]:
        """Figure 1: pooled durations per continent."""
        return geography.durations_by_continent(self.durations_by_probe,
                                                self.archive)

    def figure2_cdf(self, asn: int,
                    bin_width: float = DEFAULT_BIN) -> list[CdfPoint]:
        """Figures 2-3 series: one AS's total-time-fraction CDF."""
        group = self.as_group_durations(asn)
        return group.cdf(bin_width)

    def as_group_durations(self, asn: int) -> geography.GroupDurations:
        """Pooled durations of one AS's single-AS probes."""
        pooled: list[float] = []
        for pid, durations in self.as_level_durations().items():
            if self.asn_by_probe[pid] == asn:
                pooled.extend(durations)
        return geography.GroupDurations(
            self.as_names.get(asn, "AS%d" % asn), tuple(pooled))

    def figure3_groups(self, country: str = "DE",
                       min_total_years: float = 3.0
                       ) -> list[geography.GroupDurations]:
        """Figure 3: per-AS breakdown inside one country."""
        return geography.country_as_breakdown(
            self.as_level_durations(), self.asn_by_probe, self.archive,
            country, self.as_names, min_total_years=min_total_years)

    def figure45_histogram(self, asn: int, period: float) -> list[int]:
        """Figures 4-5: hour-of-day histogram of periodic changes."""
        hours: list[int] = []
        for pid, spans in self.spans_by_probe.items():
            if self.asn_by_probe.get(pid) != asn:
                continue
            verdict = classify_probe(pid,
                                     self.durations_by_probe.get(pid, []))
            if verdict.is_periodic and verdict.period == period:
                hours.extend(periodic_change_hours(spans, period))
        return hour_histogram(hours)

    def figure6_series(self) -> tuple[dict[int, int], list[int]]:
        """Figure 6: reboots per day plus inferred firmware days."""
        return self.reboot_day_counts, self.firmware_days

    def figure7_cdf(self, asn: int, min_outages: int = 3) -> list[CdfPoint]:
        """Figure 7: CDF of P(ac|nw) for one AS's changed probes."""
        stats = stats_for_asn(self.stats_by_probe, self.asn_by_probe, asn,
                              changed_probes=self.changed_probes())
        return conditional_cdf_network(stats, min_outages=min_outages)

    def figure8_cdf(self, asn: int, min_outages: int = 3) -> list[CdfPoint]:
        """Figure 8: CDF of P(ac|pw) for one AS's v3 changed probes."""
        stats = stats_for_asn(self.v3_stats(), self.asn_by_probe, asn,
                              changed_probes=self.changed_probes())
        return conditional_cdf_power(stats, min_outages=min_outages)

    def churn_series(self, start: float, end: float):
        """Daily active-address churn (Section 8 / Richter et al.)."""
        from repro.core.churn import churn_series, daily_active_addresses
        daily = daily_active_addresses(self.spans_by_probe, start, end)
        return churn_series(daily)

    def administrative_renumberings(self, start: float,
                                    min_probes: int = 5):
        """Mass prefix migrations detected per AS (Section 8)."""
        from repro.core.churn import detect_administrative_renumbering
        return detect_administrative_renumbering(
            self.changes_by_probe, self.asn_by_probe, self.ip2as, start,
            min_probes=min_probes)

    def figure9_buckets(self, asn: int) -> list[DurationBucket]:
        """Figure 9: renumbering by outage duration for one AS.

        Network outages come from probes of all versions; power outages
        only from v3 probes, per Section 5.4.
        """
        events: list[GapEvent] = []
        from repro.core.association import GapCause
        for pid, gaps in self.gap_events_by_probe.items():
            if self.asn_by_probe.get(pid) != asn:
                continue
            is_v3 = pid in self._v3_probes
            for event in gaps:
                if event.cause is GapCause.NETWORK or (
                        event.cause is GapCause.POWER and is_v3):
                    events.append(event)
        return bucket_outages(events)


# -- named pure stage functions ---------------------------------------------
#
# The decomposition of the serial pipeline.  Every function depends only on
# its arguments, so results are a pure function of the input datasets; the
# per-probe kernels are additionally independent across probes, which is
# what makes shard-parallel execution (repro.runtime) bit-identical to the
# serial path.

def stage_filter(connlog: ConnectionLog, archive: ProbeArchive,
                 ip2as: IpToAsDataset,
                 min_connected: float = 30 * timeutil.DAY) -> FilterReport:
    """Stage ``filter``: classify every probe (Table 2)."""
    return ProbeFilter(connlog, archive, ip2as,
                       min_connected=min_connected).run()


def probe_spans(entries) -> tuple[list[AddressSpan], list[float]]:
    """Per-probe kernel for stage ``spans``: spans and known durations."""
    spans = extract_spans(entries)
    return spans, known_durations(spans)


def stage_spans(filter_report: FilterReport
                ) -> tuple[dict[int, list[AddressSpan]],
                           dict[int, list[float]]]:
    """Stage ``spans``: address spans/durations per geography probe."""
    spans_by_probe: dict[int, list[AddressSpan]] = {}
    durations_by_probe: dict[int, list[float]] = {}
    for probe_id in filter_report.analyzable_geo():
        spans, durations = probe_spans(filter_report.verdicts[probe_id].entries)
        spans_by_probe[probe_id] = spans
        if durations:
            durations_by_probe[probe_id] = durations
    return spans_by_probe, durations_by_probe


def stage_changes(filter_report: FilterReport
                  ) -> tuple[dict[int, list[AddressChange]], dict[int, int]]:
    """Stage ``changes``: changes and home AS per single-AS probe."""
    changes_by_probe: dict[int, list[AddressChange]] = {}
    asn_by_probe: dict[int, int] = {}
    for probe_id in filter_report.analyzable_as():
        verdict = filter_report.verdicts[probe_id]
        if verdict.asn is None:
            continue
        changes_by_probe[probe_id] = verdict.changes
        asn_by_probe[probe_id] = verdict.asn
    return changes_by_probe, asn_by_probe


def aggregate_reboots(raw_reboots: Mapping[int, list]
                      ) -> tuple[dict[int, int], list[int], dict[int, list]]:
    """Aggregation half of stage ``reboots``.

    Per-probe detection is shard-parallel; this global barrier (firmware
    campaigns are inferred from the all-probe day histogram) is what the
    sharded executor runs in the parent after merging shard results.
    """
    day_counts = reboots_per_day(raw_reboots)
    firmware_days = detect_firmware_days(day_counts)
    campaign_times = [timeutil.YEAR_2015_START + (day - 1) * timeutil.DAY
                      for day in firmware_days]
    filtered = firmware_filtered_reboots(raw_reboots, campaign_times)
    return day_counts, firmware_days, filtered


def stage_reboots(uptime: UptimeDataset
                  ) -> tuple[dict[int, int], list[int], dict[int, list]]:
    """Stage ``reboots``: day counts, firmware days, filtered reboots."""
    return aggregate_reboots(detect_all_reboots(uptime))


def probe_gap_events(entries, series, reboots) -> list[GapEvent]:
    """Per-probe kernel for stage ``gaps``: classify one probe's gaps."""
    return associate_probe_gaps(entries, series, reboots)


def stage_gaps(filter_report: FilterReport, kroot: KRootDataset,
               filtered_reboots: Mapping[int, list]
               ) -> dict[int, list[GapEvent]]:
    """Stage ``gaps``: associate connection gaps with observed outages."""
    gap_events_by_probe: dict[int, list[GapEvent]] = {}
    # analyzable_as() is sorted already; the explicit barrier lets
    # RPR009 prove the output's key order without trusting that.
    for probe_id in ordered(filter_report.analyzable_as()):
        if not kroot.has_probe(probe_id):
            continue
        gap_events_by_probe[probe_id] = probe_gap_events(
            filter_report.verdicts[probe_id].entries, kroot.series(probe_id),
            filtered_reboots.get(probe_id, []))
    return gap_events_by_probe


def stage_stats(gap_events_by_probe: Mapping[int, list[GapEvent]]
                ) -> dict[int, ProbeOutageStats]:
    """Stage ``stats``: per-probe conditional outage statistics.

    Iterates in sorted-key order rather than insertion order: the input
    mapping is sorted however it was produced (serial loop, shard
    merge, columnar kernel), but this stage's output feeds the digest,
    so its order must not *depend* on that (RPR009).
    """
    return {probe_id: probe_outage_stats(probe_id, events)
            for probe_id, events in ordered_items(gap_events_by_probe)}


def stage_v3(asn_by_probe: Mapping[int, int],
             archive: ProbeArchive) -> tuple[int, ...]:
    """Stage ``v3``: single-AS probes with v3 hardware (power analysis).

    Returned sorted: the ids land in ``AnalysisResults`` and flow into
    the results digest, so their order is part of the reproducibility
    contract (RPR009).
    """
    return tuple(sorted(
        pid for pid in asn_by_probe
        if archive.has_probe(pid)
        and archive.get(pid).version is ProbeVersion.V3
    ))


# -- columnar stage variants --------------------------------------------------
#
# Vectorized drop-ins for the four hot stages, over the array-backed views
# (DESIGN.md §16).  Both execution tiers (AnalysisPipeline below and the
# sharded runtime executor) call these same wrappers, and each is pinned
# bit-identical to its record-kernel twin by the differential suite; the
# legacy functions above remain the oracle (``--legacy-kernels``).

def stage_filter_col(col: ColumnarConnlog, connlog: ConnectionLog,
                     archive: ProbeArchive, ip2as: IpToAsDataset,
                     min_connected: float = 30 * timeutil.DAY
                     ) -> FilterReport:
    """Columnar :func:`stage_filter`."""
    return report_from_verdicts(colkernels.classify_probes(
        col, connlog, archive, ip2as, min_connected))


def stage_spans_col(col: ColumnarConnlog, connlog: ConnectionLog,
                    filter_report: FilterReport
                    ) -> tuple[dict[int, list[AddressSpan]],
                               dict[int, list[float]]]:
    """Columnar :func:`stage_spans`."""
    payload = colkernels.probe_spans_col(col, connlog,
                                         filter_report.analyzable_geo())
    spans_by_probe: dict[int, list[AddressSpan]] = {}
    durations_by_probe: dict[int, list[float]] = {}
    for probe_id, (spans, durations) in payload.items():
        spans_by_probe[probe_id] = spans
        if durations:
            durations_by_probe[probe_id] = durations
    return spans_by_probe, durations_by_probe


def stage_reboots_col(colup: ColumnarUptime
                      ) -> tuple[dict[int, int], list[int], dict[int, list]]:
    """Columnar :func:`stage_reboots`."""
    return aggregate_reboots(colkernels.detect_reboots_col(colup))


def stage_gaps_col(col: ColumnarConnlog, kroot: KRootDataset,
                   filter_report: FilterReport,
                   filtered_reboots: Mapping[int, list]
                   ) -> dict[int, list[GapEvent]]:
    """Columnar :func:`stage_gaps`."""
    items = [(probe_id, filtered_reboots.get(probe_id, []))
             for probe_id in ordered(filter_report.analyzable_as())
             if kroot.has_probe(probe_id)]
    return colkernels.gap_events_col(col, kroot, items)


class AnalysisPipeline:
    """Runs the full analysis over one set of input datasets.

    Degradation contract: the three auxiliary datasets are treated as
    *partial* — the paper's probes were routinely missing from one of
    them.  A probe absent from the k-root dataset contributes no outage
    stats (it still feeds periodicity and prefix analysis); a probe
    absent from SOS-uptime simply has no reboots; a probe absent from
    the archive is skipped by geography and the v3 power analysis.
    Only the connection log decides which probes exist at all.

    ``columnar`` selects the vectorized kernels: ``None`` (the default)
    auto-enables them when numpy is importable, ``False`` forces the
    legacy record kernels (the differential oracle), ``True`` insists —
    and still degrades to legacy on a numpy-free host.  Both paths are
    bit-identical by contract.
    """

    def __init__(self, connlog: ConnectionLog, archive: ProbeArchive,
                 kroot: KRootDataset, uptime: UptimeDataset,
                 ip2as: IpToAsDataset,
                 as_names: Mapping[int, str] | None = None,
                 as_countries: Mapping[int, str] | None = None,
                 min_connected: float = 30 * timeutil.DAY,
                 columnar: bool | None = None) -> None:
        self._connlog = connlog
        self._archive = archive
        self._kroot = kroot
        self._uptime = uptime
        self._ip2as = ip2as
        self._as_names = dict(as_names or {})
        self._as_countries = dict(as_countries or {})
        self._min_connected = min_connected
        self._columnar = (HAVE_NUMPY if columnar is None
                          else columnar and HAVE_NUMPY)

    def run(self) -> AnalysisResults:
        """Execute all stages serially and return the results object."""
        if self._columnar:
            col = ColumnarConnlog.from_connlog(self._connlog)
            filter_report = stage_filter_col(
                col, self._connlog, self._archive, self._ip2as,
                min_connected=self._min_connected)
            spans_by_probe, durations_by_probe = stage_spans_col(
                col, self._connlog, filter_report)
            changes_by_probe, asn_by_probe = stage_changes(filter_report)
            day_counts, firmware_days, filtered_reboots = stage_reboots_col(
                ColumnarUptime.from_uptime(self._uptime))
            gap_events_by_probe = stage_gaps_col(
                col, self._kroot, filter_report, filtered_reboots)
        else:
            filter_report = stage_filter(self._connlog, self._archive,
                                         self._ip2as,
                                         min_connected=self._min_connected)
            spans_by_probe, durations_by_probe = stage_spans(filter_report)
            changes_by_probe, asn_by_probe = stage_changes(filter_report)
            day_counts, firmware_days, filtered_reboots = stage_reboots(
                self._uptime)
            gap_events_by_probe = stage_gaps(filter_report, self._kroot,
                                             filtered_reboots)
        stats_by_probe = stage_stats(gap_events_by_probe)
        v3_probes = stage_v3(asn_by_probe, self._archive)

        return AnalysisResults(
            filter_report=filter_report,
            archive=self._archive,
            ip2as=self._ip2as,
            as_names=self._as_names,
            as_countries=self._as_countries,
            spans_by_probe=spans_by_probe,
            durations_by_probe=durations_by_probe,
            changes_by_probe=changes_by_probe,
            asn_by_probe=asn_by_probe,
            gap_events_by_probe=gap_events_by_probe,
            stats_by_probe=stats_by_probe,
            reboot_day_counts=day_counts,
            firmware_days=firmware_days,
            _v3_probes=v3_probes,
        )


def pipeline_for_world(world,
                       min_connected: float | None = None
                       ) -> AnalysisPipeline:
    """Convenience: build a pipeline from a simulated WorldData.

    AS names and countries come from the scenario's ISP specs, mirroring
    how the paper labels its tables.  ``min_connected`` defaults to the
    paper's 30 days, capped at a tenth of the scenario window so short
    test scenarios keep their probes.
    """
    as_names: dict[int, str] = {}
    as_countries: dict[int, str] = {}
    for profile in world.config.profiles:
        as_names[profile.spec.asn] = profile.spec.name
        as_countries[profile.spec.asn] = profile.spec.country
    if min_connected is None:
        window = world.config.end - world.config.start
        min_connected = min(30 * timeutil.DAY, window / 10)
    return AnalysisPipeline(world.connlog, world.archive, world.kroot,
                            world.uptime, world.ip2as,
                            as_names=as_names, as_countries=as_countries,
                            min_connected=min_connected)


def pipeline_for_bundle(bundle,
                        min_connected: float | None = None
                        ) -> AnalysisPipeline:
    """Convenience: build a pipeline from a loaded on-disk dataset bundle.

    Mirror of :func:`pipeline_for_world` for the write-once, analyze-many
    workflow (:class:`repro.sim.io.DatasetBundle`); AS names and countries
    were stored in the bundle's ``meta.json`` at simulation time.  Lives
    here rather than in :mod:`repro.sim.io` because constructing the
    analysis pipeline is a core-layer concern — sim must not import core.
    """
    if min_connected is None:
        window = bundle.end - bundle.start
        min_connected = min(30 * timeutil.DAY, window / 10)
    return AnalysisPipeline(
        bundle.connlog, bundle.archive, bundle.kroot, bundle.uptime,
        bundle.ip2as, as_names=bundle.as_names,
        as_countries=bundle.as_countries, min_connected=min_connected)
