"""Reboot detection and firmware-update filtering (Sections 3.5, 5.1-5.2).

A reboot shows up as the SOS uptime counter resetting: a record whose
counter value is smaller than its predecessor's.  The reboot instant is the
report timestamp minus the counter (Table 4's example).

Firmware updates cause fleet-wide reboot spikes (Figure 6) that are a
*consequence* of dropped connections rather than a cause, so the paper
discards each probe's first reboot after an inferred distribution day.
Distribution days are inferred exactly as the paper describes: runs of at
least two consecutive days with more than twice the median number of
rebooting probes.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from repro.atlas.sosuptime import UptimeDataset
from repro.atlas.types import UptimeRecord
from repro.util.stats import median
from repro.util.timeutil import day_of_year


@dataclass(frozen=True)
class Reboot:
    """One inferred probe reboot."""

    probe_id: int
    #: The boot instant implied by the reset counter value.
    time: float
    #: When the post-reboot record reporting the reset was emitted.
    reported_at: float


def detect_reboots(records: Sequence[UptimeRecord]) -> list[Reboot]:
    """Find counter resets in one probe's uptime records."""
    reboots: list[Reboot] = []
    previous: UptimeRecord | None = None
    for record in records:
        if previous is not None and record.uptime < previous.uptime:
            reboots.append(Reboot(record.probe_id, record.boot_time,
                                  record.timestamp))
        previous = record
    return reboots


def detect_all_reboots(dataset: UptimeDataset) -> dict[int, list[Reboot]]:
    """Reboots per probe over the whole dataset."""
    return {probe_id: detect_reboots(dataset.records(probe_id))
            for probe_id in dataset.probe_ids()}


def reboots_per_day(reboots_by_probe: Mapping[int, Sequence[Reboot]]
                    ) -> dict[int, int]:
    """Unique probes rebooting on each day of the year (Figure 6)."""
    probes_by_day: dict[int, set[int]] = defaultdict(set)
    for probe_id, reboots in reboots_by_probe.items():
        for reboot in reboots:
            probes_by_day[day_of_year(reboot.time)].add(probe_id)
    return {day: len(probes) for day, probes in sorted(probes_by_day.items())}


def detect_firmware_days(per_day: Mapping[int, int],
                         factor: float = 2.0,
                         min_consecutive: int = 2,
                         year_days: int = 365) -> list[int]:
    """Infer firmware distribution days from reboot-count spikes.

    Returns the first day of each run of >= ``min_consecutive`` consecutive
    days whose unique-rebooter count exceeds ``factor`` times the median
    daily count (days with zero reboots count toward the median).
    """
    counts = [per_day.get(day, 0) for day in range(1, year_days + 1)]
    if not any(counts):
        return []
    # The max() guard keeps sparse datasets (median 0) from flagging every
    # non-empty day as a spike.
    threshold = factor * max(median(counts), 1.0)
    days: list[int] = []
    run_start: int | None = None
    run_length = 0
    for day, count in enumerate(counts, start=1):
        if count > threshold:
            if run_start is None:
                run_start = day
            run_length += 1
        else:
            if run_start is not None and run_length >= min_consecutive:
                days.append(run_start)
            run_start = None
            run_length = 0
    if run_start is not None and run_length >= min_consecutive:
        days.append(run_start)
    return days


def remove_firmware_reboots(reboots: Sequence[Reboot],
                            campaign_times: Iterable[float]
                            ) -> list[Reboot]:
    """Drop one probe's first reboot after each firmware distribution time.

    ``campaign_times`` are epoch timestamps (the start of each inferred
    distribution day).  Consumed campaigns are matched in time order.
    """
    remaining = sorted(campaign_times)
    kept: list[Reboot] = []
    for reboot in sorted(reboots, key=lambda r: r.time):
        matched = False
        while remaining and remaining[0] <= reboot.time:
            # The earliest pending campaign claims this reboot.
            remaining.pop(0)
            matched = True
            break
        if not matched:
            kept.append(reboot)
    return kept


def firmware_filtered_reboots(reboots_by_probe: Mapping[int, Sequence[Reboot]],
                              campaign_times: Sequence[float]
                              ) -> dict[int, list[Reboot]]:
    """Apply :func:`remove_firmware_reboots` across all probes."""
    return {probe_id: remove_firmware_reboots(reboots, campaign_times)
            for probe_id, reboots in reboots_by_probe.items()}


def count_unique_rebooters(reboots_by_probe: Mapping[int, Sequence[Reboot]]
                           ) -> Counter:
    """Total reboots per probe (convenience for tests and reports)."""
    return Counter({probe_id: len(reboots)
                    for probe_id, reboots in reboots_by_probe.items()})
