"""Columnar forms of the fat cached artifacts (DESIGN.md §16).

The hot stages' cached artifacts used to be pickled object graphs — the
entry-stripped :class:`~repro.core.filtering.FilterReport`, plus
megabytes of ``AddressSpan``/``GapEvent`` lists — tens of thousands of
small objects re-walked on every warm load and re-serialized on every
cold store.  The classes here hold the same information as a handful of
parallel arrays plus a tiny JSON meta block, stored through
:mod:`repro.util.colpack` so runs memory-map columns instead of walking
pickle graphs.

Round-trip contract: ``decode(encode(value))`` reproduces the original
exactly — same dict order, equal field values, and (for the filter
artifact) ``within_as_changes`` items that are the *same objects* as the
matching ``changes`` items (as both kernels construct them).  Verdict
entry lists are dropped (they are a pure function of the connection log;
:func:`repro.core.filtering.restore_entries` rebuilds them on demand).
"""

from __future__ import annotations

from repro.core.association import GapCause, GapEvent
from repro.core.changes import AddressChange, AddressSpan
from repro.core.filtering import FilterReport, ProbeCategory, ProbeVerdict
from repro.net.ipv4 import IPv4Address
from repro.util import colpack
from repro.util.colpack import HAVE_NUMPY

if HAVE_NUMPY:
    import numpy as np


def _address_memo():
    """An ``int -> IPv4Address`` constructor that reuses instances.

    Decode loops build one address object per *distinct* value instead
    of one per row — addresses repeat heavily across spans and changes,
    and the class is frozen, so sharing is safe.
    """
    cache: dict[int, IPv4Address] = {}

    def addr(value: int) -> IPv4Address:
        got = cache.get(value)
        if got is None:
            got = cache[value] = IPv4Address(value)
        return got

    return addr


@colpack.register
class ColumnarFilterArtifact:
    """The slim filter report as named columns.

    Layout: one row per verdict in the report's dict order (``probe_ids``
    is *not* re-sorted — preserving iteration order is part of the
    round-trip contract), with CSR ``change_offsets`` slicing the flat
    per-change columns.  ``asns`` uses ``-1`` for "no single AS" and
    ``change_within`` flags the changes that belong to
    ``within_as_changes``.  Category codes index the category-name list
    carried in ``meta`` — the file is self-describing even if the enum
    ever gains members.

    This artifact persists across processes and code versions, so its
    column set and meta keys are a wire contract (RPR010).
    """

    __columnar__ = "filter-artifact-columnar"
    __wire_contract__ = "filter-artifact-columnar"

    def __init__(self, meta: dict, columns: dict) -> None:
        self.meta = meta
        self.columns = columns

    # -- codec ---------------------------------------------------------------

    def to_columns(self):
        return self.meta, self.columns

    @classmethod
    def from_columns(cls, meta, columns) -> "ColumnarFilterArtifact":
        return cls(meta, columns)

    # -- report round-trip ---------------------------------------------------

    @classmethod
    def from_report(cls, report: FilterReport) -> "ColumnarFilterArtifact":
        """Encode a (fat or slim) report; entry lists are dropped."""
        if not HAVE_NUMPY:
            raise RuntimeError("ColumnarFilterArtifact requires numpy; "
                               "gate callers on colpack.HAVE_NUMPY")
        code_of = {category: code
                   for code, category in enumerate(ProbeCategory)}
        pids: list[int] = []
        categories: list[int] = []
        multi_as: list[int] = []
        asns: list[int] = []
        offsets: list[int] = [0]
        old_addrs: list[int] = []
        new_addrs: list[int] = []
        gap_starts: list[float] = []
        gap_ends: list[float] = []
        within: list[int] = []
        for pid, verdict in report.verdicts.items():
            pids.append(pid)
            categories.append(code_of[verdict.category])
            multi_as.append(1 if verdict.multi_as else 0)
            asns.append(-1 if verdict.asn is None else verdict.asn)
            position = 0
            pending = verdict.within_as_changes
            for change in verdict.changes:
                old_addrs.append(change.old_address.value)
                new_addrs.append(change.new_address.value)
                gap_starts.append(change.gap_start)
                gap_ends.append(change.gap_end)
                matched = (position < len(pending)
                           and pending[position] == change)
                if matched:
                    position += 1
                within.append(1 if matched else 0)
            if position != len(pending):
                # Both kernels build within_as_changes as an ordered
                # subset of changes; anything else cannot be encoded as
                # per-change flags.
                raise ValueError(
                    "probe %d: within_as_changes is not an ordered "
                    "subset of changes" % (pid,))
            offsets.append(len(old_addrs))
        meta = {"total": report.total,
                "categories": [category.name for category in ProbeCategory]}
        columns = {
            "probe_ids": np.asarray(pids, dtype=np.int64),
            "categories": np.asarray(categories, dtype=np.uint8),
            "multi_as": np.asarray(multi_as, dtype=np.uint8),
            "asns": np.asarray(asns, dtype=np.int64),
            "change_offsets": np.asarray(offsets, dtype=np.int64),
            "change_old": np.asarray(old_addrs, dtype=np.uint32),
            "change_new": np.asarray(new_addrs, dtype=np.uint32),
            "change_gap_start": np.asarray(gap_starts, dtype=np.float64),
            "change_gap_end": np.asarray(gap_ends, dtype=np.float64),
            "change_within": np.asarray(within, dtype=np.uint8),
        }
        return cls(meta, columns)

    def to_report(self) -> FilterReport:
        """Decode back into the slim (entry-stripped) report."""
        categories = [ProbeCategory[name]
                      for name in self.meta["categories"]]
        pids = self.columns["probe_ids"].tolist()
        codes = self.columns["categories"].tolist()
        multi = self.columns["multi_as"].tolist()
        asns = self.columns["asns"].tolist()
        offsets = self.columns["change_offsets"].tolist()
        old_addrs = self.columns["change_old"].tolist()
        new_addrs = self.columns["change_new"].tolist()
        gap_starts = self.columns["change_gap_start"].tolist()
        gap_ends = self.columns["change_gap_end"].tolist()
        within_flags = self.columns["change_within"].tolist()
        addr = _address_memo()
        verdicts: dict[int, ProbeVerdict] = {}
        for row, pid in enumerate(pids):
            lo, hi = offsets[row], offsets[row + 1]
            changes = [AddressChange(pid,
                                     addr(old_addrs[index]),
                                     addr(new_addrs[index]),
                                     gap_starts[index], gap_ends[index])
                       for index in range(lo, hi)]
            verdicts[pid] = ProbeVerdict(
                probe_id=pid,
                category=categories[codes[row]],
                entries=[],
                changes=changes,
                within_as_changes=[changes[index - lo]
                                   for index in range(lo, hi)
                                   if within_flags[index]],
                multi_as=bool(multi[row]),
                asn=None if asns[row] < 0 else asns[row])
        report = FilterReport(verdicts=verdicts, total=self.meta["total"])
        report.entries_stripped = True  # type: ignore[attr-defined]
        return report


class _ColumnarMapBase:
    """Shared plumbing for ``dict[int, list[...]]`` artifacts.

    Layout: ``probe_ids`` in the dict's insertion order (never
    re-sorted — preserving iteration order is part of the round-trip
    contract) with CSR ``offsets`` slicing the flat per-item columns.
    """

    def __init__(self, meta: dict, columns: dict) -> None:
        self.meta = meta
        self.columns = columns

    def to_columns(self):
        return self.meta, self.columns

    @classmethod
    def from_columns(cls, meta, columns):
        return cls(meta, columns)

    @classmethod
    def _require_numpy(cls) -> None:
        if not HAVE_NUMPY:
            raise RuntimeError("%s requires numpy; gate callers on "
                               "colpack.HAVE_NUMPY" % (cls.__name__,))


@colpack.register
class ColumnarSpanMap(_ColumnarMapBase):
    """``spans_by_probe`` (``dict[int, list[AddressSpan]]``) as columns.

    Persists across processes and code versions — a wire contract
    (RPR010).
    """

    __columnar__ = "span-map-columnar"
    __wire_contract__ = "span-map-columnar"

    @classmethod
    def from_map(cls, spans_by_probe: dict) -> "ColumnarSpanMap":
        cls._require_numpy()
        pids: list[int] = []
        offsets: list[int] = [0]
        addrs: list[int] = []
        starts: list[float] = []
        ends: list[float] = []
        complete_start: list[int] = []
        complete_end: list[int] = []
        for pid, spans in spans_by_probe.items():
            pids.append(pid)
            for span in spans:
                if span.probe_id != pid:
                    raise ValueError(
                        "span probe_id %d under key %d cannot be encoded"
                        % (span.probe_id, pid))
                addrs.append(span.address.value)
                starts.append(span.start)
                ends.append(span.end)
                complete_start.append(1 if span.complete_start else 0)
                complete_end.append(1 if span.complete_end else 0)
            offsets.append(len(addrs))
        columns = {
            "probe_ids": np.asarray(pids, dtype=np.int64),
            "offsets": np.asarray(offsets, dtype=np.int64),
            "address": np.asarray(addrs, dtype=np.uint32),
            "start": np.asarray(starts, dtype=np.float64),
            "end": np.asarray(ends, dtype=np.float64),
            "complete_start": np.asarray(complete_start, dtype=np.uint8),
            "complete_end": np.asarray(complete_end, dtype=np.uint8),
        }
        return cls({}, columns)

    def to_map(self) -> dict:
        pids = self.columns["probe_ids"].tolist()
        offsets = self.columns["offsets"].tolist()
        addrs = self.columns["address"].tolist()
        starts = self.columns["start"].tolist()
        ends = self.columns["end"].tolist()
        complete_start = self.columns["complete_start"].tolist()
        complete_end = self.columns["complete_end"].tolist()
        addr = _address_memo()
        spans_by_probe: dict[int, list[AddressSpan]] = {}
        for row, pid in enumerate(pids):
            lo, hi = offsets[row], offsets[row + 1]
            spans_by_probe[pid] = [
                AddressSpan(pid, addr(addrs[index]), starts[index],
                            ends[index], bool(complete_start[index]),
                            bool(complete_end[index]))
                for index in range(lo, hi)]
        return spans_by_probe


@colpack.register
class ColumnarFloatMap(_ColumnarMapBase):
    """A ``dict[int, list[float]]`` artifact (``durations_by_probe``).

    Persists across processes and code versions — a wire contract
    (RPR010).
    """

    __columnar__ = "float-map-columnar"
    __wire_contract__ = "float-map-columnar"

    @classmethod
    def from_map(cls, values_by_probe: dict) -> "ColumnarFloatMap":
        cls._require_numpy()
        pids = list(values_by_probe)
        offsets: list[int] = [0]
        flat: list[float] = []
        for values in values_by_probe.values():
            flat.extend(values)
            offsets.append(len(flat))
        columns = {
            "probe_ids": np.asarray(pids, dtype=np.int64),
            "offsets": np.asarray(offsets, dtype=np.int64),
            "values": np.asarray(flat, dtype=np.float64),
        }
        return cls({}, columns)

    def to_map(self) -> dict:
        pids = self.columns["probe_ids"].tolist()
        offsets = self.columns["offsets"].tolist()
        values = self.columns["values"].tolist()
        return {pid: values[offsets[row]:offsets[row + 1]]
                for row, pid in enumerate(pids)}


@colpack.register
class ColumnarGapEventMap(_ColumnarMapBase):
    """``gap_events_by_probe`` (``dict[int, list[GapEvent]]``) as columns.

    Cause codes index the cause-name list carried in ``meta`` (the file
    stays self-describing if the enum ever gains members).  Persists
    across processes and code versions — a wire contract (RPR010).
    """

    __columnar__ = "gap-event-map-columnar"
    __wire_contract__ = "gap-event-map-columnar"

    @classmethod
    def from_map(cls, events_by_probe: dict) -> "ColumnarGapEventMap":
        cls._require_numpy()
        code_of = {cause: code for code, cause in enumerate(GapCause)}
        pids: list[int] = []
        offsets: list[int] = [0]
        gap_starts: list[float] = []
        gap_ends: list[float] = []
        causes: list[int] = []
        changed: list[int] = []
        outage: list[float] = []
        for pid, events in events_by_probe.items():
            pids.append(pid)
            for event in events:
                if event.probe_id != pid:
                    raise ValueError(
                        "gap event probe_id %d under key %d cannot be "
                        "encoded" % (event.probe_id, pid))
                gap_starts.append(event.gap_start)
                gap_ends.append(event.gap_end)
                causes.append(code_of[event.cause])
                changed.append(1 if event.address_changed else 0)
                outage.append(event.outage_duration)
            offsets.append(len(causes))
        meta = {"causes": [cause.name for cause in GapCause]}
        columns = {
            "probe_ids": np.asarray(pids, dtype=np.int64),
            "offsets": np.asarray(offsets, dtype=np.int64),
            "gap_start": np.asarray(gap_starts, dtype=np.float64),
            "gap_end": np.asarray(gap_ends, dtype=np.float64),
            "cause": np.asarray(causes, dtype=np.uint8),
            "address_changed": np.asarray(changed, dtype=np.uint8),
            "outage_duration": np.asarray(outage, dtype=np.float64),
        }
        return cls(meta, columns)

    def to_map(self) -> dict:
        causes = [GapCause[name] for name in self.meta["causes"]]
        pids = self.columns["probe_ids"].tolist()
        offsets = self.columns["offsets"].tolist()
        gap_starts = self.columns["gap_start"].tolist()
        gap_ends = self.columns["gap_end"].tolist()
        codes = self.columns["cause"].tolist()
        changed = self.columns["address_changed"].tolist()
        outage = self.columns["outage_duration"].tolist()
        events_by_probe: dict[int, list[GapEvent]] = {}
        for row, pid in enumerate(pids):
            lo, hi = offsets[row], offsets[row + 1]
            events_by_probe[pid] = [
                GapEvent(pid, gap_starts[index], gap_ends[index],
                         causes[codes[index]], bool(changed[index]),
                         outage[index])
                for index in range(lo, hi)]
        return events_by_probe


def decode_value(value: object) -> object:
    """Decode one cached artifact value; non-columnar values pass through.

    The single dispatch point the executor's cache-revive path uses, so
    runs in either kernel mode can read artifacts the other mode stored.
    """
    if isinstance(value, ColumnarFilterArtifact):
        return value.to_report()
    if isinstance(value, (ColumnarSpanMap, ColumnarFloatMap,
                          ColumnarGapEventMap)):
        return value.to_map()
    return value
