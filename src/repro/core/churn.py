"""Address-space churn and administrative renumbering (Section 8).

The paper's conclusion flags two follow-ups we implement here:

* **daily churn** — Richter et al. report the active IPv4 address set at a
  large CDN shifts ~8% day over day; :func:`churn_series` computes the
  equivalent appear/disappear series from observed address spans;
* **administrative renumbering** — reassignment of addresses en masse from
  one prefix to another, of which the paper found a single instance.
  :func:`detect_administrative_renumbering` flags, per AS, days where most
  probes changed address *and* the new addresses land in routed prefixes
  the AS's customers had never been seen in before.  The prefix-novelty
  condition is what separates an administrative migration from ordinary
  periodic renumbering, where every prefix recurs daily.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from repro.core.changes import AddressChange, AddressSpan
from repro.net.ipv4 import IPv4Prefix
from repro.net.pfx2as import IpToAsDataset
from repro.util.stats import fraction
from repro.util.timeutil import DAY


@dataclass(frozen=True)
class ChurnPoint:
    """Day-over-day active-address-set delta."""

    day_index: int
    active: int
    appeared: int
    disappeared: int

    @property
    def churn_fraction(self) -> float:
        """(appeared + disappeared) relative to the previous day's set."""
        return fraction(self.appeared + self.disappeared, self.active)


def daily_active_addresses(spans_by_probe: Mapping[int, Sequence[AddressSpan]],
                           start: float, end: float
                           ) -> dict[int, set[int]]:
    """Addresses observed active on each day (0-based day index).

    A span contributes its address to every day it overlaps.
    """
    total_days = int((end - start) // DAY) + 1
    active: dict[int, set[int]] = defaultdict(set)
    for spans in spans_by_probe.values():
        for span in spans:
            first = max(0, int((span.start - start) // DAY))
            last = min(total_days - 1, int((span.end - start) // DAY))
            for day in range(first, last + 1):
                active[day].add(span.address.value)
    return dict(active)


def churn_series(daily: Mapping[int, set[int]]) -> list[ChurnPoint]:
    """Day-over-day appear/disappear counts (the Richter-style series)."""
    points: list[ChurnPoint] = []
    days = sorted(daily)
    for previous_day, day in zip(days, days[1:]):
        before = daily[previous_day]
        after = daily[day]
        points.append(ChurnPoint(
            day_index=day,
            active=len(before),
            appeared=len(after - before),
            disappeared=len(before - after),
        ))
    return points


def mean_churn(points: Iterable[ChurnPoint]) -> float:
    """Average churn fraction across the series (0 when empty)."""
    values = [p.churn_fraction for p in points]
    if not values:
        return 0.0
    return sum(values) / len(values)


@dataclass(frozen=True)
class AdministrativeRenumbering:
    """One detected mass prefix migration."""

    asn: int
    day_index: int
    probes_changed: int
    probes_total: int
    novel_prefixes: tuple[IPv4Prefix, ...]

    @property
    def changed_fraction(self) -> float:
        """Share of the AS's probes renumbered on the day."""
        return fraction(self.probes_changed, self.probes_total)


def detect_administrative_renumbering(
        changes_by_probe: Mapping[int, Sequence[AddressChange]],
        asn_by_probe: Mapping[int, int],
        ip2as: IpToAsDataset,
        start: float,
        min_probes: int = 5,
        change_fraction: float = 0.6,
        novelty_fraction: float = 0.8,
        warmup_days: int = 30) -> list[AdministrativeRenumbering]:
    """Find days where an AS migrated its customers to fresh prefixes.

    For each AS with at least ``min_probes`` changed probes, a day
    qualifies when at least ``change_fraction`` of the AS's probes changed
    address and at least ``novelty_fraction`` of those changes landed in
    BGP prefixes never seen for this AS before that day.  The first
    ``warmup_days`` of the observation window are never flagged: the
    prefix universe is still filling in, so novelty is meaningless.
    """
    by_asn: dict[int, list[AddressChange]] = defaultdict(list)
    probes_by_asn: dict[int, set[int]] = defaultdict(set)
    for probe_id, changes in changes_by_probe.items():
        asn = asn_by_probe.get(probe_id)
        if asn is None or not changes:
            continue
        probes_by_asn[asn].add(probe_id)
        by_asn[asn].extend(changes)

    events: list[AdministrativeRenumbering] = []
    for asn, changes in by_asn.items():
        if len(probes_by_asn[asn]) < min_probes:
            continue
        changes.sort(key=lambda change: change.time)
        seen_prefixes: set[IPv4Prefix] = set()
        by_day: dict[int, list[tuple[int, IPv4Prefix | None,
                                     IPv4Prefix | None]]] = defaultdict(list)
        for change in changes:
            day = int((change.time - start) // DAY)
            new_prefix = ip2as.bgp_prefix(change.new_address, change.time)
            old_prefix = ip2as.bgp_prefix(change.old_address, change.time)
            by_day[day].append((change.probe_id, new_prefix, old_prefix))
        for day in sorted(by_day):
            entries = by_day[day]
            day_probes = {probe_id for probe_id, _, _ in entries}
            day_prefixes = [p for _, p, _ in entries if p is not None]
            # Old addresses were in use before today; their prefixes are
            # prior knowledge even on an AS's first observed change day.
            seen_prefixes.update(
                p for _, _, p in entries if p is not None)
            novel = [p for p in day_prefixes if p not in seen_prefixes]
            changed_share = fraction(len(day_probes),
                                     len(probes_by_asn[asn]))
            novelty = fraction(len(novel), len(day_prefixes))
            # Warm-up: early in the window, 'novel' prefixes are just the
            # universe filling in.
            warmed_up = day >= warmup_days
            if (warmed_up
                    and changed_share >= change_fraction
                    and day_prefixes
                    and novelty >= novelty_fraction):
                events.append(AdministrativeRenumbering(
                    asn=asn, day_index=day,
                    probes_changed=len(day_probes),
                    probes_total=len(probes_by_asn[asn]),
                    novel_prefixes=tuple(sorted(set(novel))),
                ))
            seen_prefixes.update(day_prefixes)
    events.sort(key=lambda event: (event.day_index, event.asn))
    return events
