"""The total-time-fraction metric (Section 4.1 of the paper).

For a probe with address durations ``D`` and a duration ``d``, the total
time fraction is ``f_d = d * n(d) / sum(D)`` — the share of the probe's
measured address time spent in durations of length ``d``.  It upweights
long durations relative to a plain duration CDF, making periodic
renumbering appear as prominent modes.

Raw durations never repeat exactly (reconnect delays jitter them by
minutes), so durations are first *binned*; the default bin is one hour,
which resolves every period the paper reports (12 h ... 337 h) while
absorbing the ~20-minute TCP-retry offset.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Sequence

from repro.util.stats import CdfPoint, weighted_cdf
from repro.util.timeutil import HOUR

DEFAULT_BIN = HOUR


def bin_duration(duration: float, bin_width: float = DEFAULT_BIN) -> float:
    """Snap a duration to the nearest bin centre (e.g. 23.67 h -> 24 h)."""
    if bin_width <= 0:
        raise ValueError("bin width must be positive")
    return round(duration / bin_width) * bin_width


def binned_time(durations: Iterable[float],
                bin_width: float = DEFAULT_BIN) -> dict[float, float]:
    """Total address time accumulated per duration bin.

    Each duration contributes its *actual* length to its bin, so the values
    sum to ``sum(durations)``.
    """
    accumulated: dict[float, float] = defaultdict(float)
    for duration in durations:
        accumulated[bin_duration(duration, bin_width)] += duration
    return dict(accumulated)


def total_time_fraction(durations: Sequence[float], duration: float,
                        bin_width: float = DEFAULT_BIN) -> float:
    """The paper's ``f_d`` for one probe (or pooled group) at ``d``.

    Zero when the probe has no measured durations.
    """
    total = sum(durations)
    if total == 0:
        return 0.0
    target = bin_duration(duration, bin_width)
    time_at = binned_time(durations, bin_width).get(target, 0.0)
    return time_at / total


def time_fraction_cdf(durations: Sequence[float],
                      bin_width: float = DEFAULT_BIN) -> list[CdfPoint]:
    """Cumulative total-time-fraction distribution (Figures 1-3).

    The x axis is the binned address duration; the y axis is the fraction
    of total address time in durations at most x.  Modes appear as large
    vertical steps.
    """
    return weighted_cdf(binned_time(durations, bin_width).items())


def dominant_duration(durations: Sequence[float],
                      bin_width: float = DEFAULT_BIN
                      ) -> tuple[float, float] | None:
    """Return ``(d, f_d)`` for the bin holding the most total time.

    None when there are no durations.  Ties break toward the longer
    duration, which favours the period over its truncated fragments.
    """
    accumulated = binned_time(durations, bin_width)
    if not accumulated:
        return None
    total = sum(durations)
    best = max(accumulated.items(), key=lambda item: (item[1], item[0]))
    return best[0], best[1] / total


def pooled_durations(groups: Iterable[Sequence[float]]) -> list[float]:
    """Concatenate per-probe duration lists for group-level fractions."""
    pooled: list[float] = []
    for group in groups:
        pooled.extend(group)
    return pooled
