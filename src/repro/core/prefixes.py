"""Prefix-level analysis of address changes (Section 6, Table 7).

For every address change, compare the old and new address at three
granularities: the routed BGP prefix (via the monthly IP-to-AS snapshot in
force when the new address appeared), the enclosing /16, and the enclosing
/8.  The paper's headline: nearly half of all changes cross BGP prefixes,
and even /8-level blacklist widening fails for a third of them.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from repro.core.changes import AddressChange
from repro.net.pfx2as import IpToAsDataset
from repro.util.stats import fraction


@dataclass(frozen=True)
class PrefixComparison:
    """Prefix relationships between an old and new address."""

    change: AddressChange
    diff_bgp: bool | None  # None when either address is unrouted
    diff_slash16: bool
    diff_slash8: bool


def compare_change(change: AddressChange,
                   ip2as: IpToAsDataset) -> PrefixComparison:
    """Classify one change at BGP / /16 / /8 granularity."""
    old_prefix = ip2as.bgp_prefix(change.old_address, change.time)
    new_prefix = ip2as.bgp_prefix(change.new_address, change.time)
    diff_bgp: bool | None
    if old_prefix is None or new_prefix is None:
        diff_bgp = None
    else:
        diff_bgp = old_prefix != new_prefix
    return PrefixComparison(
        change=change,
        diff_bgp=diff_bgp,
        diff_slash16=change.old_address.slash16() != change.new_address.slash16(),
        diff_slash8=change.old_address.slash8() != change.new_address.slash8(),
    )


@dataclass(frozen=True)
class PrefixChangeRow:
    """One Table 7 row: cross-prefix counts for an AS (or 'All')."""

    as_name: str
    asn: int | None
    country: str
    total_changes: int
    diff_bgp: int
    diff_slash16: int
    diff_slash8: int

    @property
    def pct_bgp(self) -> float:
        """Fraction of changes that crossed BGP prefixes."""
        return fraction(self.diff_bgp, self.total_changes)

    @property
    def pct_slash16(self) -> float:
        """Fraction of changes that crossed /16 boundaries."""
        return fraction(self.diff_slash16, self.total_changes)

    @property
    def pct_slash8(self) -> float:
        """Fraction of changes that crossed /8 boundaries."""
        return fraction(self.diff_slash8, self.total_changes)


def _tally(name: str, asn: int | None, country: str,
           comparisons: Sequence[PrefixComparison]) -> PrefixChangeRow:
    return PrefixChangeRow(
        as_name=name, asn=asn, country=country,
        total_changes=len(comparisons),
        diff_bgp=sum(1 for c in comparisons if c.diff_bgp),
        diff_slash16=sum(1 for c in comparisons if c.diff_slash16),
        diff_slash8=sum(1 for c in comparisons if c.diff_slash8),
    )


def prefix_change_table(changes_by_probe: Mapping[int, Iterable[AddressChange]],
                        asn_by_probe: Mapping[int, int],
                        ip2as: IpToAsDataset,
                        as_names: Mapping[int, str],
                        as_countries: Mapping[int, str] | None = None,
                        top: int | None = None
                        ) -> tuple[PrefixChangeRow, list[PrefixChangeRow]]:
    """Build Table 7: the 'All' row plus per-AS rows.

    Per-AS rows are ordered by the number of probes contributing changes
    (the paper lists the ten ASes with the most changed probes); ``top``
    truncates the list.
    """
    all_comparisons: list[PrefixComparison] = []
    by_asn: dict[int, list[PrefixComparison]] = defaultdict(list)
    probes_by_asn: dict[int, set[int]] = defaultdict(set)
    for probe_id, changes in changes_by_probe.items():
        asn = asn_by_probe[probe_id]
        for change in changes:
            comparison = compare_change(change, ip2as)
            all_comparisons.append(comparison)
            by_asn[asn].append(comparison)
            probes_by_asn[asn].add(probe_id)

    overall = _tally("All", None, "", all_comparisons)
    rows = [
        _tally(as_names.get(asn, "AS%d" % asn), asn,
               (as_countries or {}).get(asn, ""), comparisons)
        for asn, comparisons in by_asn.items()
    ]
    rows.sort(key=lambda row: -len(probes_by_asn[row.asn]))
    if top is not None:
        rows = rows[:top]
    return overall, rows
