"""Network-outage detection from k-root pings (Section 3.4).

A network outage is a run of measurement rounds in which *all* pings to the
k-root server were lost *and* the probe's LTS kept growing (it could not
sync with the controller).  The outage starts at the first all-lost round
and ends at the last all-lost round, underestimating the true duration by
up to two round intervals — a bias the paper accepts and so do we.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.atlas.kroot import DEFAULT_CADENCE
from repro.atlas.types import KRootPingRecord


@dataclass(frozen=True)
class NetworkOutage:
    """One detected network outage at a probe."""

    probe_id: int
    start: float
    end: float

    @property
    def duration(self) -> float:
        """Detected (underestimated) outage length."""
        return self.end - self.start

    def overlaps(self, window_start: float, window_end: float) -> bool:
        """True when the outage touches ``[window_start, window_end]``."""
        return self.start <= window_end and window_start <= self.end


def detect_network_outages(records: Sequence[KRootPingRecord],
                           lts_bound: float = DEFAULT_CADENCE
                           ) -> list[NetworkOutage]:
    """Scan a probe's rounds for all-lost runs with growing LTS.

    A run of length one only qualifies when its LTS already exceeds the
    healthy bound — a single lost round with a fresh LTS is plain packet
    loss, not an outage.
    """
    outages: list[NetworkOutage] = []
    run: list[KRootPingRecord] = []

    def flush() -> None:
        if not run:
            return
        lts_values = [record.lts for record in run]
        growing = all(b > a for a, b in zip(lts_values, lts_values[1:]))
        if growing and (len(run) > 1 or lts_values[0] > lts_bound):
            outages.append(NetworkOutage(
                run[0].probe_id, run[0].timestamp, run[-1].timestamp))
        run.clear()

    for record in records:
        if record.all_lost:
            run.append(record)
        else:
            flush()
    flush()
    return outages
