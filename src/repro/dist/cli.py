"""``repro-dist``: run the analysis over sockets.

Usage::

    # one process, N worker threads over loopback sockets:
    repro-dist coordinator --data bundle/ --loopback 2

    # real distribution — coordinator in one terminal:
    repro-dist coordinator --data bundle/ --workers 2 --port 7757
    # ...and a worker per machine/terminal:
    repro-dist worker --connect HOST:7757 --data bundle/ --worker-id w0

The coordinator prints the same report, ``fingerprint`` and ``digest``
lines as ``repro-run`` — two runs printing the same digest agree on
every table and figure, which is exactly the bit-identity contract the
CI distributed job checks by diffing those lines against a serial run.
Workers must load the *same* bundle: the HELLO handshake rejects a
fingerprint or code-version mismatch before any shard is granted.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

from repro import obs
from repro.dist.coordinator import (
    DistConfig,
    LeaseServer,
    dist_runner_for_bundle,
    dist_runner_for_world,
)
from repro.dist.loopback import run_loopback
from repro.dist.worker import DistWorker
from repro.errors import ReproError
from repro.runtime.digest import results_digest
from repro.runtime.workers import WorkerContext
from repro.util.colpack import HAVE_NUMPY
from repro.util import fingerprint as fp
from repro.util import timeutil


def parse_inject_net_spec(spec: str):
    """Parse an ``--inject-net`` spec into a ``NetworkFaultPlan``.

    Comma-separated ``key=value`` pairs::

        --inject-net seed=7,msg_drop=0.1
        --inject-net seed=1,msg_garble=0.2,conn_disconnect=0.05
    """
    from repro.faults.network import NetworkFaultPlan
    values: dict[str, object] = {}
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        if "=" not in part:
            raise ValueError("bad --inject-net field %r (expected "
                             "key=value)" % (part,))
        key, _, raw = part.partition("=")
        key = key.strip()
        if key == "seed":
            values[key] = int(raw)
        elif key in ("msg_drop", "msg_garble", "msg_delay",
                     "conn_disconnect", "delay_s"):
            values[key] = float(raw)
        else:
            raise ValueError("unknown --inject-net field %r" % (key,))
    return NetworkFaultPlan(**values)


def _add_bundle_arguments(parser: argparse.ArgumentParser,
                          simulate_default: bool) -> None:
    parser.add_argument("--data", metavar="DIR",
                        default=None, required=not simulate_default,
                        help="dataset bundle written by repro-simulate"
                             + (" (default: simulate inline)"
                                if simulate_default else ""))
    if simulate_default:
        parser.add_argument("--scale", type=float, default=0.1,
                            help="inline scenario scale "
                                 "(default %(default)s)")
        parser.add_argument("--seed", type=int, default=2015,
                            help="inline scenario seed "
                                 "(default %(default)s)")
    parser.add_argument("--read-policy", choices=["strict", "repair"],
                        default="strict",
                        help="bundle ingestion contract "
                             "(default %(default)s)")


def _load_bundle(args: argparse.Namespace):
    from repro.sim.io import load_bundle
    from repro.util.ingest import IngestReport, ReadPolicy
    policy = ReadPolicy(args.read_policy)
    report = IngestReport()
    bundle = load_bundle(args.data, policy=policy, report=report)
    obs.record_ingest(report)
    if policy is ReadPolicy.REPAIR and not report.clean:
        print(report.render(), file=sys.stderr)
    return bundle


def _coordinator_parser(subparsers) -> None:
    parser = subparsers.add_parser(
        "coordinator",
        help="serve shard leases to workers and merge their results")
    _add_bundle_arguments(parser, simulate_default=True)
    parser.add_argument("--host", default="127.0.0.1",
                        help="interface to listen on "
                             "(default %(default)s)")
    parser.add_argument("--port", type=int, default=0,
                        help="port to listen on (default: ephemeral)")
    parser.add_argument("--port-file", metavar="FILE", default=None,
                        help="write the bound port to FILE (scripting "
                             "aid for ephemeral ports)")
    parser.add_argument("--workers", type=int, default=2, metavar="N",
                        help="expected worker count — a shard-count "
                             "hint, output is identical for every N "
                             "(default %(default)s)")
    parser.add_argument("--loopback", type=int, default=None,
                        metavar="N",
                        help="serve N in-process worker threads over "
                             "loopback sockets instead of waiting for "
                             "external workers")
    parser.add_argument("--shards", type=int, default=None, metavar="M",
                        help="shard count override (default workers*4)")
    parser.add_argument("--cache-dir", metavar="DIR", default=None,
                        help="shared artifact cache; also the "
                             "checkpoint store workers short-circuit "
                             "from")
    parser.add_argument("--no-cache", action="store_true",
                        help="ignore --cache-dir and recompute "
                             "everything")
    parser.add_argument("--resume", action="store_true",
                        help="reload completed shard checkpoints before "
                             "serving each stage")
    parser.add_argument("--max-retries", type=int,
                        default=timeutil.MAX_SHARD_RETRIES, metavar="K",
                        help="failed attempts per shard before its "
                             "probes are quarantined "
                             "(default %(default)s)")
    parser.add_argument("--lease-deadline", type=float,
                        default=timeutil.LEASE_DEADLINE_S, metavar="SEC",
                        help="per-lease execution budget before the "
                             "shard is reassigned (default %(default)s)")
    parser.add_argument("--backoff-base", type=float,
                        default=timeutil.BACKOFF_BASE_S, metavar="SEC",
                        help="first retry delay; attempt n waits "
                             "base*2**(n-1) (default %(default)s)")
    parser.add_argument("--drain-grace", type=float,
                        default=timeutil.DIST_DRAIN_GRACE_S,
                        metavar="SEC",
                        help="after the run, keep answering worker "
                             "pulls with DRAIN(done) for SEC before "
                             "closing (default %(default)s)")
    parser.add_argument("--inject-net", metavar="SPEC", default=None,
                        help="network-fault plan for --loopback "
                             "workers, e.g. seed=7,msg_drop=0.1 (kinds: "
                             "msg_drop, msg_garble, msg_delay, "
                             "conn_disconnect)")
    parser.add_argument("--trace", metavar="FILE", default=None,
                        help="write a Chrome trace_event JSON of the "
                             "run (inspect with repro-obs report FILE)")


def _worker_parser(subparsers) -> None:
    parser = subparsers.add_parser(
        "worker", help="pull and compute shard leases from a "
                       "coordinator")
    parser.add_argument("--connect", required=True, metavar="HOST:PORT",
                        help="coordinator address")
    _add_bundle_arguments(parser, simulate_default=False)
    parser.add_argument("--worker-id", default=None,
                        help="stable worker identity (default: "
                             "worker-<pid>)")
    parser.add_argument("--cache-dir", metavar="DIR", default=None,
                        help="shared artifact cache to short-circuit "
                             "leases from (and checkpoint into)")
    parser.add_argument("--no-cache", action="store_true",
                        help="ignore --cache-dir")
    parser.add_argument("--inject-net", metavar="SPEC", default=None,
                        help="network-fault plan for this worker's "
                             "channel, e.g. seed=7,msg_drop=0.1")
    parser.add_argument("--socket-timeout", type=float,
                        default=timeutil.DIST_SOCKET_TIMEOUT_S,
                        metavar="SEC",
                        help="socket receive timeout "
                             "(default %(default)s)")
    parser.add_argument("--reconnect-delay", type=float,
                        default=timeutil.DIST_RECONNECT_DELAY_S,
                        metavar="SEC",
                        help="pause before redialing a lost coordinator "
                             "(default %(default)s)")
    parser.add_argument("--max-reconnects", type=int, default=100,
                        metavar="K",
                        help="give up after K reconnects "
                             "(default %(default)s)")


def _dist_config(args: argparse.Namespace) -> DistConfig:
    cache_dir = None if args.no_cache else args.cache_dir
    workers = args.loopback if args.loopback else args.workers
    return DistConfig(
        host=args.host, port=args.port, workers=max(1, workers),
        shards=args.shards, cache_dir=cache_dir, resume=args.resume,
        max_retries=args.max_retries,
        lease_deadline_s=args.lease_deadline,
        backoff_base_s=args.backoff_base)


def _run_coordinator(args: argparse.Namespace) -> int:
    plan = None
    if args.inject_net:
        if not args.loopback:
            print("--inject-net on the coordinator requires --loopback "
                  "(real workers carry their own plans)",
                  file=sys.stderr)
            return 2
        plan = parse_inject_net_spec(args.inject_net)
    config = _dist_config(args)
    server = LeaseServer(config)
    if args.port_file:
        with open(args.port_file, "w", encoding="utf-8") as stream:
            stream.write("%d\n" % server.port)
    print("listening    %s:%d" % (server.host, server.port),
          flush=True)
    try:
        if args.data is not None:
            bundle = _load_bundle(args)
            runner = dist_runner_for_bundle(bundle, config,
                                            server=server)
            context_source = bundle
        else:
            from repro.sim.scenario import paper_scenario
            from repro.sim.world import build_world
            world = build_world(paper_scenario(scale=args.scale,
                                               seed=args.seed))
            runner = dist_runner_for_world(world, config, server=server)
            context_source = world
        if args.loopback:
            context = WorkerContext(
                connlog=context_source.connlog,
                archive=context_source.archive,
                ip2as=context_source.ip2as,
                kroot=context_source.kroot,
                uptime=context_source.uptime,
                min_connected=runner._min_connected,
                columnar=HAVE_NUMPY)
            plans = None
            if plan is not None:
                # One plan shared by every loopback worker: draws key on
                # the per-worker channel id, so each channel still sees
                # its own deterministic fault sequence.
                plans = {"w%d" % i: plan for i in range(args.loopback)}
            run = run_loopback(runner, context,
                               worker_count=args.loopback,
                               fault_plans=plans)
            results, digest = run.results, run.digest
            summaries = run.summaries
            for worker_id, error in sorted(run.worker_errors.items()):
                print("worker %s died: %s" % (worker_id, error),
                      file=sys.stderr)
        else:
            results = runner.run()
            server.finish()
            digest = results_digest(results)
            summaries = None
            # Keep answering pulls with DRAIN(done) so workers exit
            # cleanly instead of dying on a vanished coordinator.
            time.sleep(args.drain_grace)
    except ReproError as error:
        print(error, file=sys.stderr)
        return 1
    finally:
        server.finish()
        server.close()

    print(runner.report.render())
    for worker_id, info in sorted(server.worker_summary().items()):
        print("worker       %s: %d leases, %d cache hits, "
              "%d B out, %d B in"
              % (worker_id, info["leases"], info["cache_hits"],
                 info["bytes_sent"], info["bytes_received"]))
    print("fingerprint  %s" % (fp.short(runner.fingerprint) or "-"))
    print("digest       %s" % fp.short(digest))
    if plan is not None and summaries is not None:
        from repro.faults.network import reconcile_network
        print(reconcile_network(
            plan, [summary.injected for summary in summaries.values()],
            runner.report.resilience).render())
    if args.trace is not None:
        obs.write_trace(args.trace, meta={
            "jobs": runner.config.jobs,
            "start_method": None,
            "fingerprint": runner.fingerprint,
            "results_digest": digest,
        })
        print("trace        %s" % args.trace)
    return 0


def _run_worker(args: argparse.Namespace) -> int:
    host, _, port_text = args.connect.rpartition(":")
    if not host or not port_text.isdigit():
        print("--connect expects HOST:PORT, got %r" % (args.connect,),
              file=sys.stderr)
        return 2
    plan = parse_inject_net_spec(args.inject_net) \
        if args.inject_net else None
    cache = None
    if args.cache_dir and not args.no_cache:
        from repro.runtime.cache import ArtifactCache
        cache = ArtifactCache(args.cache_dir)
    try:
        bundle = _load_bundle(args)

        def install(min_connected: float) -> None:
            from repro.runtime import workers as worker_runtime
            worker_runtime.init_worker(WorkerContext(
                connlog=bundle.connlog, archive=bundle.archive,
                ip2as=bundle.ip2as, kroot=bundle.kroot,
                uptime=bundle.uptime, min_connected=min_connected,
                columnar=HAVE_NUMPY))

        worker = DistWorker(
            host=host, port=int(port_text),
            worker_id=args.worker_id or "worker-%d" % os.getpid(),
            fingerprint=bundle.fingerprint, cache=cache,
            fault_plan=plan, capture_obs=True, install_context=install,
            socket_timeout_s=args.socket_timeout,
            reconnect_delay_s=args.reconnect_delay,
            max_reconnects=args.max_reconnects)
        summary = worker.run()
    except ReproError as error:
        print(error, file=sys.stderr)
        return 1
    print("worker       %s: %d leases, %d cache hits, %d errors, "
          "%d reconnects"
          % (summary.worker_id, summary.leases_served,
             summary.cache_hits, summary.errors_reported,
             summary.reconnects))
    if summary.injected:
        print("injected     %s"
              % ", ".join("%s=%d" % (kind, count) for kind, count
                          in sorted(summary.injected.items())))
    return 0


def main(argv: list[str] | None = None) -> int:
    """Coordinate or serve a socket-distributed analysis run."""
    parser = argparse.ArgumentParser(
        description="Distribute the analysis stage graph over sockets: "
                    "a coordinator leases shards to pull-based workers "
                    "and merges their sealed envelopes into the same "
                    "digest a serial run prints")
    subparsers = parser.add_subparsers(dest="command", required=True)
    _coordinator_parser(subparsers)
    _worker_parser(subparsers)
    args = parser.parse_args(argv)
    if args.command == "coordinator":
        return _run_coordinator(args)
    return _run_worker(args)


if __name__ == "__main__":
    raise SystemExit(main())
