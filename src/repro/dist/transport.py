"""Socket channels speaking the framed dist protocol.

:class:`Channel` wraps one connected socket with exact-length framing,
integrity-checked receive, and a locked ``request`` round-trip (the
worker's heartbeat thread and its serve loop share one socket, so whole
conversational turns must interleave, never half-frames).

:class:`FaultyChannel` is the deterministic network saboteur: before
every send it consults an inert fault plan (duck-typed
``fault_on(channel_id, direction, msg_type, seq)``, e.g.
:class:`repro.faults.network.NetworkFaultPlan`) and drops, garbles,
delays, or disconnects accordingly, logging every injection so
:func:`repro.faults.network.reconcile_network` can account the run
exactly.  Faults are injected on the *send* side only — that is where
one end can deterministically decide a message's fate; the receive side
then exercises the real recovery paths (timeouts, digest failures,
reconnects) with no cooperation.
"""

from __future__ import annotations

import socket
import threading
import time

from repro.dist import protocol
from repro.errors import WireProtocolError

#: Fault-kind strings this module acts on, mirroring the network values
#: of ``repro.faults.injectors.FaultKind`` (kept as strings so the plan
#: object stays duck-typed and the faults layer stays below this one).
FAULT_MSG_DROP = "msg-drop"
FAULT_MSG_GARBLE = "msg-garble"
FAULT_MSG_DELAY = "msg-delay"
FAULT_CONN_DISCONNECT = "conn-disconnect"


class Channel:
    """One framed, request/response conversation over a socket."""

    def __init__(self, sock: socket.socket, channel_id: str = "") -> None:
        self._sock = sock
        self.channel_id = channel_id
        self.bytes_sent = 0
        self.bytes_received = 0
        self._lock = threading.Lock()

    # -- raw framing ---------------------------------------------------------

    def _recv_exact(self, count: int) -> bytes:
        chunks: list[bytes] = []
        remaining = count
        while remaining:
            chunk = self._sock.recv(remaining)
            if not chunk:
                raise WireProtocolError(
                    "connection closed mid-frame (%d of %d bytes)"
                    % (count - remaining, count))
            chunks.append(chunk)
            remaining -= len(chunk)
        # Each Channel belongs to one conversation: the only cross-thread
        # sharing is the worker's heartbeat, serialized by ``request``'s
        # lock, so the byte counters never race in practice.
        self.bytes_received += count  # repro: noqa[RPR011] -- per-connection counter; heartbeat/serve sharing is serialized by self._lock in request()
        return b"".join(chunks)

    def _send_raw(self, frame: bytes) -> None:
        self._sock.sendall(frame)
        self.bytes_sent += len(frame)  # repro: noqa[RPR011] -- per-connection counter; heartbeat/serve sharing is serialized by self._lock in request()

    def _send(self, message: object) -> None:
        self._send_raw(protocol.pack(message))

    def _recv(self) -> object:
        code, length, digest = protocol.unpack_header(
            self._recv_exact(protocol.HEADER.size))
        payload = self._recv_exact(length) if length else b""
        return protocol.unpack_payload(code, payload, digest)

    # -- public --------------------------------------------------------------

    def send(self, message: object) -> None:
        """Send one message (reply side: recv/send pairs need no lock)."""
        with self._lock:
            self._send(message)

    def recv(self) -> object:
        """Receive one message."""
        return self._recv()

    def request(self, message: object) -> object:
        """One atomic round-trip: send ``message``, return the reply."""
        with self._lock:
            self._send(message)
            return self._recv()

    def close(self) -> None:
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass


class FaultyChannel(Channel):
    """A :class:`Channel` whose sends pass through a fault plan.

    ``seq`` counts this channel's send attempts, so a plan's placements
    are a pure function of the conversation position; ``injected`` logs
    what actually fired, per kind, for exact reconciliation.
    """

    def __init__(self, sock: socket.socket, plan: object,
                 channel_id: str = "") -> None:
        super().__init__(sock, channel_id=channel_id)
        self._plan = plan
        self._seq = 0
        self.injected: dict[str, int] = {}

    def _send(self, message: object) -> None:
        name = protocol.MSG_NAMES.get(
            protocol.MESSAGE_TYPES.get(type(message), 0), "unknown")
        seq = self._seq
        self._seq += 1
        kind = self._plan.fault_on(self.channel_id, "send", name, seq)
        if kind is None:
            super()._send(message)
            return
        self.injected[kind] = self.injected.get(kind, 0) + 1
        if kind == FAULT_MSG_DROP:
            # Swallow the frame: the peer never sees the request, so
            # this end's recv times out and the worker reconnects.
            return
        if kind == FAULT_MSG_GARBLE:
            frame = bytearray(protocol.pack(message))
            # Flip the last payload byte; the header (and its digest
            # field) stays intact so the receiver's integrity check —
            # not a parse accident — is what catches it.
            frame[-1] ^= 0xFF
            self._send_raw(bytes(frame))
            return
        if kind == FAULT_MSG_DELAY:
            time.sleep(float(getattr(self._plan, "delay_s", 0.05)))
            super()._send(message)
            return
        if kind == FAULT_CONN_DISCONNECT:
            self.close()
            raise WireProtocolError(
                "injected disconnect on %s (seq %d)"
                % (self.channel_id or "channel", seq))
        # An unrecognized kind is a plan/transport version skew: fail
        # loudly rather than silently not injecting.
        raise WireProtocolError(
            "fault plan placed unknown network fault kind %r" % (kind,))


def connect(host: str, port: int, timeout_s: float,
            channel_id: str = "", plan: object | None = None) -> Channel:
    """Dial the coordinator; returns a (possibly faulty) channel."""
    sock = socket.create_connection((host, port), timeout=timeout_s)
    try:
        sock.settimeout(timeout_s)
        if plan is not None:
            return FaultyChannel(sock, plan, channel_id=channel_id)
        return Channel(sock, channel_id=channel_id)
    # Cleanup-only handler: the raw socket must not leak when channel
    # construction fails (including KeyboardInterrupt); the exception is
    # re-raised untouched.
    except BaseException:  # repro: noqa[RPR004]
        sock.close()
        raise
