"""The framed, versioned message protocol between coordinator and workers.

Every message travels in one frame::

    !4s   magic          b"RPRD"
    B     version        PROTOCOL_VERSION
    B     message type   MSG_HELLO .. MSG_DRAIN
    I     payload length bytes of pickle that follow the header
    32s   payload digest raw SHA-256 of the payload bytes

followed by ``length`` bytes of pickled message dataclass.  The digest
makes corruption *detectable by construction*: a garbled frame fails the
hash check and surfaces as :class:`~repro.errors.WireProtocolError`
before a byte of it is unpickled, so a faulty transport can cost a
retry, never a poisoned merge.  The magic/version prefix means a stray
client (or a worker running older protocol code) is rejected at the
first frame instead of mis-parsing traffic.

The conversation is strict request/response and the worker always
speaks first:

========== =============================== ============================
worker sends   coordinator replies          meaning
========== =============================== ============================
HELLO          HELLO                        identity + compatibility
                                            handshake (fingerprint,
                                            code version, protocol)
LEASE (req)    LEASE (grant) | DRAIN        pull one shard of work;
                                            DRAIN(done=False) = none
                                            ready yet, poll again;
                                            DRAIN(done=True) = exit
RESULT         HEARTBEAT                    ship a sealed envelope (or
                                            a kernel error); ack
HEARTBEAT      HEARTBEAT                    liveness ping mid-compute
DRAIN          DRAIN(done=True)             polite goodbye
========== =============================== ============================

Payloads are pickles, exactly like the process-pool path and the
artifact cache: the cluster is trusted (workers compute over the same
bundle the coordinator serves), and the envelopes being shipped are the
pickled :class:`~repro.runtime.workers.ShardResult` objects the pool
path already exchanges.  Every message dataclass is pinned as an RPR010
wire contract, as are the frame constants themselves.
"""

from __future__ import annotations

import hashlib
import pickle
import struct
from dataclasses import dataclass, field

from repro.errors import WireProtocolError

#: Frame prefix: reject non-protocol traffic on the first four bytes.
MAGIC = b"RPRD"
#: Bumped on any frame-layout or message-semantics change; both ends
#: refuse to converse across versions (mixed-version shards must never
#: merge silently).
PROTOCOL_VERSION = 1

MSG_HELLO = 1
MSG_LEASE = 2
MSG_RESULT = 3
MSG_HEARTBEAT = 4
MSG_DRAIN = 5

#: Human-readable names for logging and fault-plan draw keys.
MSG_NAMES = {
    MSG_HELLO: "hello",
    MSG_LEASE: "lease",
    MSG_RESULT: "result",
    MSG_HEARTBEAT: "heartbeat",
    MSG_DRAIN: "drain",
}

#: Hard ceiling on one frame's payload: far above any paper-scale
#: envelope, low enough that a garbled length field cannot make the
#: receiver try to buffer gigabytes.
MAX_FRAME_BYTES = 256 * 1024 * 1024

HEADER = struct.Struct("!4sBBI32s")

#: The frame layout is persistence across a process boundary in its
#: purest form, so its constants are a wire contract (RPR010).
__wire_contract__ = {
    "dist-frame": ("MAGIC", "PROTOCOL_VERSION", "MSG_HELLO", "MSG_LEASE",
                   "MSG_RESULT", "MSG_HEARTBEAT", "MSG_DRAIN",
                   "MAX_FRAME_BYTES"),
}


@dataclass(frozen=True)
class Hello:
    """Identity handshake, sent by the worker and echoed (with the
    coordinator's identity) as the reply.

    The coordinator's reply carries *its* ``fingerprint``,
    ``code_version`` and ``min_connected`` so the worker can verify it
    loaded the same bundle and runs the same analysis code — both sides
    reject a mismatch, because a shard computed by divergent code must
    never reach the merge.
    """

    __wire_contract__ = "dist-hello"

    worker_id: str
    protocol_version: int
    code_version: str
    fingerprint: str
    min_connected: float
    role: str = "worker"  # "worker" | "coordinator"


@dataclass(frozen=True)
class Lease:
    """One shard of work, granted to one worker until a deadline.

    The same class serves the worker's pull (``lease_id == -1``, every
    other field empty — see :meth:`request`) and the coordinator's
    grant.  ``items`` is the shard's work-item tuple (probe ids, or
    ``(probe_id, reboots)`` pairs for the ``gaps`` stage);
    ``deadline_s`` is the execution budget whose clock starts at grant;
    ``cache_key`` is the shard's checkpoint key when the run has a
    shared artifact cache (empty otherwise), letting the worker
    short-circuit compute with a verified cache hit.
    """

    __wire_contract__ = "dist-lease"

    lease_id: int
    stage: str
    shard_index: int
    attempt: int
    items: tuple = ()
    deadline_s: float = 0.0
    cache_key: str = ""

    @classmethod
    def request(cls) -> "Lease":
        """The worker's pull: grant me whatever shard is ready."""
        return cls(lease_id=-1, stage="", shard_index=-1, attempt=0)

    @property
    def is_request(self) -> bool:
        return self.lease_id < 0


@dataclass(frozen=True)
class Result:
    """One lease's outcome: a sealed envelope, or a kernel error.

    ``envelope`` is the sealed :class:`~repro.runtime.workers.
    ShardResult` (``None`` when the kernel raised, with ``error``
    carrying the rendered exception); ``cache_hit`` records that the
    worker served it from the shared artifact cache without computing.
    """

    __wire_contract__ = "dist-result"

    lease_id: int
    stage: str
    shard_index: int
    attempt: int
    envelope: object | None = None
    error: str = ""
    cache_hit: bool = False


@dataclass(frozen=True)
class Heartbeat:
    """Liveness ping (worker mid-compute) and the generic acknowledgment
    the coordinator replies with.  Refreshes the worker's last-seen
    bookkeeping only — the lease deadline stays hard, so a worker that
    heartbeats while its kernel is wedged is still declared hung.
    """

    __wire_contract__ = "dist-heartbeat"

    worker_id: str
    lease_id: int = -1


@dataclass(frozen=True)
class Drain:
    """Back off or shut down.

    ``done=False`` means "no work ready right now, poll again after
    ``retry_after_s``" (between stages, or while every remaining shard
    waits out a backoff); ``done=True`` means the run is over (or this
    worker was rejected) and the worker should exit.
    """

    __wire_contract__ = "dist-drain"

    done: bool
    reason: str = ""
    retry_after_s: float = 0.0


#: message class -> frame type code (and back).
MESSAGE_TYPES = {
    Hello: MSG_HELLO,
    Lease: MSG_LEASE,
    Result: MSG_RESULT,
    Heartbeat: MSG_HEARTBEAT,
    Drain: MSG_DRAIN,
}
TYPE_CLASSES = {code: cls for cls, code in MESSAGE_TYPES.items()}


def pack(message: object) -> bytes:
    """One complete frame (header + payload) for ``message``."""
    code = MESSAGE_TYPES.get(type(message))
    if code is None:
        raise WireProtocolError(
            "cannot send %r over the dist protocol" % (type(message),))
    payload = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    if len(payload) > MAX_FRAME_BYTES:
        raise WireProtocolError(
            "frame payload of %d bytes exceeds the %d-byte ceiling"
            % (len(payload), MAX_FRAME_BYTES))
    digest = hashlib.sha256(payload).digest()
    return HEADER.pack(MAGIC, PROTOCOL_VERSION, code, len(payload),
                       digest) + payload


def unpack_header(header: bytes) -> tuple[int, int, bytes]:
    """Validate a frame header; returns ``(type code, length, digest)``."""
    if len(header) != HEADER.size:
        raise WireProtocolError(
            "short frame header: %d of %d bytes" % (len(header),
                                                    HEADER.size))
    magic, version, code, length, digest = HEADER.unpack(header)
    if magic != MAGIC:
        raise WireProtocolError("bad frame magic %r" % (magic,))
    if version != PROTOCOL_VERSION:
        raise WireProtocolError(
            "protocol version mismatch: peer speaks %d, this end speaks "
            "%d" % (version, PROTOCOL_VERSION))
    if code not in TYPE_CLASSES:
        raise WireProtocolError("unknown message type %d" % (code,))
    if length > MAX_FRAME_BYTES:
        raise WireProtocolError(
            "frame claims %d payload bytes, over the %d-byte ceiling"
            % (length, MAX_FRAME_BYTES))
    return code, length, digest


def unpack_payload(code: int, payload: bytes, digest: bytes) -> object:
    """Verify and unpickle one frame's payload into its message."""
    if hashlib.sha256(payload).digest() != digest:
        raise WireProtocolError(
            "frame payload failed its integrity digest (%s message, "
            "%d bytes)" % (MSG_NAMES.get(code, code), len(payload)))
    try:
        message = pickle.loads(payload)
    # A digest-valid frame whose pickle still fails can only come from a
    # peer running incompatible code; pickle surfaces that as wildly
    # varied types (UnpicklingError, AttributeError, ImportError, ...),
    # all of which must become one typed protocol error, not a crash.
    except Exception as error:  # repro: noqa[RPR004]
        raise WireProtocolError(
            "frame payload did not unpickle: %s" % (error,)) from error
    expected = TYPE_CLASSES[code]
    if not isinstance(message, expected):
        raise WireProtocolError(
            "frame typed %s carried a %s payload"
            % (MSG_NAMES.get(code, code), type(message).__name__))
    return message
