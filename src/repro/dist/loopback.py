"""Loopback mode: coordinator plus N in-process worker threads.

One process, real sockets: the coordinator's :class:`~repro.dist.
coordinator.LeaseServer` listens on ``127.0.0.1`` and ``N`` worker
threads dial it over the loopback interface, exercising the entire wire
protocol — framing, handshake, leases, sealed envelopes, drain — with
none of the multi-process orchestration.  This is what the benchmark
harness, the CI smoke job and most of the dist test suite run.

The worker threads share the coordinator's process, which has two
consequences this module owns:

* the dataset context is installed once (``fork``-style) via
  :func:`repro.runtime.workers.init_worker` and shared by every thread
  — the kernels' per-probe memoization is pure, so concurrent threads
  at worst recompute a verdict they would have shared;
* the obs span collector is process-global, so loopback workers run
  with ``capture_obs=False`` and seal observability-silent envelopes —
  otherwise a worker thread would drain (steal) the coordinator's own
  spans mid-run.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.dist.coordinator import DistRunner
from repro.dist.worker import DistWorker, WorkerSummary
from repro.runtime import workers
from repro.runtime.cache import ArtifactCache
from repro.runtime.digest import results_digest
from repro.util import timeutil


@dataclass
class LoopbackRun:
    """Everything a loopback run produced."""

    results: object
    report: object
    digest: str
    summaries: dict[str, WorkerSummary]
    #: worker_id -> stringified exception, for workers that died.
    worker_errors: dict[str, str]


def run_loopback(runner: DistRunner, context: workers.WorkerContext,
                 worker_count: int = 2,
                 fault_plans: dict[str, object] | None = None,
                 socket_timeout_s: float = timeutil.DIST_SOCKET_TIMEOUT_S,
                 join_timeout_s: float = timeutil.DIST_DRAIN_GRACE_S
                 ) -> LoopbackRun:
    """Run the full pipeline through the wire with in-process workers.

    ``fault_plans`` maps worker ids (``"w0"``, ``"w1"``, ...) to network
    fault plans for the workers that should run over a faulty channel.
    Worker ids are fixed and ordinal so fault seeding is deterministic.
    """
    if worker_count < 1:
        raise ValueError("worker_count must be >= 1, got %r"
                         % (worker_count,))
    server = runner._server
    workers.init_worker(context)
    summaries: dict[str, WorkerSummary] = {}
    errors: dict[str, str] = {}
    threads: list[threading.Thread] = []
    try:
        for ordinal in range(worker_count):
            worker_id = "w%d" % ordinal
            cache = None
            if runner.config.cache_dir is not None:
                # Each worker thread gets its own cache *handle* over the
                # shared directory: writes are atomic, but one shared
                # stats object across threads would not be.
                cache = ArtifactCache(
                    runner.config.cache_dir,
                    max_bytes=runner.config.max_cache_bytes)
            worker = DistWorker(
                host=server.host, port=server.port, worker_id=worker_id,
                fingerprint=runner.fingerprint, cache=cache,
                fault_plan=(fault_plans or {}).get(worker_id),
                capture_obs=False, socket_timeout_s=socket_timeout_s)

            def serve(worker: DistWorker = worker,
                      worker_id: str = worker_id) -> None:
                try:
                    summaries[worker_id] = worker.run()
                # A dead worker is a *finding* for the caller (the run
                # may still complete degraded), never a silent loss.
                except Exception as error:  # repro: noqa[RPR004]
                    summaries[worker_id] = worker.summary
                    errors[worker_id] = "%s: %s" % (
                        type(error).__name__, error)

            thread = threading.Thread(
                target=serve, daemon=True,
                name="repro-dist-%s" % worker_id)
            threads.append(thread)
            thread.start()
        results = runner.run()
    finally:
        server.finish()
        for thread in threads:
            thread.join(timeout=join_timeout_s)
        server.close()
        workers.reset_worker()
    return LoopbackRun(
        results=results, report=runner.report,
        digest=results_digest(results), summaries=summaries,
        worker_errors=errors)
