"""Socket-distributed execution of the analysis stage graph.

A coordinator (:mod:`repro.dist.coordinator`) partitions each fan-out
stage into the same sorted-contiguous-balanced shards the process-pool
executor uses and serves them as *leases* to pull-based workers
(:mod:`repro.dist.worker`) over a framed, versioned, integrity-checked
protocol (:mod:`repro.dist.protocol`).  Workers run the existing shard
kernels and ship back the existing sealed envelopes, so the ordered
merge — and therefore the results digest — is bit-identical to
``repro-run --jobs 1``, including under injected worker crashes and
network faults (:mod:`repro.faults.network`).

Supervision reuses the runtime's policy wholesale: leases carry hard
deadlines, failures are charged per shard with deterministic backoff,
lost workers get their shards reassigned, and exhausted retry budgets
quarantine probes into the same resilience accounting ``repro-run``
reports.  The artifact cache doubles as the shared store — leases carry
checkpoint keys workers can short-circuit from, and the coordinator's
checkpoints interoperate with ``repro-run --resume``.

Entry points: ``repro-dist coordinator`` / ``repro-dist worker``
(:mod:`repro.dist.cli`), or in-process via
:func:`repro.dist.loopback.run_loopback`.
"""

from repro.dist.board import LeaseBoard
from repro.dist.coordinator import (
    DistConfig,
    DistRunner,
    LeaseServer,
    dist_runner_for_bundle,
    dist_runner_for_world,
)
from repro.dist.loopback import LoopbackRun, run_loopback
from repro.dist.worker import DistWorker, WorkerSummary

__all__ = [
    "DistConfig",
    "DistRunner",
    "DistWorker",
    "LeaseBoard",
    "LeaseServer",
    "LoopbackRun",
    "WorkerSummary",
    "dist_runner_for_bundle",
    "dist_runner_for_world",
    "run_loopback",
]
