"""The coordinator: a lease server plus a runner that pulls from it.

:class:`LeaseServer` listens on a socket, accepts pull-based workers,
and answers the protocol verbs (HELLO handshake, LEASE grants from the
current stage's :class:`~repro.dist.board.LeaseBoard`, RESULT folding,
HEARTBEAT acks, DRAIN back-offs).  One daemon thread per connection
does blocking request/reply; every mutation of cluster state happens
under one lock, and the board itself is swapped in and out per stage by
:meth:`LeaseServer.serve_stage` — the blocking call the runner's main
thread makes where the process-pool path would dispatch to its
supervisor.

:class:`DistRunner` subclasses :class:`~repro.runtime.executor.
ShardedRunner` and overrides exactly one seam — ``_stage_payloads`` —
so the cache handling, degraded-run rules, per-stage merge logic and
result assembly stay the single implementation the serial and pool
paths already share.  That inheritance is the bit-identity argument:
the distributed run computes the same shards with the same kernels and
merges them through the same ``ordered_merge`` calls, so its
``results_digest`` matches ``repro-run --jobs 1`` by construction, and
the dist test suite pins it by measurement.

Checkpoints go through the shared artifact cache under the *same* keys
the pool supervisor uses (:func:`repro.runtime.supervisor.
shard_checkpoint_key`), so a distributed run can resume a killed pool
run's shards and vice versa, and workers can short-circuit compute via
the ``cache_key`` their lease carries.
"""

from __future__ import annotations

import os
import socket
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro import obs
from repro.dist import protocol
from repro.dist.board import LeaseBoard
from repro.dist.transport import Channel
from repro.runtime import supervisor, workers
from repro.runtime.cache import DEFAULT_MAX_BYTES, ArtifactCache, code_version
from repro.runtime.executor import RunReport, RuntimeConfig, ShardedRunner
from repro.runtime.supervisor import StageOutcome, SupervisionPolicy
from repro.util import timeutil


@dataclass(frozen=True)
class DistConfig:
    """Coordinator knobs, orthogonal to what is computed."""

    host: str = "127.0.0.1"
    #: 0 binds an ephemeral port (read it back from ``LeaseServer.port``).
    port: int = 0
    #: Expected worker count — a shard-count hint, exactly like the pool
    #: path's ``jobs`` (outputs are identical for every value).
    workers: int = 2
    #: Explicit shard count; default ``workers * OVERSHARD`` per stage.
    shards: int | None = None
    #: Shared artifact cache; also the checkpoint/short-circuit store.
    cache_dir: str | Path | None = None
    max_cache_bytes: int = DEFAULT_MAX_BYTES
    #: Reload completed shard checkpoints before serving a stage.
    resume: bool = False
    max_retries: int = timeutil.MAX_SHARD_RETRIES
    #: Execution budget per lease; the clock starts at grant.
    lease_deadline_s: float = timeutil.LEASE_DEADLINE_S
    backoff_base_s: float = timeutil.BACKOFF_BASE_S
    #: Coordinator sweep interval (lease expiry) and the retry-after
    #: hint handed to empty-handed workers.
    poll_s: float = timeutil.DIST_POLL_S

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be >= 1, got %r"
                             % (self.workers,))
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0, got %r"
                             % (self.max_retries,))
        if self.lease_deadline_s <= 0:
            raise ValueError("lease_deadline_s must be positive, got %r"
                             % (self.lease_deadline_s,))
        if self.backoff_base_s < 0:
            raise ValueError("backoff_base_s must be >= 0, got %r"
                             % (self.backoff_base_s,))
        if self.poll_s <= 0:
            raise ValueError("poll_s must be positive, got %r"
                             % (self.poll_s,))

    def policy(self) -> SupervisionPolicy:
        return SupervisionPolicy(
            max_retries=self.max_retries,
            shard_deadline_s=self.lease_deadline_s,
            backoff_base_s=self.backoff_base_s)

    def runtime_config(self) -> RuntimeConfig:
        """The executor config a :class:`DistRunner` runs under.

        ``jobs`` must exceed 1 for the executor to take the sharded
        path at all; ``supervise`` is off because the lease server *is*
        the supervisor on this path.
        """
        return RuntimeConfig(
            jobs=max(2, self.workers), shards=self.shards,
            cache_dir=self.cache_dir,
            max_cache_bytes=self.max_cache_bytes,
            supervise=False, resume=self.resume,
            max_retries=self.max_retries,
            shard_deadline_s=self.lease_deadline_s,
            backoff_base_s=self.backoff_base_s)


@dataclass
class _WorkerState:
    """Per-worker bookkeeping, keyed by the worker's self-chosen id."""

    worker_id: str
    leases: int = 0
    results: int = 0
    cache_hits: int = 0
    last_seen: float = 0.0
    bytes_sent: int = 0
    bytes_received: int = 0


@dataclass
class _StageServing:
    """Everything the connection handlers need about the live stage."""

    board: LeaseBoard
    stage: str
    partition: str
    checkpointing: bool
    version: str
    params: str
    checkpoints_stored: int = 0


@dataclass
class _Connection:
    """One handler thread's conversation state."""

    channel: Channel
    worker_id: str = ""
    synced_sent: int = 0
    synced_received: int = 0
    closing: bool = False
    reply: object | None = field(default=None)


class LeaseServer:
    """Serve shard leases to socket workers; fold their results back."""

    def __init__(self, config: DistConfig) -> None:
        self.config = config
        self._listener = socket.create_server((config.host, config.port))
        self.host = config.host
        self.port = int(self._listener.getsockname()[1])
        self._lock = threading.RLock()
        self._runner: ShardedRunner | None = None
        self._serving: _StageServing | None = None
        self._finished = False
        self._closed = False
        self._workers: dict[str, _WorkerState] = {}
        self._channels: set[Channel] = set()
        self._cache: ArtifactCache | None = None
        if config.cache_dir is not None:
            # The server's own handle (handler threads store checkpoints
            # concurrently with the runner thread's artifact traffic);
            # writes are atomic, so sharing the directory is safe while
            # sharing one stats object would not be.
            self._cache = ArtifactCache(config.cache_dir,
                                        max_bytes=config.max_cache_bytes)
        self.bytes_sent = 0
        self.bytes_received = 0
        threading.Thread(target=self._accept_loop, daemon=True,
                         name="repro-dist-accept").start()

    # -- lifecycle -----------------------------------------------------------

    def bind(self, runner: "ShardedRunner") -> None:
        """Attach the runner whose identity HELLO replies speak for."""
        with self._lock:
            self._runner = runner

    def finish(self) -> None:
        """The run is over: answer every future pull with DRAIN(done)."""
        with self._lock:
            self._finished = True

    def close(self) -> None:
        """Stop accepting and drop every live connection."""
        with self._lock:
            self._closed = True
            channels = list(self._channels)
        try:
            self._listener.close()
        except OSError:
            pass
        for channel in channels:
            channel.close()

    def worker_summary(self) -> dict[str, dict[str, int]]:
        """Per-worker lease/byte accounting (for reports and tests)."""
        with self._lock:
            return {
                worker_id: {"leases": state.leases,
                            "results": state.results,
                            "cache_hits": state.cache_hits,
                            "bytes_sent": state.bytes_sent,
                            "bytes_received": state.bytes_received}
                for worker_id, state in self._workers.items()
            }

    # -- the per-stage blocking call the runner makes -------------------------

    def serve_stage(self, stage: str, shards: list[list], probe_of,
                    tainted: bool, version: str,
                    params: str) -> StageOutcome:
        """Serve one fan-out stage to the connected workers.

        Blocks the runner thread until every shard is resolved or
        abandoned, sweeping expired leases every ``poll_s``; connection
        handlers grant leases and fold results concurrently under the
        cluster lock.
        """
        runner = self._runner
        fingerprint = runner.fingerprint if runner is not None else ""
        checkpointing = (self._cache is not None and bool(fingerprint)
                         and not tainted)
        partition = supervisor.partition_digest(stage, shards)
        resolved = self._load_checkpoints(
            stage, shards, partition, fingerprint, version, params,
            checkpointing)
        with obs.span("dist:%s" % stage, category="dist", stage=stage,
                      shards=len(shards)) as handle:
            board = LeaseBoard(stage, shards, self.config.policy(),
                               resolved=resolved)
            serving = _StageServing(
                board=board, stage=stage, partition=partition,
                checkpointing=checkpointing, version=version,
                params=params)
            if checkpointing and len(resolved) < len(shards):
                self._cache.store(
                    supervisor.manifest_checkpoint_key(
                        fingerprint, stage, version, params, partition),
                    supervisor.CheckpointManifest(
                        stage=stage, shard_count=len(shards),
                        partition_digest=partition,
                        keys=tuple(supervisor.shard_checkpoint_key(
                            fingerprint, stage, index, version, params,
                            partition) for index in range(len(shards)))))
            with self._lock:
                self._serving = serving
            while True:
                with self._lock:
                    board.expire()
                    if board.done:
                        self._serving = None
                        stored = serving.checkpoints_stored
                        break
                time.sleep(self.config.poll_s)
            # The board is only safe under the cluster lock; handler
            # threads may still be draining a late RESULT, so the final
            # accounting reads hold it too.
            with self._lock:
                outcome = board.finish(probe_of,
                                       checkpoints_loaded=len(resolved),
                                       checkpoints_stored=stored)
                # Absorb worker spans/metrics in shard-index order: the
                # merged trace is deterministic whatever the wire order
                # was.
                for index in sorted(board.envelopes):
                    envelope = board.envelopes[index]
                    obs.absorb_spans(span.with_attrs(shard=index)
                                     for span in envelope.spans)
                    obs.metrics().absorb(envelope.metrics)
                handle.set(leases=board.leases_granted,
                           retries=board.retries,
                           reassignments=board.reassignments,
                           abandoned=len(board.abandoned),
                           duplicates=board.duplicates, late=board.late,
                           checkpoints_loaded=len(resolved),
                           checkpoints_stored=stored)
                reassigned = board.reassignments
                duplicates = board.duplicates
                late = board.late
            if reassigned:
                obs.count("dist.leases.reassigned", reassigned)
            if duplicates:
                obs.count("dist.results.duplicate", duplicates)
            if late:
                obs.count("dist.results.late", late)
            if len(resolved):
                obs.count("runtime.checkpoints.loaded", len(resolved))
            if stored:
                obs.count("runtime.checkpoints.stored", stored)
        return outcome

    def _load_checkpoints(self, stage: str, shards: list[list],
                          partition: str, fingerprint: str, version: str,
                          params: str,
                          checkpointing: bool) -> dict[int, object]:
        """Resume: verified payloads for every checkpointed shard."""
        if not (checkpointing and self.config.resume):
            return {}
        hit, manifest = self._cache.load(
            supervisor.manifest_checkpoint_key(
                fingerprint, stage, version, params, partition),
            stage="manifest:%s" % stage)
        if hit:
            supervisor.validate_manifest(manifest, stage, partition,
                                         len(shards))
        resolved: dict[int, object] = {}
        for index in range(len(shards)):
            hit, envelope = self._cache.load(
                supervisor.shard_checkpoint_key(
                    fingerprint, stage, index, version, params,
                    partition),
                stage="shard:%s" % stage)
            if not hit or not isinstance(envelope, workers.ShardResult):
                continue
            try:
                resolved[index] = envelope.open_payload()
            except Exception:  # repro: noqa[RPR004] — a corrupt
                # checkpoint is a cache miss, never a run abort; the
                # shard simply gets recomputed.
                continue
        return resolved

    # -- connection handling --------------------------------------------------

    def _accept_loop(self) -> None:
        while True:
            try:
                sock, _ = self._listener.accept()
            except OSError:
                return  # listener closed
            threading.Thread(target=self._serve_connection, args=(sock,),
                             daemon=True,
                             name="repro-dist-conn").start()

    def _serve_connection(self, sock: socket.socket) -> None:
        connection = _Connection(channel=Channel(sock))
        with self._lock:
            self._channels.add(connection.channel)
        try:
            while not connection.closing:
                message = connection.channel.recv()
                reply = self._dispatch(message, connection)
                if reply is not None:
                    connection.channel.send(reply)
                self._sync_bytes(connection)
        # A protocol violation (garbled frame) or socket error ends the
        # conversation; recovery happens through lease reassignment, so
        # dropping the connection is the whole remedy.
        except Exception:  # repro: noqa[RPR004]
            pass
        finally:
            self._sync_bytes(connection)
            with self._lock:
                self._channels.discard(connection.channel)
                if connection.worker_id and self._serving is not None:
                    lost = self._serving.board.disconnect(
                        connection.worker_id)
                    if lost:
                        obs.count("dist.workers.disconnects")
            connection.channel.close()

    def _sync_bytes(self, connection: _Connection) -> None:
        channel = connection.channel
        sent = channel.bytes_sent - connection.synced_sent
        received = channel.bytes_received - connection.synced_received
        if not sent and not received:
            return
        connection.synced_sent = channel.bytes_sent
        connection.synced_received = channel.bytes_received
        with self._lock:
            self.bytes_sent += sent
            self.bytes_received += received
            state = self._workers.get(connection.worker_id)
            if state is not None:
                state.bytes_sent += sent
                state.bytes_received += received
        if sent:
            obs.count("dist.bytes.sent", sent)
        if received:
            obs.count("dist.bytes.received", received)

    def _dispatch(self, message: object,
                  connection: _Connection) -> object | None:
        if isinstance(message, protocol.Hello):
            return self._on_hello(message, connection)
        if isinstance(message, protocol.Lease) and message.is_request:
            return self._on_lease_request(connection)
        if isinstance(message, protocol.Result):
            return self._on_result(message, connection)
        if isinstance(message, protocol.Heartbeat):
            with self._lock:
                state = self._workers.get(message.worker_id)
                if state is not None:
                    state.last_seen = time.monotonic()
            return protocol.Heartbeat(worker_id="coordinator",
                                      lease_id=message.lease_id)
        if isinstance(message, protocol.Drain):
            connection.closing = True
            return protocol.Drain(done=True, reason="goodbye")
        connection.closing = True
        return protocol.Drain(done=True,
                              reason="unexpected %s message"
                              % type(message).__name__)

    def _on_hello(self, hello: protocol.Hello,
                  connection: _Connection) -> object:
        with self._lock:
            runner = self._runner
        if runner is None:
            return protocol.Drain(done=False, reason="not ready",
                                  retry_after_s=self.config.poll_s)
        version = code_version()
        if hello.protocol_version != protocol.PROTOCOL_VERSION:
            connection.closing = True
            return protocol.Drain(
                done=True,
                reason="protocol version mismatch (worker %d, "
                       "coordinator %d)" % (hello.protocol_version,
                                            protocol.PROTOCOL_VERSION))
        if hello.code_version and hello.code_version != version:
            connection.closing = True
            return protocol.Drain(
                done=True,
                reason="code version mismatch: worker runs different "
                       "analysis code; shards from divergent code must "
                       "not merge")
        if hello.fingerprint and runner.fingerprint \
                and hello.fingerprint != runner.fingerprint:
            connection.closing = True
            return protocol.Drain(
                done=True,
                reason="bundle fingerprint mismatch: worker loaded a "
                       "different dataset")
        connection.worker_id = hello.worker_id
        with self._lock:
            if hello.worker_id not in self._workers:
                self._workers[hello.worker_id] = _WorkerState(
                    worker_id=hello.worker_id)
                obs.count("dist.workers.seen")
            self._workers[hello.worker_id].last_seen = time.monotonic()
        # pylint-style note: the reply carries the *coordinator's*
        # identity so the worker can verify symmetrically.
        min_connected = getattr(runner, "_min_connected", 0.0)
        return protocol.Hello(
            worker_id="coordinator",
            protocol_version=protocol.PROTOCOL_VERSION,
            code_version=version, fingerprint=runner.fingerprint,
            min_connected=min_connected, role="coordinator")

    def _on_lease_request(self, connection: _Connection) -> object:
        if not connection.worker_id:
            connection.closing = True
            return protocol.Drain(done=True, reason="HELLO first")
        with self._lock:
            if self._finished:
                return protocol.Drain(done=True, reason="run complete")
            serving = self._serving
            if serving is None:
                return protocol.Drain(done=False, reason="between stages",
                                      retry_after_s=self.config.poll_s)
            record = serving.board.lease(connection.worker_id)
            if record is None:
                return protocol.Drain(done=False, reason="no shard ready",
                                      retry_after_s=self.config.poll_s)
            state = self._workers[connection.worker_id]
            state.leases += 1
            cache_key = ""
            if serving.checkpointing:
                runner = self._runner
                cache_key = supervisor.shard_checkpoint_key(
                    runner.fingerprint, serving.stage,
                    record.shard_index, serving.version, serving.params,
                    serving.partition)
            lease = protocol.Lease(
                lease_id=record.lease_id, stage=serving.stage,
                shard_index=record.shard_index, attempt=record.attempt,
                items=tuple(serving.board.shards[record.shard_index]),
                deadline_s=self.config.lease_deadline_s,
                cache_key=cache_key)
        obs.count("dist.leases.granted")
        obs.count("dist.leases.worker.%s" % connection.worker_id)
        return lease

    def _on_result(self, result: protocol.Result,
                   connection: _Connection) -> object:
        ack = protocol.Heartbeat(worker_id="coordinator",
                                 lease_id=result.lease_id)
        store: tuple[str, workers.ShardResult] | None = None
        with self._lock:
            serving = self._serving
            state = self._workers.get(connection.worker_id)
            if state is not None:
                state.results += 1
                state.last_seen = time.monotonic()
            if serving is None or serving.stage != result.stage:
                # The stage already drained (a stale retry's result):
                # idempotently acknowledged, dropped from accounting.
                obs.count("dist.results.stray")
                return ack
            if result.error:
                serving.board.fail_lease(result.lease_id, result.error)
                return ack
            verdict = serving.board.submit(result.lease_id,
                                           result.envelope)
            if verdict in ("resolved", "late"):
                if state is not None and result.cache_hit:
                    state.cache_hits += 1
                if serving.checkpointing and not result.cache_hit:
                    runner = self._runner
                    key = supervisor.shard_checkpoint_key(
                        runner.fingerprint, serving.stage,
                        result.envelope.shard_index, serving.version,
                        serving.params, serving.partition)
                    store = (key, result.envelope)
                    serving.checkpoints_stored += 1
        if store is not None:
            # Store outside the cluster lock: disk latency must not
            # stall lease grants for every other worker.
            self._cache.store(store[0], store[1])
        if result.cache_hit:
            obs.count("dist.results.cache_hits")
        return ack


class DistRunner(ShardedRunner):
    """A :class:`ShardedRunner` whose fan-out stages go over the wire."""

    def __init__(self, server: LeaseServer, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._server = server
        server.bind(self)

    def _new_report(self) -> RunReport:
        # Workers are not local processes: the pool path's
        # oversubscription warning would be meaningless here.
        return RunReport(
            jobs=self.config.jobs, fingerprint=self.fingerprint,
            cpu_count=os.cpu_count() or 1, oversubscribed=False,
            start_method=None)

    def _stage_payloads(self, stage: str, shards: list[list],
                        probe_of=lambda item: item) -> list:
        outcome = self._server.serve_stage(
            stage, shards, probe_of, tainted=self.report.degraded,
            version=self._version, params=self._params)
        self.report.resilience.append(outcome.resilience)
        return [payload for payload in outcome.payloads
                if payload is not None]


def dist_runner_for_bundle(bundle, config: DistConfig,
                           server: LeaseServer | None = None,
                           min_connected: float | None = None
                           ) -> DistRunner:
    """Coordinator runner over a loaded bundle (mirrors
    :func:`repro.runtime.executor.runner_for_bundle`)."""
    if server is None:
        server = LeaseServer(config)
    if min_connected is None:
        window = bundle.end - bundle.start
        min_connected = min(30 * timeutil.DAY, window / 10)
    return DistRunner(
        server, bundle.connlog, bundle.archive, bundle.kroot,
        bundle.uptime, bundle.ip2as, as_names=bundle.as_names,
        as_countries=bundle.as_countries, min_connected=min_connected,
        fingerprint=bundle.fingerprint, config=config.runtime_config())


def dist_runner_for_world(world, config: DistConfig,
                          server: LeaseServer | None = None,
                          min_connected: float | None = None
                          ) -> DistRunner:
    """Coordinator runner over an in-memory simulated world (mirrors
    :func:`repro.runtime.executor.runner_for_world`)."""
    from repro.runtime.executor import world_fingerprint
    if server is None:
        server = LeaseServer(config)
    as_names: dict[int, str] = {}
    as_countries: dict[int, str] = {}
    for profile in world.config.profiles:
        as_names[profile.spec.asn] = profile.spec.name
        as_countries[profile.spec.asn] = profile.spec.country
    if min_connected is None:
        window = world.config.end - world.config.start
        min_connected = min(30 * timeutil.DAY, window / 10)
    return DistRunner(
        server, world.connlog, world.archive, world.kroot, world.uptime,
        world.ip2as, as_names=as_names, as_countries=as_countries,
        min_connected=min_connected,
        fingerprint=world_fingerprint(world.config),
        config=config.runtime_config())
