"""The pull-based dist worker.

A :class:`DistWorker` dials the coordinator, handshakes (HELLO must
agree on protocol version, code version, and bundle fingerprint — a
shard computed by divergent code or over a different dataset must never
reach the merge), then pulls leases until the coordinator answers
DRAIN(done).  Each lease is served by the *same* shard kernels the
process-pool path runs (:data:`repro.runtime.workers.SHARD_TASKS`), and
shipped back as the same sealed :class:`~repro.runtime.workers.
ShardResult` envelope — which is the whole bit-identity story: the
coordinator merges envelopes it cannot tell apart from pool envelopes.

When the run has a shared artifact cache, each lease carries the
shard's checkpoint ``cache_key``; a worker with a cache handle verifies
and ships the cached envelope instead of recomputing (``cache_hit``),
and stores what it did compute so a retry of the same shard — by anyone
— short-circuits.

Failure handling is deliberately dumb on this side: any socket error,
timeout, or protocol violation tears the connection down and the worker
reconnects with a fresh handshake (bounded by ``max_reconnects``).
Every crash-recovery decision lives in the coordinator's lease board;
the worker only has to keep pulling.
"""

from __future__ import annotations

import pickle
import threading
import time
from dataclasses import dataclass, field

from repro.dist import protocol, transport
from repro.errors import DistError, WireProtocolError
from repro.runtime import workers
from repro.runtime.cache import ArtifactCache, code_version
from repro.util import fingerprint as fp
from repro.util import timeutil


@dataclass
class WorkerSummary:
    """One worker's account of its run, for reports and tests."""

    worker_id: str
    leases_served: int = 0
    cache_hits: int = 0
    errors_reported: int = 0
    reconnects: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0
    #: Network faults this worker's channels injected, by kind.
    injected: dict = field(default_factory=dict)


class DistWorker:
    """Pull shards from a coordinator until drained."""

    def __init__(self, host: str, port: int, worker_id: str,
                 fingerprint: str = "",
                 cache: ArtifactCache | None = None,
                 fault_plan: object | None = None,
                 capture_obs: bool = True,
                 install_context=None,
                 socket_timeout_s: float = timeutil.DIST_SOCKET_TIMEOUT_S,
                 reconnect_delay_s: float
                 = timeutil.DIST_RECONNECT_DELAY_S,
                 max_reconnects: int = 100,
                 heartbeats: bool = True) -> None:
        self.host = host
        self.port = port
        self.worker_id = worker_id
        self.fingerprint = fingerprint
        self.cache = cache
        self.fault_plan = fault_plan
        #: Loopback worker *threads* share the process-global span
        #: collector with the coordinator, so they must not drain it —
        #: they seal envelopes without observability instead of stealing
        #: the coordinator's spans.
        self.capture_obs = capture_obs
        #: Called once with the coordinator's ``min_connected`` after the
        #: first successful handshake — the hook the worker CLI uses to
        #: build its :class:`~repro.runtime.workers.WorkerContext` with
        #: the *coordinator's* filter threshold, guaranteeing parity.
        self.install_context = install_context
        self.socket_timeout_s = socket_timeout_s
        self.reconnect_delay_s = reconnect_delay_s
        self.max_reconnects = max_reconnects
        self.heartbeats = heartbeats
        self.summary = WorkerSummary(worker_id=worker_id)
        self._connections = 0
        self._context_installed = False
        self._current_lease = -1
        self._hb_stop: threading.Event | None = None

    # -- connection lifecycle -------------------------------------------------

    def _dial(self) -> transport.Channel:
        """Connect and handshake; raises on incompatibility."""
        while True:
            # Fresh channel ids per connection ("w0#0", "w0#1", ...) so a
            # deterministic fault plan draws a *new* sequence after every
            # reconnect instead of replaying the fault that killed the
            # last connection forever.
            channel_id = "%s#%d" % (self.worker_id, self._connections)
            # A DistWorker instance is driven by exactly one thread: the
            # worker process's main thread in dist mode, or its own serve
            # thread in loopback mode.  The analyzer conflates the two
            # deployments into one role pair; only the heartbeat thread
            # truly shares the instance, and it touches nothing below.
            self._connections += 1  # repro: noqa[RPR011] -- instance is confined to its single driving thread (dist main xor loopback serve thread)
            try:
                channel = transport.connect(
                    self.host, self.port, self.socket_timeout_s,
                    channel_id=channel_id, plan=self.fault_plan)
            except ConnectionRefusedError:
                self._charge_reconnect("coordinator refused connection")
                time.sleep(self.reconnect_delay_s)
                continue
            try:
                reply = channel.request(protocol.Hello(
                    worker_id=self.worker_id,
                    protocol_version=protocol.PROTOCOL_VERSION,
                    code_version=code_version(),
                    fingerprint=self.fingerprint,
                    min_connected=0.0, role="worker"))
            except (WireProtocolError, OSError):
                self._absorb_channel(channel)
                channel.close()
                self._charge_reconnect("handshake failed")
                time.sleep(self.reconnect_delay_s)
                continue
            try:
                if isinstance(reply, protocol.Drain):
                    if reply.done:
                        # A deliberate rejection (version/fingerprint
                        # skew or the run is over) — not a transient to
                        # retry around.
                        raise DistError(
                            "coordinator rejected worker %s: %s"
                            % (self.worker_id, reply.reason))
                    self._absorb_channel(channel)
                    channel.close()
                    time.sleep(reply.retry_after_s
                               or self.reconnect_delay_s)
                    continue
                if not isinstance(reply, protocol.Hello) \
                        or reply.role != "coordinator":
                    raise DistError(
                        "peer at %s:%d did not identify as a coordinator"
                        % (self.host, self.port))
                self._verify_coordinator(reply)
                if self.install_context is not None \
                        and not self._context_installed:
                    self.install_context(reply.min_connected)
                    self._context_installed = True  # repro: noqa[RPR011] -- instance is confined to its single driving thread (dist main xor loopback serve thread)
            # Cleanup-only handler: the channel must not outlive a fatal
            # verification failure (including KeyboardInterrupt), and the
            # exception is re-raised untouched.
            except BaseException:  # repro: noqa[RPR004]
                self._absorb_channel(channel)
                channel.close()
                raise
            return channel

    def _verify_coordinator(self, hello: protocol.Hello) -> None:
        if hello.code_version != code_version():
            raise DistError(
                "coordinator runs different analysis code (its version "
                "%s, ours %s): refusing to compute shards"
                % (fp.short(hello.code_version),
                   fp.short(code_version())))
        if self.fingerprint and hello.fingerprint \
                and hello.fingerprint != self.fingerprint:
            raise DistError(
                "coordinator serves a different bundle (fingerprint %s, "
                "ours %s)" % (fp.short(hello.fingerprint),
                              fp.short(self.fingerprint)))

    def _charge_reconnect(self, detail: str) -> None:
        self.summary.reconnects += 1
        if self.summary.reconnects > self.max_reconnects:
            raise DistError(
                "worker %s gave up after %d reconnects (%s)"
                % (self.worker_id, self.max_reconnects, detail))

    def _absorb_channel(self, channel: transport.Channel) -> None:
        self.summary.bytes_sent += channel.bytes_sent  # repro: noqa[RPR011] -- instance is confined to its single driving thread (dist main xor loopback serve thread)
        self.summary.bytes_received += channel.bytes_received
        injected = getattr(channel, "injected", None)
        if injected:
            for kind, count in injected.items():
                self.summary.injected[kind] = (
                    self.summary.injected.get(kind, 0) + count)
            injected.clear()

    # -- heartbeats -----------------------------------------------------------

    def _start_heartbeats(self, channel: transport.Channel
                          ) -> threading.Event:
        stop = threading.Event()

        def beat() -> None:
            while not stop.wait(timeutil.HEARTBEAT_INTERVAL_S):
                try:
                    channel.request(protocol.Heartbeat(
                        worker_id=self.worker_id,
                        lease_id=self._current_lease))
                # Liveness is best-effort: the serve loop owns error
                # recovery, a failed ping must not race it.
                except Exception:  # repro: noqa[RPR004]
                    return

        if self.heartbeats:
            threading.Thread(target=beat, daemon=True,
                             name="repro-dist-hb-%s"
                             % self.worker_id).start()
        return stop

    # -- serving --------------------------------------------------------------

    def run(self) -> WorkerSummary:
        """Pull and serve leases until the coordinator drains us."""
        while True:
            channel = self._dial()
            stop = self._start_heartbeats(channel)
            try:
                if self._serve(channel):
                    return self.summary
            except (WireProtocolError, OSError):
                self._charge_reconnect("connection lost mid-serve")
                time.sleep(self.reconnect_delay_s)
            finally:
                stop.set()
                self._absorb_channel(channel)
                channel.close()

    def _serve(self, channel: transport.Channel) -> bool:
        """One connection's pull loop; True when drained for good."""
        while True:
            reply = channel.request(protocol.Lease.request())
            if isinstance(reply, protocol.Drain):
                if reply.done:
                    channel.send(protocol.Drain(done=True,
                                                reason="goodbye"))
                    return True
                time.sleep(reply.retry_after_s
                           or timeutil.DIST_POLL_S)
                continue
            if not isinstance(reply, protocol.Lease) \
                    or reply.is_request:
                raise WireProtocolError(
                    "lease pull answered with %s"
                    % type(reply).__name__)
            # The heartbeat thread reads this as an advisory liveness
            # hint.  A Python int read is atomic; at worst one heartbeat
            # carries the previous lease id, which the board tolerates.
            self._current_lease = reply.lease_id  # repro: noqa[RPR011] -- advisory single-int hint for the heartbeat thread; atomic read, staleness is harmless
            try:
                result = self._compute(reply)
            finally:
                self._current_lease = -1
            ack = channel.request(result)
            self.summary.leases_served += 1
            if result.cache_hit:
                self.summary.cache_hits += 1
            if result.error:
                self.summary.errors_reported += 1
            if isinstance(ack, protocol.Drain) and ack.done:
                return True

    def _compute(self, lease: protocol.Lease) -> protocol.Result:
        """Serve one lease: cached envelope, or kernel compute + seal."""
        cached = self._cached_envelope(lease)
        if cached is not None:
            return protocol.Result(
                lease_id=lease.lease_id, stage=lease.stage,
                shard_index=lease.shard_index, attempt=lease.attempt,
                envelope=cached, cache_hit=True)
        try:
            envelope = self._run_kernel(lease)
        # Any kernel failure becomes an attributable RESULT(error) for
        # the board to charge — never a dead worker.
        except Exception as error:  # repro: noqa[RPR004]
            return protocol.Result(
                lease_id=lease.lease_id, stage=lease.stage,
                shard_index=lease.shard_index, attempt=lease.attempt,
                error="%s: %s" % (type(error).__name__, error))
        if self.cache is not None and lease.cache_key:
            self.cache.store(lease.cache_key, envelope)
        return protocol.Result(
            lease_id=lease.lease_id, stage=lease.stage,
            shard_index=lease.shard_index, attempt=lease.attempt,
            envelope=envelope)

    def _cached_envelope(self, lease: protocol.Lease
                         ) -> workers.ShardResult | None:
        """A verified cached envelope for this shard, else ``None``."""
        if self.cache is None or not lease.cache_key:
            return None
        hit, value = self.cache.load(lease.cache_key,
                                     stage="shard:%s" % lease.stage)
        if not hit or not isinstance(value, workers.ShardResult) \
                or value.shard_index != lease.shard_index:
            return None
        try:
            value.open_payload()
        except Exception:  # repro: noqa[RPR004] — a corrupt cache
            # entry is a miss, the shard simply gets computed.
            return None
        return value

    def _run_kernel(self, lease: protocol.Lease) -> workers.ShardResult:
        items = list(lease.items)
        if self.capture_obs:
            return workers.run_shard(lease.stage, items,
                                     lease.shard_index, lease.attempt)
        # Obs-silent path (loopback threads): same kernel, manual seal,
        # empty spans/metrics — draining here would steal the
        # coordinator's process-global spans.
        kernel = workers.SHARD_TASKS[lease.stage]
        payload = kernel(items)
        blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        return workers.ShardResult(
            shard_index=lease.shard_index, attempt=lease.attempt,
            payload_pickle=blob, seal=fp.hash_bytes(blob))
