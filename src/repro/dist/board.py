"""The coordinator's lease board: one stage's shard state machine.

A :class:`LeaseBoard` owns every shard of one fan-out stage from grant
to resolution.  Shards move through::

    ready ──lease()──> active ──submit(verified envelope)──> resolved
      ^                   │
      │   expire() / disconnect() / fail_lease() / corrupt submit
      └────── requeued with a failure charge ──────> (or abandoned
                                                      once attempts
                                                      exceed the
                                                      retry budget)

The board is the pure core of distributed supervision — no sockets, no
threads, no sleeps.  Time enters only through the injectable ``clock``
(deadlines, deterministic backoff as *not-before* timestamps instead of
blocking sleeps), so the hypothesis suite can drive any interleaving of
out-of-order, duplicate, and stale-retry envelopes against it and
assert the merge discipline directly:

* the first seal-verified envelope per shard index wins — whoever
  delivered it, under whatever lease, however late (mirroring
  :func:`repro.runtime.supervisor.resolve_envelopes`);
* duplicates and envelopes for abandoned shards are counted and
  dropped, never merged twice;
* every failure is individually attributable (a hang, a disconnect, a
  kernel error, a corrupt envelope — each names its shard), so unlike
  the process-pool supervisor there is no ambiguous blast-radius
  machinery: charges exceed the retry budget honestly or not at all.

Thread-safety is the *caller's* job: the board is mutated only under
the coordinator's cluster lock (it is not internally locked, which is
what keeps it drivable single-threaded by property tests).
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Mapping

from repro.errors import EnvelopeCorruptError
from repro.runtime import workers
from repro.runtime.supervisor import (
    CAUSE_CORRUPT,
    CAUSE_CRASH,
    CAUSE_HANG,
    ShardFailure,
    StageOutcome,
    StageResilience,
    SupervisionPolicy,
    payloads_in_order,
)

#: Failure cause for leases lost to a dropped connection (the dist
#: counterpart of the pool supervisor's crash/hang/corrupt causes).
CAUSE_DISCONNECT = "disconnect"

#: ``submit`` verdicts.
SUBMIT_RESOLVED = "resolved"
SUBMIT_LATE = "late"  # resolved, but the granting lease had expired
SUBMIT_DUPLICATE = "duplicate"
SUBMIT_CORRUPT = "corrupt"


@dataclass(frozen=True)
class LeaseRecord:
    """One granted lease, as the board tracks it."""

    lease_id: int
    worker_id: str
    stage: str
    shard_index: int
    attempt: int
    deadline: float  # clock instant after which the lease is hung


class LeaseBoard:
    """Grant, track, and account one stage's shard leases."""

    def __init__(self, stage: str, shards: list[list],
                 policy: SupervisionPolicy,
                 resolved: Mapping[int, object] | None = None,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.stage = stage
        self.shards = shards
        self.policy = policy
        self.clock = clock
        #: index -> verified payload (checkpoint loads pre-fill this).
        self.resolved: dict[int, object] = dict(resolved or {})
        #: index -> the envelope that resolved it (absent for shards
        #: resumed from checkpoints, whose spans were absorbed when the
        #: checkpoint was stored).
        self.envelopes: dict[int, workers.ShardResult] = {}
        self.abandoned: set[int] = set()
        self.failures: list[ShardFailure] = []
        self.attempts = {index: 0 for index in range(len(shards))
                         if index not in self.resolved}
        #: Deterministic backoff as not-before instants: a charged shard
        #: is requeued immediately but not *grantable* until this time.
        self.next_ready_at = {index: 0.0 for index in self.attempts}
        self.ready: deque[int] = deque(sorted(self.attempts))
        self.active: dict[int, LeaseRecord] = {}
        self._active_by_shard: dict[int, int] = {}
        self._next_lease_id = 0
        self.leases_granted = 0
        self.retries = 0
        self.reassignments = 0
        self.duplicates = 0
        self.late = 0

    # -- grants --------------------------------------------------------------

    def lease(self, worker_id: str) -> LeaseRecord | None:
        """Grant the next grantable shard, or ``None`` if nothing is.

        Grant order is queue order (sorted at init, requeues appended),
        skipping shards that resolved meanwhile, are mid-backoff, or
        already have an active lease.
        """
        now = self.clock()
        picked: int | None = None
        keep: deque[int] = deque()
        while self.ready:
            index = self.ready.popleft()
            if index in self.resolved or index in self.abandoned:
                continue  # resolved by a late envelope while queued
            if (picked is None and index not in self._active_by_shard
                    and self.next_ready_at.get(index, 0.0) <= now):
                picked = index
                continue
            keep.append(index)
        self.ready = keep
        if picked is None:
            return None
        self._next_lease_id += 1
        record = LeaseRecord(
            lease_id=self._next_lease_id, worker_id=worker_id,
            stage=self.stage, shard_index=picked,
            attempt=self.attempts[picked],
            deadline=now + self.policy.shard_deadline_s)
        self.active[record.lease_id] = record
        self._active_by_shard[picked] = record.lease_id
        self.leases_granted += 1
        return record

    def _release(self, lease_id: int) -> LeaseRecord | None:
        record = self.active.pop(lease_id, None)
        if record is not None \
                and self._active_by_shard.get(record.shard_index) \
                == lease_id:
            del self._active_by_shard[record.shard_index]
        return record

    # -- results -------------------------------------------------------------

    def submit(self, lease_id: int, envelope: object) -> str:
        """Fold one RESULT envelope in; returns a ``SUBMIT_*`` verdict.

        Accepts any seal-verified :class:`~repro.runtime.workers.
        ShardResult` for a still-unresolved shard — even from an
        expired or unknown lease (``SUBMIT_LATE``): the payload is a
        pure function of the shard, so a stale retry's envelope is as
        good as the freshest one, and accepting it is what makes the
        merge idempotent under every interleaving.
        """
        record = self._release(lease_id)
        if not isinstance(envelope, workers.ShardResult):
            if record is not None \
                    and record.shard_index not in self.resolved:
                self._charge(record.shard_index, record.attempt,
                             CAUSE_CORRUPT,
                             "RESULT carried no envelope")
            return SUBMIT_CORRUPT
        index = envelope.shard_index
        if record is not None and record.shard_index != index \
                and record.shard_index not in self.resolved:
            # A confused worker answered lease N with another shard's
            # envelope: the envelope speaks for its own shard (below),
            # but the leased shard must not starve — requeue it.
            self.ready.append(record.shard_index)
        if index in self.resolved or index in self.abandoned:
            self.duplicates += 1
            return SUBMIT_DUPLICATE
        try:
            payload = envelope.open_payload()
        except EnvelopeCorruptError as error:
            self._charge(index, envelope.attempt, CAUSE_CORRUPT,
                         str(error))
            return SUBMIT_CORRUPT
        self.resolved[index] = payload
        self.envelopes[index] = envelope
        if record is None or record.shard_index != index:
            self.late += 1
            return SUBMIT_LATE
        return SUBMIT_RESOLVED

    def fail_lease(self, lease_id: int, detail: str) -> bool:
        """Charge a worker-reported kernel failure against its lease."""
        record = self._release(lease_id)
        if record is None or record.shard_index in self.resolved:
            return False  # stale report; the shard's fate is settled
        self._charge(record.shard_index, record.attempt, CAUSE_CRASH,
                     detail)
        return True

    # -- recovery ------------------------------------------------------------

    def expire(self, now: float | None = None) -> list[LeaseRecord]:
        """Charge and requeue every lease past its deadline."""
        if now is None:
            now = self.clock()
        expired = [record for record in self.active.values()
                   if now >= record.deadline]
        for record in expired:
            self._release(record.lease_id)
            if record.shard_index in self.resolved:
                continue  # a late envelope already settled it
            self.reassignments += 1
            self._charge(record.shard_index, record.attempt, CAUSE_HANG,
                         "no result within %.1fs lease"
                         % self.policy.shard_deadline_s)
        return expired

    def disconnect(self, worker_id: str) -> list[LeaseRecord]:
        """Charge and requeue every in-flight lease of a lost worker."""
        lost = [record for record in self.active.values()
                if record.worker_id == worker_id]
        for record in lost:
            self._release(record.lease_id)
            if record.shard_index in self.resolved:
                continue
            self.reassignments += 1
            self._charge(record.shard_index, record.attempt,
                         CAUSE_DISCONNECT,
                         "worker %s disconnected mid-lease" % worker_id)
        return lost

    def _charge(self, index: int, attempt: int, cause: str,
                detail: str) -> None:
        """One individually-attributable failed attempt for one shard."""
        self.failures.append(ShardFailure(
            stage=self.stage, shard_index=index, attempt=attempt,
            cause=cause, detail=detail))
        # Monotonic, not additive: a straggling charge for an attempt
        # the board already moved past must not burn extra budget.
        self.attempts[index] = max(self.attempts.get(index, 0),
                                   attempt + 1)
        if self.attempts[index] > self.policy.max_retries:
            self.abandoned.add(index)
            return
        self.retries += 1
        self.next_ready_at[index] = (
            self.clock() + self.policy.backoff_s(self.attempts[index]))
        if index not in self.ready:
            self.ready.append(index)

    # -- completion ----------------------------------------------------------

    @property
    def done(self) -> bool:
        """Every shard resolved or abandoned (stale leases may linger)."""
        return (len(self.resolved) + len(self.abandoned)
                == len(self.shards))

    def finish(self, probe_of: Callable[[object], int],
               checkpoints_loaded: int = 0,
               checkpoints_stored: int = 0) -> StageOutcome:
        """The stage's payloads and supervision account, post-``done``."""
        abandoned = tuple(sorted(self.abandoned))
        quarantined = tuple(probe_of(item) for index in abandoned
                            for item in self.shards[index])
        total = sum(len(shard) for shard in self.shards)
        row = StageResilience(
            stage=self.stage, shards=len(self.shards), total_items=total,
            analyzed_items=total - len(quarantined),
            quarantined_items=len(quarantined),
            retries=self.retries, reassignments=self.reassignments,
            abandoned=abandoned, quarantined_probes=quarantined,
            failures=tuple(self.failures),
            checkpoints_loaded=checkpoints_loaded,
            checkpoints_stored=checkpoints_stored)
        return StageOutcome(
            payloads=payloads_in_order(self.resolved, len(self.shards)),
            resilience=row)
