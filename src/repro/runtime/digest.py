"""Canonical digest of an :class:`AnalysisResults`.

The executor's equivalence guarantee ("``jobs=N`` is bit-identical to
``jobs=1``, warm cache identical to cold") needs a way to compare two
results objects exactly.  This module serializes every derived output —
per-probe spans, durations, changes, gap events, outage stats, reboot
aggregates — into one canonical string (sorted keys, ``repr`` floats,
which round-trips exactly) and hashes it.  Two results with equal digests
agree on every table and figure, since all of those are pure functions of
the digested fields.
"""

from __future__ import annotations

import enum
from dataclasses import fields, is_dataclass

from repro.core.pipeline import AnalysisResults
from repro.util import fingerprint as fp


def _canon(value: object) -> str:
    """Deterministic, type-tagged rendering of one value."""
    if is_dataclass(value) and not isinstance(value, type):
        parts = ",".join("%s=%s" % (f.name, _canon(getattr(value, f.name)))
                         for f in fields(value))
        return "%s(%s)" % (type(value).__name__, parts)
    if isinstance(value, enum.Enum):
        return "%s.%s" % (type(value).__name__, value.name)
    if isinstance(value, dict):
        items = ",".join("%s:%s" % (_canon(key), _canon(value[key]))
                         for key in sorted(value))
        return "{%s}" % items
    if isinstance(value, (set, frozenset)):
        return "{%s}" % ",".join(_canon(item) for item in sorted(value))
    if isinstance(value, (list, tuple)):
        return "[%s]" % ",".join(_canon(item) for item in value)
    # repr() of float is the shortest exact round-trip representation, so
    # any bit-level numeric divergence changes the digest.
    return repr(value)


def results_digest(results: AnalysisResults) -> str:
    """Hex fingerprint over every derived output of one analysis run."""
    payload = _canon({
        "table2": results.table2_rows(),
        "spans": results.spans_by_probe,
        "durations": results.durations_by_probe,
        "changes": results.changes_by_probe,
        "asn": results.asn_by_probe,
        "gaps": results.gap_events_by_probe,
        "stats": results.stats_by_probe,
        "reboot_days": results.reboot_day_counts,
        "firmware_days": results.firmware_days,
        "v3": results._v3_probes,
    })
    return fp.hash_text(payload)
