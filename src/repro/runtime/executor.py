"""The sharded, cache-aware stage-graph executor.

:class:`ShardedRunner` walks the stage graph in topological order.  For
each stage it first consults the artifact cache (keyed on the bundle
fingerprint, stage name, code version and parameters — never on ``jobs``,
because outputs are guaranteed identical across job counts); on a miss it
either runs the stage function inline or, for per-probe stages with
``jobs > 1``, partitions the probe ids into deterministic shards and fans
them out over a :class:`~concurrent.futures.ProcessPoolExecutor`.

Equivalence guarantee: shards are contiguous chunks of the sorted probe
ids, shard results are merged in shard order, and every kernel is a pure
per-probe function, so the merged artifacts — and therefore every table
and figure — are bit-identical to the serial pipeline's.  The test suite
pins this with :func:`repro.runtime.digest.results_digest`.
"""

from __future__ import annotations

import multiprocessing
import os
import sys
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Mapping

from repro import obs
from repro.atlas.columnar import ColumnarConnlog, ColumnarUptime
from repro.core import colartifact
from repro.core.colartifact import (
    ColumnarFilterArtifact,
    ColumnarFloatMap,
    ColumnarGapEventMap,
    ColumnarSpanMap,
)
from repro.core.pipeline import (
    AnalysisResults,
    aggregate_reboots,
    stage_filter_col,
    stage_gaps_col,
    stage_reboots_col,
    stage_spans_col,
)
from repro.core.filtering import (
    FilterReport,
    report_from_verdicts,
    restore_entries,
)
from repro.runtime import workers
from repro.runtime.cache import DEFAULT_MAX_BYTES, ArtifactCache, code_version
from repro.runtime.sharding import partition, shard_count
from repro.runtime.supervisor import (
    ShardSupervisor,
    StageResilience,
    SupervisionPolicy,
)
from repro.runtime.stages import STAGES, StageSpec, topological_order
from repro.util import colpack
from repro.util import fingerprint as fp
from repro.util import timeutil
from repro.util.ordering import ordered_merge


def resolve_start_method(requested: str | None = None) -> str:
    """Pick the multiprocessing start method for the worker pool.

    ``fork`` is the fast path (workers inherit the installed dataset
    context by page sharing instead of unpickling it), but it only
    exists on POSIX and is unsafe with threads on macOS — CPython
    deprecated it there and made ``spawn`` the default.  So: honor an
    explicit request if the platform offers it, prefer ``fork`` on
    Linux, and fall back to ``spawn`` everywhere else.  Both paths
    produce bit-identical results (pinned by the runtime test suite).
    """
    available = multiprocessing.get_all_start_methods()
    if requested is not None:
        if requested not in available:
            raise ValueError(
                "start method %r is not available on this platform "
                "(have: %s)" % (requested, ", ".join(available)))
        return requested
    if "fork" in available and sys.platform.startswith("linux"):
        return "fork"
    return "spawn"


@dataclass(frozen=True)
class RuntimeConfig:
    """Execution knobs, orthogonal to what is computed."""

    #: Worker processes; 1 means run everything in-process.
    jobs: int = 1
    #: Explicit shard count; default ``jobs * OVERSHARD`` per stage.
    shards: int | None = None
    #: Artifact cache directory; ``None`` disables caching entirely.
    cache_dir: str | Path | None = None
    #: Cache eviction budget.
    max_cache_bytes: int = DEFAULT_MAX_BYTES
    #: Pool start method: ``"fork"``, ``"spawn"`` or ``None`` for
    #: platform auto-detection (:func:`resolve_start_method`).
    start_method: str | None = None
    #: Run fan-out stages under the fault-tolerant
    #: :class:`~repro.runtime.supervisor.ShardSupervisor` (crash/hang
    #: recovery, retries, checkpoints).  Off = legacy ``pool.map``.
    supervise: bool = True
    #: Failed attempts per shard before its probes are quarantined.
    max_retries: int = timeutil.MAX_SHARD_RETRIES
    #: Per-shard wall-clock deadline before the shard counts as hung.
    shard_deadline_s: float = timeutil.SHARD_DEADLINE_S
    #: First retry delay; attempt ``n`` waits ``base * 2**(n-1)``.
    backoff_base_s: float = timeutil.BACKOFF_BASE_S
    #: Load per-shard checkpoints from the cache before dispatching
    #: (``repro-run --resume``): a killed run restarts from the last
    #: completed shard instead of the last completed stage.
    resume: bool = False
    #: Process-fault plan (``fault_at(stage, shard, attempt)`` duck
    #: type, e.g. :class:`repro.faults.process.ProcessFaultPlan`),
    #: installed into supervised workers.  ``None`` = no injection.
    fault_plan: object | None = None
    #: Vectorized columnar kernels and columnar cache artifacts
    #: (DESIGN.md §16).  Auto-disabled on numpy-free hosts; ``False``
    #: (``repro-run --legacy-kernels``) forces the record kernels — the
    #: differential-testing oracle.  Outputs are bit-identical either
    #: way.
    columnar: bool = True

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise ValueError("jobs must be >= 1, got %r" % (self.jobs,))
        if self.shards is not None and self.shards < 1:
            raise ValueError("shards must be >= 1, got %r" % (self.shards,))
        if self.start_method not in (None, "fork", "spawn"):
            raise ValueError("start_method must be 'fork', 'spawn' or "
                             "None, got %r" % (self.start_method,))
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0, got %r"
                             % (self.max_retries,))
        if self.shard_deadline_s <= 0:
            raise ValueError("shard_deadline_s must be positive, got %r"
                             % (self.shard_deadline_s,))
        if self.backoff_base_s < 0:
            raise ValueError("backoff_base_s must be >= 0, got %r"
                             % (self.backoff_base_s,))
        if self.fault_plan is not None and not self.supervise:
            raise ValueError("fault_plan requires supervise=True: the "
                             "legacy pool has no recovery path")

    def policy(self) -> SupervisionPolicy:
        """The supervision knobs as a :class:`SupervisionPolicy`."""
        return SupervisionPolicy(
            max_retries=self.max_retries,
            shard_deadline_s=self.shard_deadline_s,
            backoff_base_s=self.backoff_base_s)


@dataclass(frozen=True)
class StageTiming:
    """How one stage executed."""

    name: str
    seconds: float
    #: Served from the artifact cache (no computation at all).
    cached: bool
    #: Computed via the process pool (vs inline in the parent).
    sharded: bool


@dataclass
class RunReport:
    """Execution account of one :meth:`ShardedRunner.run`.

    ``jobs`` is the *effective* worker count the run used (the CLI
    resolves ``--jobs 0`` to the cpu count before it reaches here);
    ``oversubscribed`` records that it exceeded ``cpu_count``, in which
    case wall times measure time-slicing, not parallelism.
    """

    jobs: int
    fingerprint: str
    timings: list[StageTiming] = field(default_factory=list)
    cpu_count: int = 0
    oversubscribed: bool = False
    start_method: str | None = None
    #: Per-stage supervision accounts (supervised fan-out stages only).
    resilience: list[StageResilience] = field(default_factory=list)

    @property
    def cached_stages(self) -> list[str]:
        return [t.name for t in self.timings if t.cached]

    @property
    def computed_stages(self) -> list[str]:
        return [t.name for t in self.timings if not t.cached]

    @property
    def total_seconds(self) -> float:
        return sum(t.seconds for t in self.timings)

    @property
    def degraded(self) -> bool:
        """True when retries were exhausted and shards were quarantined."""
        return any(row.degraded for row in self.resilience)

    @property
    def total_retries(self) -> int:
        return sum(row.retries for row in self.resilience)

    @property
    def total_reassignments(self) -> int:
        return sum(row.reassignments for row in self.resilience)

    @property
    def quarantined_probes(self) -> list[int]:
        """Probe ids the run abandoned, across all degraded stages."""
        quarantined: list[int] = []
        for row in self.resilience:
            quarantined.extend(row.quarantined_probes)
        return quarantined

    def render(self) -> str:
        """Stage table (plus supervision account) for ``repro-run``."""
        lines = ["%-8s  %9s  %s" % ("stage", "seconds", "mode")]
        for timing in self.timings:
            mode = ("cached" if timing.cached
                    else "sharded" if timing.sharded else "inline")
            lines.append("%-8s  %9.3f  %s"
                         % (timing.name, timing.seconds, mode))
        total = "%-8s  %9.3f  jobs=%d" % ("total", self.total_seconds,
                                          self.jobs)
        if self.jobs > 1 and self.start_method:
            total += " (%s)" % self.start_method
        if self.oversubscribed:
            total += "  OVERSUBSCRIBED: %d jobs on %d cpu(s)" % (
                self.jobs, self.cpu_count)
        lines.append(total)
        lines.extend(self._render_resilience())
        return "\n".join(lines)

    def _render_resilience(self) -> list[str]:
        eventful = [row for row in self.resilience
                    if row.retries or row.reassignments or row.abandoned
                    or row.checkpoints_loaded]
        if not eventful:
            return []
        lines = ["", "%-8s  %7s  %8s  %9s  %9s  %7s" % (
            "stage", "shards", "retries", "reassign", "resumed", "lost")]
        for row in eventful:
            lines.append("%-8s  %7d  %8d  %9d  %9d  %7d" % (
                row.stage, row.shards, row.retries, row.reassignments,
                row.checkpoints_loaded, len(row.abandoned)))
        if self.degraded:
            analyzed = sum(row.analyzed_items for row in self.resilience)
            quarantined = sum(row.quarantined_items
                              for row in self.resilience)
            lines.append(
                "DEGRADED: retries exhausted on %d shard(s); "
                "%d item(s) analyzed, %d quarantined"
                % (sum(len(row.abandoned) for row in self.resilience),
                   analyzed, quarantined))
            for row in self.resilience:
                for index in row.abandoned:
                    causes = [failure.cause for failure in row.failures
                              if failure.shard_index == index]
                    lines.append(
                        "  %s shard %d: %s" % (
                            row.stage, index,
                            " -> ".join(causes) if causes else "unknown"))
        return lines


class ShardedRunner:
    """Runs the analysis stage graph over one set of datasets."""

    def __init__(self, connlog, archive, kroot, uptime, ip2as,
                 as_names: Mapping[int, str] | None = None,
                 as_countries: Mapping[int, str] | None = None,
                 min_connected: float = 30 * timeutil.DAY,
                 fingerprint: str = "",
                 config: RuntimeConfig | None = None) -> None:
        self._connlog = connlog
        self._archive = archive
        self._kroot = kroot
        self._uptime = uptime
        self._ip2as = ip2as
        self._as_names = dict(as_names or {})
        self._as_countries = dict(as_countries or {})
        self._min_connected = min_connected
        self.fingerprint = fingerprint
        self.config = config or RuntimeConfig()
        self.start_method = resolve_start_method(self.config.start_method)
        self.cache: ArtifactCache | None = None
        if self.config.cache_dir is not None:
            self.cache = ArtifactCache(
                self.config.cache_dir,
                max_bytes=self.config.max_cache_bytes)
        self.report = self._new_report()
        self._pool: ProcessPoolExecutor | None = None
        self._supervisor: ShardSupervisor | None = None
        self._version = ""
        self._params = ""
        self._use_columnar = self.config.columnar and colpack.HAVE_NUMPY
        self._colconn: ColumnarConnlog | None = None
        self._colup: ColumnarUptime | None = None

    def _new_report(self) -> RunReport:
        cpus = os.cpu_count() or 1
        return RunReport(
            jobs=self.config.jobs, fingerprint=self.fingerprint,
            cpu_count=cpus, oversubscribed=self.config.jobs > cpus,
            start_method=self.start_method)

    # -- public -------------------------------------------------------------

    def run(self) -> AnalysisResults:
        """Execute every stage (cache-skipping) and assemble the results."""
        artifacts: dict[str, object] = {
            "connlog": self._connlog,
            "archive": self._archive,
            "ip2as": self._ip2as,
            "uptime": self._uptime,
            "kroot": self._kroot,
            "min_connected": self._min_connected,
        }
        self.report = self._new_report()
        params = fp.combine("min_connected", repr(self._min_connected))
        version = code_version()
        self._params = params
        self._version = version
        try:
            with obs.span("run", category="run", jobs=self.config.jobs,
                          start_method=self.start_method):
                for spec in topological_order():
                    started = time.perf_counter()
                    with obs.span(spec.name, category="stage") as handle:
                        outputs, cached, sharded = self._run_stage(
                            spec, artifacts, version, params)
                        handle.set(cached=cached, sharded=sharded)
                    artifacts.update(outputs)
                    self.report.timings.append(StageTiming(
                        spec.name, time.perf_counter() - started, cached,
                        sharded))
        finally:
            if self._pool is not None:
                self._pool.shutdown()
                self._pool = None
                workers.reset_worker()
            if self._supervisor is not None:
                self._supervisor.shutdown()
                self._supervisor = None
        self._record_metrics()
        return self._assemble(artifacts)

    def _record_metrics(self) -> None:
        """Lift this run's execution facts into the metrics registry.

        This — not the stage functions — is the instrumentation
        boundary: metrics describe how the run executed and never feed
        back into what it computed.
        """
        obs.gauge("runtime.jobs.effective", self.report.jobs)
        obs.gauge("runtime.cpu_count", self.report.cpu_count)
        obs.gauge("runtime.oversubscribed",
                  1 if self.report.oversubscribed else 0)
        if self.report.resilience:
            obs.gauge("runtime.degraded", 1 if self.report.degraded else 0)
            obs.gauge("runtime.quarantined_probes",
                      len(self.report.quarantined_probes))
        if self.cache is not None:
            obs.record_cache(self.cache.stats,
                             bytes_on_disk=self.cache.total_bytes())

    # -- stage execution ----------------------------------------------------

    def _run_stage(self, spec: StageSpec, artifacts: dict, version: str,
                   params: str) -> tuple[dict, bool, bool]:
        key = None
        if self.cache is not None and self.fingerprint and spec.cacheable:
            key = ArtifactCache.key(self.fingerprint, spec.name, version,
                                    params)
            hit, value = self.cache.load(key, stage=spec.name)
            if hit:
                return self._revive(value), True, False
        sharded = self.config.jobs > 1 and spec.fan_out
        if not sharded and not self._use_columnar \
                and spec.name in ("spans", "gaps"):
            # Only the legacy record kernels read verdict entries; the
            # columnar kernels work off the array views directly.
            self._ensure_full_filter_report(artifacts)
        if sharded:
            outputs = self._compute_sharded(spec, artifacts)
        elif self._use_columnar and spec.fan_out:
            outputs = self._compute_columnar(spec, artifacts)
        else:
            result = spec.func(*(artifacts[name] for name in spec.inputs))
            values = result if len(spec.outputs) > 1 else (result,)
            outputs = dict(zip(spec.outputs, values))
        if key is not None and not self.report.degraded:
            # A degraded stage's artifact — and every artifact computed
            # downstream of one — is incomplete by definition, and the
            # cache key (fingerprint, stage, version, params) does not
            # encode the degradation: storing either would silently
            # poison every later warm run.  One degraded stage therefore
            # stops artifact caching for the rest of the run.
            self.cache.store(key, self._cacheable(spec, outputs))
        return outputs, False, sharded

    def _columnar_connlog(self) -> ColumnarConnlog:
        """The connlog's array view, built once per runner."""
        if self._colconn is None:
            self._colconn = ColumnarConnlog.from_connlog(self._connlog)
        return self._colconn

    def _columnar_uptime(self) -> ColumnarUptime:
        if self._colup is None:
            self._colup = ColumnarUptime.from_uptime(self._uptime)
        return self._colup

    def _compute_columnar(self, spec: StageSpec, artifacts: dict) -> dict:
        """Run one hot stage through the vectorized kernels, inline."""
        if spec.name == "filter":
            return {"filter_report": stage_filter_col(
                self._columnar_connlog(), self._connlog, self._archive,
                self._ip2as, self._min_connected)}
        if spec.name == "spans":
            spans_by_probe, durations_by_probe = stage_spans_col(
                self._columnar_connlog(), self._connlog,
                artifacts["filter_report"])
            return {"spans_by_probe": spans_by_probe,
                    "durations_by_probe": durations_by_probe}
        if spec.name == "reboots":
            day_counts, firmware_days, filtered = stage_reboots_col(
                self._columnar_uptime())
            return {"reboot_day_counts": day_counts,
                    "firmware_days": firmware_days,
                    "filtered_reboots": filtered}
        if spec.name == "gaps":
            return {"gap_events_by_probe": stage_gaps_col(
                self._columnar_connlog(), self._kroot,
                artifacts["filter_report"],
                artifacts["filtered_reboots"])}
        raise ValueError("stage %r has no columnar kernel" % (spec.name,))

    def _cacheable(self, spec: StageSpec, outputs: dict) -> dict:
        """What actually goes to disk for one stage's outputs.

        The filter report's per-probe connlog entries are a pure
        intermediate — several times larger than every derived result
        combined, and only consumed by later *compute* paths (which
        re-derive them from the raw datasets anyway when sharded).
        Stripping them keeps warm-cache loads fast; the serial compute
        path restores them on demand via
        :meth:`_ensure_full_filter_report`.  In columnar mode the fat
        object-graph artifacts (filter report, span/duration and
        gap-event maps) are stored in their columnar forms — the cache
        writes each to a memory-mappable ``.col`` sidecar instead of a
        pickle graph.
        """
        if spec.name == "filter":
            report: FilterReport = outputs["filter_report"]
            if self._use_columnar:
                return {"filter_report":
                        ColumnarFilterArtifact.from_report(report)}
            slim = FilterReport(
                verdicts={pid: replace(verdict, entries=[])
                          for pid, verdict in report.verdicts.items()},
                total=report.total)
            slim.entries_stripped = True  # type: ignore[attr-defined]
            return {"filter_report": slim}
        if spec.name == "spans" and self._use_columnar:
            return {"spans_by_probe":
                    ColumnarSpanMap.from_map(outputs["spans_by_probe"]),
                    "durations_by_probe":
                    ColumnarFloatMap.from_map(outputs["durations_by_probe"])}
        if spec.name == "gaps" and self._use_columnar:
            return {"gap_events_by_probe": ColumnarGapEventMap.from_map(
                outputs["gap_events_by_probe"])}
        return outputs

    @staticmethod
    def _revive(outputs: object) -> object:
        """Decode columnar cache artifacts back into stage outputs.

        Decoding is by value type, not by the runner's own kernel mode:
        a legacy-kernel run can warm from a columnar-mode cache and vice
        versa (stage keys don't encode the mode — the kernels are
        digest-identical).
        """
        if isinstance(outputs, dict):
            revived = None
            for name, item in outputs.items():
                decoded = colartifact.decode_value(item)
                if decoded is not item:
                    if revived is None:
                        revived = dict(outputs)
                    revived[name] = decoded
            if revived is not None:
                return revived
        return outputs

    def _ensure_full_filter_report(self, artifacts: dict) -> None:
        """Restore verdict entries when a cached slim report is about
        to feed a serial per-probe record kernel that needs them.

        Only reachable on a *partial* cache hit (filter cached, a later
        stage evicted or corrupted): all stage keys share the same
        fingerprint/version/params, so a normal warm run hits every
        stage and never lands here.  Entries are a pure function of the
        connection log, so :func:`restore_entries` rebuilds the fat
        report without re-running classification.
        """
        report = artifacts.get("filter_report")
        if report is not None and getattr(report, "entries_stripped",
                                          False):
            restore_entries(report, self._connlog)

    def _start_pool(self) -> None:
        """Create the worker pool under the resolved start method."""
        context = workers.WorkerContext(
            connlog=self._connlog, archive=self._archive,
            ip2as=self._ip2as, kroot=self._kroot, uptime=self._uptime,
            min_connected=self._min_connected,
            columnar=self._use_columnar)
        mp_context = multiprocessing.get_context(self.start_method)
        if self.start_method == "fork":
            # Install the context parent-side: forked workers inherit
            # it for free instead of unpickling it once per process.
            workers.init_worker(context)
            self._pool = ProcessPoolExecutor(
                max_workers=self.config.jobs, mp_context=mp_context)
        else:
            # Under spawn the initializer ships the context exactly once
            # per worker process, never per task.
            self._pool = ProcessPoolExecutor(
                max_workers=self.config.jobs, mp_context=mp_context,
                initializer=workers.init_worker, initargs=(context,))

    def _map_shards(self, task, shards: list) -> list:
        """Run one task per shard on the pool, payloads in shard order.

        Spans and metrics the workers shipped with their results are
        absorbed here, tagged with the shard index, in shard order —
        the merge is deterministic even though worker timing is not.
        This is the legacy unsupervised path: a seal failure here is
        fatal (there is no retry machinery), which is exactly the
        behavior ``supervise=False`` opts into.
        """
        if self._pool is None:
            self._start_pool()
        payloads = []
        for index, result in enumerate(self._pool.map(task, shards)):
            obs.absorb_spans(span.with_attrs(shard=index)
                             for span in result.spans)
            obs.metrics().absorb(result.metrics)
            payloads.append(result.open_payload())
        return payloads

    def _ensure_supervisor(self) -> ShardSupervisor:
        """The run's fault-tolerant dispatcher, created on first fan-out."""
        if self._supervisor is None:
            context = workers.WorkerContext(
                connlog=self._connlog, archive=self._archive,
                ip2as=self._ip2as, kroot=self._kroot, uptime=self._uptime,
                min_connected=self._min_connected,
                fault_plan=self.config.fault_plan,
                columnar=self._use_columnar)
            self._supervisor = ShardSupervisor(
                context, jobs=self.config.jobs,
                start_method=self.start_method,
                policy=self.config.policy(), cache=self.cache,
                fingerprint=self.fingerprint, version=self._version,
                params=self._params, resume=self.config.resume)
        return self._supervisor

    def _stage_payloads(self, stage: str, shards: list[list],
                        probe_of=lambda item: item) -> list:
        """Shard payloads for one fan-out stage, in shard order.

        Supervised runs go through :class:`ShardSupervisor` (recovery,
        checkpoints, quarantine — abandoned shards are dropped from the
        merge and accounted in the report); unsupervised runs keep the
        legacy ``pool.map`` fast path.
        """
        if self.config.supervise:
            # A stage downstream of a degraded one runs on inputs that
            # are missing quarantined work: taint it so the supervisor
            # neither stores nor resumes its shard checkpoints.
            outcome = self._ensure_supervisor().run_stage(
                stage, stage, shards, probe_of,
                tainted=self.report.degraded)
            self.report.resilience.append(outcome.resilience)
            return [payload for payload in outcome.payloads
                    if payload is not None]
        task = {"filter": workers.shard_filter,
                "spans": workers.shard_spans,
                "reboots": workers.shard_reboots,
                "gaps": workers.shard_gaps}[stage]
        return self._map_shards(task, shards)

    def _shards_of(self, probe_ids: list) -> list[list]:
        return partition(probe_ids, shard_count(
            self.config.jobs, len(probe_ids), self.config.shards))

    def _compute_sharded(self, spec: StageSpec, artifacts: dict) -> dict:
        """Fan one per-probe stage out over shards; merge canonically.

        Probe ids are sorted (dataset accessors return them sorted) and
        shards are contiguous chunks, so :func:`ordered_merge`'s
        sorted-key result is bit-identical to the old shard-order fold —
        but no longer *relies* on those two invariants holding, and the
        merge stays deterministic if shard boundaries ever change.
        """
        if spec.name == "filter":
            shards = self._shards_of(self._connlog.probe_ids())
            verdicts = ordered_merge(
                *self._stage_payloads("filter", shards))
            return {"filter_report": report_from_verdicts(verdicts)}

        if spec.name == "spans":
            filter_report = artifacts["filter_report"]
            shards = self._shards_of(filter_report.analyzable_geo())
            merged = ordered_merge(
                *self._stage_payloads("spans", shards))
            spans_by_probe: dict = {}
            durations_by_probe: dict = {}
            for probe_id, (spans, durations) in merged.items():
                spans_by_probe[probe_id] = spans
                if durations:
                    durations_by_probe[probe_id] = durations
            return {"spans_by_probe": spans_by_probe,
                    "durations_by_probe": durations_by_probe}

        if spec.name == "reboots":
            shards = self._shards_of(self._uptime.probe_ids())
            raw = ordered_merge(
                *self._stage_payloads("reboots", shards))
            day_counts, firmware_days, filtered = aggregate_reboots(raw)
            return {"reboot_day_counts": day_counts,
                    "firmware_days": firmware_days,
                    "filtered_reboots": filtered}

        if spec.name == "gaps":
            filter_report = artifacts["filter_report"]
            filtered = artifacts["filtered_reboots"]
            eligible = [pid for pid in filter_report.analyzable_as()
                        if self._kroot.has_probe(pid)]
            items = [(pid, filtered.get(pid, [])) for pid in eligible]
            shards = self._shards_of(items)
            gap_events = ordered_merge(
                *self._stage_payloads("gaps", shards,
                                      probe_of=lambda item: item[0]))
            return {"gap_events_by_probe": gap_events}

        raise ValueError("stage %r is not fan-out capable" % (spec.name,))

    # -- assembly -----------------------------------------------------------

    def _assemble(self, artifacts: dict) -> AnalysisResults:
        return AnalysisResults(
            filter_report=artifacts["filter_report"],
            archive=self._archive,
            ip2as=self._ip2as,
            as_names=self._as_names,
            as_countries=self._as_countries,
            spans_by_probe=artifacts["spans_by_probe"],
            durations_by_probe=artifacts["durations_by_probe"],
            changes_by_probe=artifacts["changes_by_probe"],
            asn_by_probe=artifacts["asn_by_probe"],
            gap_events_by_probe=artifacts["gap_events_by_probe"],
            stats_by_probe=artifacts["stats_by_probe"],
            reboot_day_counts=artifacts["reboot_day_counts"],
            firmware_days=artifacts["firmware_days"],
            _v3_probes=artifacts["v3_probes"],
        )


def world_fingerprint(config) -> str:
    """Content fingerprint of an inline-simulated world.

    The world is a pure function of its :class:`ScenarioConfig` (the
    simulator is seeded), so the config's canonical repr — dataclasses
    all the way down — identifies the datasets exactly; simulator code
    changes are covered by the cache's code-version component.
    """
    return fp.combine("world", repr(config))


def runner_for_bundle(bundle, config: RuntimeConfig | None = None,
                      min_connected: float | None = None) -> ShardedRunner:
    """Build a runner from a loaded on-disk bundle.

    Mirrors :func:`repro.core.pipeline.pipeline_for_bundle`, including the
    ``min_connected`` default (30 days, capped at a tenth of the window).
    """
    if min_connected is None:
        window = bundle.end - bundle.start
        min_connected = min(30 * timeutil.DAY, window / 10)
    return ShardedRunner(
        bundle.connlog, bundle.archive, bundle.kroot, bundle.uptime,
        bundle.ip2as, as_names=bundle.as_names,
        as_countries=bundle.as_countries, min_connected=min_connected,
        fingerprint=bundle.fingerprint, config=config)


def runner_for_world(world, config: RuntimeConfig | None = None,
                     min_connected: float | None = None) -> ShardedRunner:
    """Build a runner from a simulated :class:`WorldData` in memory.

    Mirrors :func:`repro.core.pipeline.pipeline_for_world`.
    """
    as_names: dict[int, str] = {}
    as_countries: dict[int, str] = {}
    for profile in world.config.profiles:
        as_names[profile.spec.asn] = profile.spec.name
        as_countries[profile.spec.asn] = profile.spec.country
    if min_connected is None:
        window = world.config.end - world.config.start
        min_connected = min(30 * timeutil.DAY, window / 10)
    return ShardedRunner(
        world.connlog, world.archive, world.kroot, world.uptime,
        world.ip2as, as_names=as_names, as_countries=as_countries,
        min_connected=min_connected,
        fingerprint=world_fingerprint(world.config), config=config)
