"""Command-line runtime driver: run the stage graph, report how it ran.

Usage::

    repro-run --data bundle/ --jobs 4 --cache-dir .repro-cache
    repro-run --data bundle/ --cache-dir .repro-cache   # warm: all cached
    repro-run --scale 0.1 --seed 7 --jobs 2             # inline simulation
    repro-run --list-stages

Prints a per-stage execution table (inline / sharded / cached), the
dataset fingerprint and the canonical results digest — two runs printing
the same digest agree on every table and figure.  ``repro-experiment``
accepts the same ``--jobs/--cache-dir/--no-cache`` flags for rendering
actual tables and figures through this executor.
"""

from __future__ import annotations

import argparse
import os
import sys

from repro import obs
from repro.errors import ReproError
from repro.runtime.cache import ArtifactCache
from repro.runtime.digest import results_digest
from repro.runtime.executor import (
    RuntimeConfig,
    runner_for_bundle,
    runner_for_world,
)
from repro.runtime.stages import render_graph
from repro.util import fingerprint as fp
from repro.util import timeutil


def add_runtime_arguments(parser: argparse.ArgumentParser) -> None:
    """The executor flags, shared with ``repro-experiment``."""
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes for per-probe stages "
                             "(default %(default)s; 0 = one per cpu; "
                             "output is identical for every N)")
    parser.add_argument("--shards", type=int, default=None, metavar="M",
                        help="shard count override (default jobs*4)")
    parser.add_argument("--cache-dir", metavar="DIR", default=None,
                        help="artifact cache directory; warm re-runs skip "
                             "unchanged stages")
    parser.add_argument("--no-cache", action="store_true",
                        help="ignore --cache-dir and recompute everything")
    parser.add_argument("--start-method", choices=["fork", "spawn"],
                        default=None,
                        help="worker pool start method (default: fork "
                             "where available, else spawn; results are "
                             "identical either way)")
    parser.add_argument("--trace", metavar="FILE", default=None,
                        help="write a Chrome trace_event JSON of the run "
                             "(inspect with repro-obs report FILE)")
    parser.add_argument("--resume", action="store_true",
                        help="reload completed shard checkpoints from the "
                             "cache before dispatching (restart a killed "
                             "run from the last completed shard)")
    parser.add_argument("--max-retries", type=int,
                        default=timeutil.MAX_SHARD_RETRIES, metavar="K",
                        help="failed attempts per shard before its probes "
                             "are quarantined (default %(default)s)")
    parser.add_argument("--shard-deadline", type=float,
                        default=timeutil.SHARD_DEADLINE_S, metavar="SEC",
                        help="per-shard wall-clock deadline before the "
                             "supervisor declares it hung "
                             "(default %(default)s)")
    parser.add_argument("--no-supervise", action="store_true",
                        help="use the legacy unsupervised pool (no "
                             "crash/hang recovery, no checkpoints)")
    parser.add_argument("--legacy-kernels", action="store_true",
                        help="run the record-at-a-time stage kernels "
                             "instead of the vectorized columnar ones "
                             "(the differential-testing oracle; results "
                             "are bit-identical either way)")


def resolve_jobs(jobs: int) -> int:
    """Map ``--jobs 0`` to the machine's cpu count (auto-detect)."""
    if jobs == 0:
        return os.cpu_count() or 1
    return jobs


def warn_if_oversubscribed(jobs: int) -> None:
    """Warn loudly when the job count exceeds the available cpus.

    Oversubscription is accepted (it is how the 1-cpu CI machine still
    exercises the sharded code path) but the wall times it produces
    measure time-slicing, not parallelism — worth a loud note before
    anyone reads a benchmark off them.
    """
    cpus = os.cpu_count() or 1
    if jobs > cpus:
        print("warning: --jobs %d exceeds %d available cpu(s); workers "
              "will time-slice and wall times will not reflect "
              "parallel speedup" % (jobs, cpus), file=sys.stderr)


def parse_inject_spec(spec: str):
    """Parse a ``--inject`` spec into a ``ProcessFaultPlan``.

    Comma-separated ``key=value`` pairs (bare ``persistent`` allowed)::

        --inject seed=7,worker_crash=0.25,envelope_corrupt=0.5
        --inject seed=1,envelope_corrupt=1,persistent
    """
    from repro.faults.process import ProcessFaultPlan
    values: dict[str, object] = {}
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        if "=" not in part:
            if part != "persistent":
                raise ValueError("bad --inject field %r (expected "
                                 "key=value or 'persistent')" % (part,))
            values["persistent"] = True
            continue
        key, _, raw = part.partition("=")
        key = key.strip()
        if key == "seed":
            values[key] = int(raw)
        elif key == "persistent":
            values[key] = raw.strip().lower() in ("1", "true", "yes")
        elif key in ("worker_crash", "worker_hang", "envelope_corrupt",
                     "worker_slow", "slow_delay_s"):
            values[key] = float(raw)
        else:
            raise ValueError("unknown --inject field %r" % (key,))
    return ProcessFaultPlan(**values)


def runtime_config(args: argparse.Namespace) -> RuntimeConfig:
    """Build a :class:`RuntimeConfig` from parsed runtime flags."""
    cache_dir = None if args.no_cache else args.cache_dir
    jobs = resolve_jobs(args.jobs)
    warn_if_oversubscribed(jobs)
    fault_plan = None
    inject = getattr(args, "inject", None)
    if inject:
        fault_plan = parse_inject_spec(inject)
    return RuntimeConfig(
        jobs=jobs, shards=args.shards, cache_dir=cache_dir,
        start_method=getattr(args, "start_method", None),
        supervise=not getattr(args, "no_supervise", False),
        max_retries=getattr(args, "max_retries",
                            timeutil.MAX_SHARD_RETRIES),
        shard_deadline_s=getattr(args, "shard_deadline",
                                 timeutil.SHARD_DEADLINE_S),
        resume=getattr(args, "resume", False),
        fault_plan=fault_plan,
        columnar=not getattr(args, "legacy_kernels", False))


def write_run_trace(path: str, runner, digest: str) -> None:
    """Export this process's spans/metrics plus run identity to ``path``.

    Shared by ``repro-run`` and ``repro-experiment`` so both CLIs stamp
    the same metadata (``repro-obs report`` keys off it).
    """
    obs.write_trace(path, meta={
        "jobs": runner.config.jobs,
        "start_method": runner.start_method,
        "fingerprint": runner.fingerprint,
        "results_digest": digest,
    })


def main(argv: list[str] | None = None) -> int:
    """Run every analysis stage over a bundle or an inline simulation."""
    parser = argparse.ArgumentParser(
        description="Run the sharded analysis stage graph and report "
                    "per-stage execution (inline/sharded/cached), the "
                    "dataset fingerprint and the results digest")
    parser.add_argument("--data", metavar="DIR", default=None,
                        help="dataset bundle written by repro-simulate "
                             "(default: simulate inline)")
    parser.add_argument("--scale", type=float, default=0.1,
                        help="inline scenario scale (default %(default)s)")
    parser.add_argument("--seed", type=int, default=2015,
                        help="inline scenario seed (default %(default)s)")
    parser.add_argument("--read-policy", choices=["strict", "repair"],
                        default="strict",
                        help="bundle ingestion contract (default "
                             "%(default)s)")
    parser.add_argument("--list-stages", action="store_true",
                        help="print the stage graph and exit")
    parser.add_argument("--clear-cache", action="store_true",
                        help="empty the --cache-dir store and exit")
    parser.add_argument("--inject", metavar="SPEC", default=None,
                        help="process-fault plan for supervised runs, "
                             "e.g. seed=7,worker_crash=0.25 (kinds: "
                             "worker_crash, worker_hang, "
                             "envelope_corrupt, worker_slow; add "
                             "'persistent' to re-fire on retries)")
    add_runtime_arguments(parser)
    args = parser.parse_args(argv)

    if args.list_stages:
        print(render_graph())
        return 0
    if args.clear_cache:
        if not args.cache_dir:
            print("--clear-cache requires --cache-dir", file=sys.stderr)
            return 2
        removed = ArtifactCache(args.cache_dir).clear()
        print("removed %d cached artifacts" % removed)
        return 0

    config = runtime_config(args)
    try:
        if args.data is not None:
            from repro.sim.io import load_bundle
            from repro.util.ingest import IngestReport, ReadPolicy
            policy = ReadPolicy(args.read_policy)
            report = IngestReport()
            bundle = load_bundle(args.data, policy=policy, report=report)
            obs.record_ingest(report)
            if policy is ReadPolicy.REPAIR and not report.clean:
                print(report.render(), file=sys.stderr)
            runner = runner_for_bundle(bundle, config)
        else:
            from repro.sim.scenario import paper_scenario
            from repro.sim.world import build_world
            world = build_world(paper_scenario(scale=args.scale,
                                               seed=args.seed))
            runner = runner_for_world(world, config)
        results = runner.run()
    except ReproError as error:
        print(error, file=sys.stderr)
        return 1

    digest = results_digest(results)
    print(runner.report.render())
    print("fingerprint  %s" % (fp.short(runner.fingerprint) or "-"))
    print("digest       %s" % fp.short(digest))
    if runner.cache is not None:
        stats = runner.cache.stats
        print("cache        %d hit, %d miss, %d stored"
              % (stats.hits, stats.misses, stats.stores))
    if config.fault_plan is not None and runner.report.resilience:
        from repro.faults.process import reconcile
        print(reconcile(config.fault_plan,
                        runner.report.resilience).render())
    if args.trace is not None:
        write_run_trace(args.trace, runner, digest)
        print("trace        %s" % args.trace)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
