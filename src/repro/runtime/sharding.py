"""Deterministic probe sharding.

Shards are contiguous, balanced chunks of the *sorted* probe-id list, so
the partition is a pure function of the probe population — independent of
worker count, scheduling, or dict iteration order.  Merging shard results
in shard order therefore re-creates exactly the probe order the serial
pipeline iterates in, which is the cornerstone of the ``jobs=N`` ==
``jobs=1`` bit-identity guarantee.
"""

from __future__ import annotations

from typing import Sequence, TypeVar

T = TypeVar("T")

#: Shards per worker: small enough to keep task dispatch overhead low,
#: large enough that one slow shard cannot serialize the pool's tail.
OVERSHARD = 4


def shard_count(jobs: int, items: int, shards: int | None = None) -> int:
    """Number of shards for a stage over ``items`` work units.

    An explicit ``shards`` wins; otherwise ``jobs * OVERSHARD``, clamped
    to the number of items so no shard is empty (and to 1 for tiny runs).
    """
    if shards is None:
        shards = jobs * OVERSHARD
    return max(1, min(shards, items)) if items else 1


def partition(items: Sequence[T], shards: int) -> list[list[T]]:
    """Split ``items`` into ``shards`` contiguous, balanced chunks.

    The first ``len(items) % shards`` chunks get one extra element, so
    chunk sizes differ by at most one.  Order within and across chunks
    preserves the input order; callers pass sorted probe ids.
    """
    if shards <= 0:
        raise ValueError("shards must be positive, got %r" % (shards,))
    base, extra = divmod(len(items), shards)
    chunks: list[list[T]] = []
    cursor = 0
    for index in range(shards):
        size = base + (1 if index < extra else 0)
        chunks.append(list(items[cursor:cursor + size]))
        cursor += size
    return [chunk for chunk in chunks if chunk]
