"""repro.runtime — sharded parallel execution with artifact caching.

The analysis pipeline (:mod:`repro.core.pipeline`) is a chain of pure
stage functions, embarrassingly parallel per probe and fully deterministic.
This package exploits both properties:

* :mod:`repro.runtime.stages` declares the pipeline as an explicit stage
  graph — named stages with declared inputs and outputs, validated as a
  DAG;
* :mod:`repro.runtime.executor` partitions probes into deterministic
  shards and fans the per-probe stages out over a process pool, merging
  shard results in canonical order so ``jobs=N`` output is bit-identical
  to ``jobs=1``;
* :mod:`repro.runtime.cache` stores stage outputs content-addressed on
  the bundle fingerprint, stage name, code version and parameters, so
  warm re-runs skip every unchanged stage;
* :mod:`repro.runtime.supervisor` wraps the fan-out in fault tolerance —
  worker crash/hang detection, bounded retry with deterministic backoff,
  per-shard checkpoints for ``--resume``, and quarantine-with-exact-
  accounting when retries are exhausted (the run degrades, never dies).

``repro-run`` (:mod:`repro.runtime.cli`) drives the graph from the shell;
``repro-experiment`` threads ``--jobs/--cache-dir/--no-cache`` through to
the same executor.
"""

from repro.runtime.cache import ArtifactCache, CacheStats, code_version
from repro.runtime.digest import results_digest
from repro.runtime.executor import (
    RunReport,
    RuntimeConfig,
    ShardedRunner,
    StageTiming,
    resolve_start_method,
    runner_for_bundle,
    runner_for_world,
    world_fingerprint,
)
from repro.runtime.sharding import partition, shard_count
from repro.runtime.stages import STAGES, StageSpec, topological_order
from repro.runtime.supervisor import (
    CheckpointManifest,
    ShardFailure,
    ShardSupervisor,
    StageResilience,
    SupervisionPolicy,
)

__all__ = [
    "ArtifactCache",
    "CacheStats",
    "CheckpointManifest",
    "RunReport",
    "RuntimeConfig",
    "ShardFailure",
    "ShardSupervisor",
    "ShardedRunner",
    "STAGES",
    "StageResilience",
    "StageSpec",
    "StageTiming",
    "SupervisionPolicy",
    "code_version",
    "partition",
    "resolve_start_method",
    "results_digest",
    "runner_for_bundle",
    "runner_for_world",
    "shard_count",
    "topological_order",
    "world_fingerprint",
]
