"""The analysis stage graph.

Declares :class:`StageSpec` metadata for every named stage function in
:mod:`repro.core.pipeline`: which artifacts it consumes, which it
produces, and whether it fans out per probe.  The executor walks the
graph in topological order; the artifact cache keys each stage's outputs
on its name; and :func:`validate_graph` keeps the declarations honest
(every input is either a source dataset, a parameter, or the output of
an earlier stage — and no two stages produce the same artifact).

The graph intentionally lives apart from the stage *implementations*
(which stay in ``core`` so the serial pipeline keeps working without this
package): ``runtime`` ranks above ``core`` in the layer DAG and may
import it, never the reverse.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core import pipeline as _pipeline

#: Artifacts that exist before any stage runs: the loaded datasets.
SOURCE_ARTIFACTS = frozenset({
    "connlog", "archive", "ip2as", "uptime", "kroot",
})

#: Scalar knobs that parameterize stages (part of every cache key).
PARAMETERS = frozenset({"min_connected"})


@dataclass(frozen=True)
class StageSpec:
    """One named stage: declared dataflow plus its pure implementation.

    ``fan_out`` marks stages whose dominant cost is an independent
    per-probe kernel; only these are dispatched to the process pool.
    The remaining stages are cheap aggregations the parent runs inline.

    ``cacheable=False`` marks stages whose output is a near-free
    projection of an earlier artifact: re-running the stage function on
    a warm run is cheaper than deserializing its (fat) output, so the
    executor neither looks such a stage up in the cache nor stores it.
    """

    name: str
    inputs: tuple[str, ...]
    outputs: tuple[str, ...]
    fan_out: bool
    #: Whole-input implementation (the serial path).
    func: Callable
    cacheable: bool = True


#: The pipeline's stages in execution (topological) order.
STAGES: tuple[StageSpec, ...] = (
    StageSpec(
        name="filter",
        inputs=("connlog", "archive", "ip2as", "min_connected"),
        outputs=("filter_report",),
        fan_out=True,
        func=_pipeline.stage_filter,
    ),
    StageSpec(
        name="spans",
        inputs=("filter_report",),
        outputs=("spans_by_probe", "durations_by_probe"),
        fan_out=True,
        func=_pipeline.stage_spans,
    ),
    StageSpec(
        name="changes",
        inputs=("filter_report",),
        outputs=("changes_by_probe", "asn_by_probe"),
        fan_out=False,
        func=_pipeline.stage_changes,
        # Pure reshaping of verdicts the filter artifact already holds:
        # storing it duplicated megabytes of AddressChange pickle that
        # cost more to load than stage_changes costs to re-run.
        cacheable=False,
    ),
    StageSpec(
        name="reboots",
        inputs=("uptime",),
        outputs=("reboot_day_counts", "firmware_days", "filtered_reboots"),
        fan_out=True,
        func=_pipeline.stage_reboots,
    ),
    StageSpec(
        name="gaps",
        inputs=("filter_report", "kroot", "filtered_reboots"),
        outputs=("gap_events_by_probe",),
        fan_out=True,
        func=_pipeline.stage_gaps,
    ),
    StageSpec(
        name="stats",
        inputs=("gap_events_by_probe",),
        outputs=("stats_by_probe",),
        fan_out=False,
        func=_pipeline.stage_stats,
    ),
    StageSpec(
        name="v3",
        inputs=("asn_by_probe", "archive"),
        outputs=("v3_probes",),
        fan_out=False,
        func=_pipeline.stage_v3,
    ),
)


def cacheable_stages(stages: tuple[StageSpec, ...] = STAGES
                     ) -> tuple[StageSpec, ...]:
    """The stages whose outputs the artifact cache persists."""
    return tuple(spec for spec in stages if spec.cacheable)


def stage_by_name(name: str) -> StageSpec:
    """Look up one stage; raises :class:`KeyError` with the known names."""
    for spec in STAGES:
        if spec.name == name:
            return spec
    raise KeyError("unknown stage %r (known: %s)"
                   % (name, ", ".join(s.name for s in STAGES)))


def validate_graph(stages: tuple[StageSpec, ...] = STAGES) -> None:
    """Check the declared dataflow is a well-formed DAG.

    Raises :class:`ValueError` on an undefined input (not a source
    dataset, parameter, or earlier stage's output) or a doubly-produced
    artifact.  Exercised by the test suite so the declarations cannot
    drift from the implementations silently.
    """
    available = set(SOURCE_ARTIFACTS) | set(PARAMETERS)
    for spec in stages:
        for artifact in spec.inputs:
            if artifact not in available:
                raise ValueError(
                    "stage %r input %r is not a dataset, parameter, or "
                    "earlier stage output" % (spec.name, artifact))
        for artifact in spec.outputs:
            if artifact in available:
                raise ValueError(
                    "stage %r output %r is already defined"
                    % (spec.name, artifact))
            available.add(artifact)


def topological_order(stages: tuple[StageSpec, ...] = STAGES
                      ) -> tuple[StageSpec, ...]:
    """The stages in dependency order (validates as a side effect)."""
    validate_graph(stages)
    return stages


def render_graph(stages: tuple[StageSpec, ...] = STAGES) -> str:
    """Human-readable dataflow listing for ``repro-run --list-stages``."""
    lines = []
    for spec in stages:
        mode = "per-probe" if spec.fan_out else "aggregate"
        if not spec.cacheable:
            mode += ", uncached"
        lines.append("%-8s (%s)" % (spec.name, mode))
        lines.append("  in:  %s" % ", ".join(spec.inputs))
        lines.append("  out: %s" % ", ".join(spec.outputs))
    return "\n".join(lines)
