"""Process-pool worker side of the sharded executor.

Each worker process receives the full dataset context once (via the pool
initializer) and then serves shard tasks that are nothing but probe-id
lists, keeping per-task pickling traffic tiny.  Workers memoize the
per-probe filter verdicts they compute, so later stages (spans, gaps)
re-use classification work done for earlier shards that landed on the
same process, and recompute it deterministically when they did not —
either way the result is the pure function of the datasets that the
serial path computes.

Everything here must stay importable at module top level (the pool
pickles task functions by qualified name) and free of global randomness;
any future stochastic stage must draw from
:func:`repro.util.rng.substream` keyed on the scenario seed and probe id,
never from process-local state, or ``jobs=N`` output would diverge from
``jobs=1``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import obs
from repro.atlas.archive import ProbeArchive
from repro.atlas.connlog import ConnectionLog
from repro.atlas.kroot import KRootDataset
from repro.atlas.sosuptime import UptimeDataset
from repro.core.association import GapEvent
from repro.core.filtering import ProbeFilter, ProbeVerdict
from repro.core.pipeline import probe_gap_events, probe_spans
from repro.core.reboots import Reboot, detect_reboots
from repro.net.pfx2as import IpToAsDataset


@dataclass
class WorkerContext:
    """Everything a worker needs, shipped once per process."""

    __wire_contract__ = "worker-context"

    connlog: ConnectionLog
    archive: ProbeArchive
    ip2as: IpToAsDataset
    kroot: KRootDataset
    uptime: UptimeDataset
    min_connected: float


@dataclass
class ShardResult:
    """One shard task's payload plus the observability it generated.

    Worker processes cannot write to the driver's span collector or
    metrics registry, so each task drains its process-local stores into
    this envelope; the executor absorbs them in shard order, which keeps
    the merged trace deterministic regardless of worker scheduling.
    The payload itself stays exactly what the pure kernels computed —
    instrumentation wraps the kernels, it never reaches inside them.
    """

    __wire_contract__ = "shard-result"

    payload: object
    spans: list = field(default_factory=list)
    metrics: dict = field(default_factory=dict)


def _shipped(payload: object) -> ShardResult:
    """Envelope a shard payload with this task's spans and metrics."""
    obs.count("runtime.worker.tasks")
    return ShardResult(payload=payload, spans=obs.drain_spans(),
                       metrics=obs.metrics().drain())


_context: WorkerContext | None = None
_filter: ProbeFilter | None = None
_verdicts: dict[int, ProbeVerdict] = {}


def init_worker(context: WorkerContext) -> None:
    """Install the dataset context in this process.

    With a ``fork`` multiprocessing context the executor calls this in
    the *parent* before creating the pool — children inherit the
    installed context through fork, skipping a per-worker pickle of the
    full datasets.  Under ``spawn`` it runs as the pool initializer.
    """
    global _context, _filter
    _context = context
    _filter = ProbeFilter(context.connlog, context.archive, context.ip2as,
                          min_connected=context.min_connected)
    _verdicts.clear()


def reset_worker() -> None:
    """Drop the installed context (parent-side cleanup after a run)."""
    global _context, _filter
    _context = None
    _filter = None
    _verdicts.clear()


def _require_context() -> WorkerContext:
    if _context is None or _filter is None:
        raise RuntimeError(
            "worker context not initialized; shard tasks must run in a "
            "pool created with initializer=init_worker")
    return _context


def _verdict(probe_id: int) -> ProbeVerdict:
    """Memoized per-probe classification (pure, so memoization is safe)."""
    _require_context()
    verdict = _verdicts.get(probe_id)
    if verdict is None:
        verdict = _filter.classify(probe_id)
        _verdicts[probe_id] = verdict
    return verdict


# -- shard tasks (one call per shard) ----------------------------------------

def shard_filter(probe_ids: list[int]) -> ShardResult:
    """Stage ``filter``: classify one shard of probes."""
    with obs.span("shard:filter", category="shard", stage="filter",
                  items=len(probe_ids)):
        payload = {probe_id: _verdict(probe_id) for probe_id in probe_ids}
    return _shipped(payload)


def shard_spans(probe_ids: list[int]) -> ShardResult:
    """Stage ``spans``: spans and known durations for one shard."""
    with obs.span("shard:spans", category="shard", stage="spans",
                  items=len(probe_ids)):
        payload = {probe_id: probe_spans(_verdict(probe_id).entries)
                   for probe_id in probe_ids}
    return _shipped(payload)


def shard_reboots(probe_ids: list[int]) -> ShardResult:
    """Stage ``reboots`` (detection half): raw reboots for one shard."""
    context = _require_context()
    with obs.span("shard:reboots", category="shard", stage="reboots",
                  items=len(probe_ids)):
        payload = {probe_id: detect_reboots(context.uptime.records(probe_id))
                   for probe_id in probe_ids}
    return _shipped(payload)


def shard_gaps(items: list[tuple[int, list[Reboot]]]) -> ShardResult:
    """Stage ``gaps``: classify one shard's connection gaps.

    ``items`` carries each probe's firmware-filtered reboots (computed
    globally by the parent after the reboot barrier); entries and k-root
    series come from the worker context.
    """
    context = _require_context()
    with obs.span("shard:gaps", category="shard", stage="gaps",
                  items=len(items)):
        payload = {
            probe_id: probe_gap_events(_verdict(probe_id).entries,
                                       context.kroot.series(probe_id),
                                       reboots)
            for probe_id, reboots in items
        }
    return _shipped(payload)
