"""Process-pool worker side of the sharded executor.

Each worker process receives the full dataset context once (via the pool
initializer) and then serves shard tasks that are nothing but probe-id
lists, keeping per-task pickling traffic tiny.  Workers memoize the
per-probe filter verdicts they compute, so later stages (spans, gaps)
re-use classification work done for earlier shards that landed on the
same process, and recompute it deterministically when they did not —
either way the result is the pure function of the datasets that the
serial path computes.

Results cross the process boundary inside a *sealed* :class:`ShardResult`
envelope: the payload is pickled worker-side and stamped with its content
fingerprint, so the supervisor (and the legacy ``pool.map`` path) can
detect a corrupted envelope before a bad payload reaches the merge, and
retry the shard instead of poisoning the run.  Workers also register a
heartbeat file on their first task — the supervisor uses the registry
both as a liveness signal and as the pid list to ``SIGKILL`` when it must
tear down a hung pool.

Everything here must stay importable at module top level (the pool
pickles task functions by qualified name) and free of global randomness;
any future stochastic stage must draw from
:func:`repro.util.rng.substream` keyed on the scenario seed and probe id,
never from process-local state, or ``jobs=N`` output would diverge from
``jobs=1``.  Process-fault injection (``repro.faults.process``) arrives
as an inert plan object inside :class:`WorkerContext` — this module only
asks it *whether* to fail and interprets the answer, so the faults layer
never needs to import the runtime it sabotages.
"""

from __future__ import annotations

import json
import os
import pickle
import signal
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro import obs
from repro.atlas.archive import ProbeArchive
from repro.atlas.columnar import ColumnarConnlog, ColumnarUptime
from repro.atlas.connlog import ConnectionLog
from repro.atlas.kroot import KRootDataset
from repro.atlas.sosuptime import UptimeDataset
from repro.core import colkernels
from repro.core.association import GapEvent
from repro.core.filtering import ProbeFilter, ProbeVerdict
from repro.core.pipeline import probe_gap_events, probe_spans
from repro.util.colpack import HAVE_NUMPY
from repro.core.reboots import Reboot, detect_reboots
from repro.errors import EnvelopeCorruptError
from repro.net.pfx2as import IpToAsDataset
from repro.util import fingerprint as fp
from repro.util import timeutil

#: Fault-kind strings this module knows how to act on, mirroring the
#: ``repro.faults.injectors.FaultKind`` process values (kept as strings
#: so the plan object stays duck-typed and layer-inert).
FAULT_WORKER_CRASH = "worker-crash"
FAULT_WORKER_HANG = "worker-hang"
FAULT_WORKER_SLOW = "worker-slow"
FAULT_ENVELOPE_CORRUPT = "envelope-corrupt"


@dataclass
class WorkerContext:
    """Everything a worker needs, shipped once per process.

    ``heartbeat_dir`` and ``fault_plan`` are supervision extras: the
    directory the worker registers its liveness file in, and an inert
    process-fault plan (``fault_at(stage, shard_index, attempt)`` duck
    type) consulted once per shard task.  Both default off so the legacy
    unsupervised pool path ships the same context it always did.
    """

    __wire_contract__ = "worker-context"

    connlog: ConnectionLog
    archive: ProbeArchive
    ip2as: IpToAsDataset
    kroot: KRootDataset
    uptime: UptimeDataset
    min_connected: float
    heartbeat_dir: str | None = None
    fault_plan: object | None = None
    #: Serve shard tasks through the vectorized columnar kernels
    #: (DESIGN.md §16).  Ignored on numpy-free hosts; payloads are
    #: bit-identical either way, so mixed fleets stay coherent.
    columnar: bool = False


@dataclass(frozen=True)
class Heartbeat:
    """One worker's liveness record, serialized into its heartbeat file.

    The supervisor reads these files for two things: mtime freshness
    (liveness) and the pid to ``SIGKILL`` when tearing down a hung pool
    — so the payload crosses a process/persistence boundary and is a
    wire contract (RPR010).
    """

    __wire_contract__ = "worker-heartbeat"

    pid: int
    seq: int

    def to_json(self) -> str:
        return json.dumps({"pid": self.pid, "seq": self.seq})

    @classmethod
    def from_json(cls, text: str) -> "Heartbeat":
        payload = json.loads(text)
        return cls(pid=int(payload["pid"]), seq=int(payload["seq"]))


@dataclass
class ShardResult:
    """One shard task's sealed payload plus the observability it generated.

    Worker processes cannot write to the driver's span collector or
    metrics registry, so each task drains its process-local stores into
    this envelope; the executor absorbs them in shard order, which keeps
    the merged trace deterministic regardless of worker scheduling.

    The payload is shipped as pickle bytes stamped with their SHA-256
    ``seal``: :meth:`open_payload` re-hashes on the parent side and
    raises :class:`~repro.errors.EnvelopeCorruptError` on mismatch, so a
    corrupted envelope is detected *before* its payload reaches the
    ordered merge.  ``shard_index``/``attempt`` identify the task for
    supervision bookkeeping.  The payload itself stays exactly what the
    pure kernels computed — instrumentation and sealing wrap the
    kernels, they never reach inside them.
    """

    __wire_contract__ = "shard-result"

    shard_index: int
    attempt: int
    payload_pickle: bytes
    seal: str
    spans: list = field(default_factory=list)
    metrics: dict = field(default_factory=dict)

    @classmethod
    def sealed(cls, payload: object, shard_index: int = 0,
               attempt: int = 0) -> "ShardResult":
        """Seal a payload with this task's spans and metrics."""
        blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        return cls(shard_index=shard_index, attempt=attempt,
                   payload_pickle=blob, seal=fp.hash_bytes(blob),
                   spans=obs.drain_spans(), metrics=obs.metrics().drain())

    def open_payload(self) -> object:
        """Verify the seal and unpickle the payload."""
        if fp.hash_bytes(self.payload_pickle) != self.seal:
            raise EnvelopeCorruptError(
                "shard %d attempt %d: result envelope failed its "
                "integrity seal" % (self.shard_index, self.attempt))
        return pickle.loads(self.payload_pickle)


_context: WorkerContext | None = None
_filter: ProbeFilter | None = None
_verdicts: dict[int, ProbeVerdict] = {}
_heartbeat_pid: int | None = None
_colconn: ColumnarConnlog | None = None
_colup: ColumnarUptime | None = None


def init_worker(context: WorkerContext) -> None:
    """Install the dataset context in this process.

    With a ``fork`` multiprocessing context the executor calls this in
    the *parent* before creating the pool — children inherit the
    installed context through fork, skipping a per-worker pickle of the
    full datasets.  Under ``spawn`` it runs as the pool initializer.
    (Heartbeat registration is deliberately *not* done here: a thread
    started parent-side would not survive the fork, so workers register
    lazily on their first task instead.)
    """
    global _context, _filter, _heartbeat_pid, _colconn, _colup
    _context = context
    _filter = ProbeFilter(context.connlog, context.archive, context.ip2as,
                          min_connected=context.min_connected)
    _verdicts.clear()
    # Build the columnar views eagerly: under fork this runs in the
    # parent, so every worker inherits the arrays by page sharing
    # instead of rebuilding them per process.
    _colconn = None
    _colup = None
    if context.columnar and HAVE_NUMPY:
        _colconn = ColumnarConnlog.from_connlog(context.connlog)
        _colup = ColumnarUptime.from_uptime(context.uptime)
    # Heartbeat registration state is initializer-owned like the rest of
    # the per-process globals; actual registration happens lazily on the
    # first task (a thread started here would not survive fork).
    _heartbeat_pid = None


def reset_worker() -> None:
    """Drop the installed context (parent-side cleanup after a run)."""
    global _context, _filter, _heartbeat_pid, _colconn, _colup
    _context = None
    _filter = None
    _heartbeat_pid = None
    _colconn = None
    _colup = None
    _verdicts.clear()


def _require_context() -> WorkerContext:
    if _context is None or _filter is None:
        raise RuntimeError(
            "worker context not initialized; shard tasks must run in a "
            "pool created with initializer=init_worker")
    return _context


def _verdict(probe_id: int) -> ProbeVerdict:
    """Memoized per-probe classification (pure, so memoization is safe)."""
    _require_context()
    verdict = _verdicts.get(probe_id)
    if verdict is None:
        verdict = _filter.classify(probe_id)
        _verdicts[probe_id] = verdict
    return verdict


# -- heartbeats --------------------------------------------------------------

def heartbeat_path(directory: str | Path, pid: int) -> Path:
    """The liveness file one worker pid writes (and the parent reads)."""
    return Path(directory) / ("hb-%d.json" % pid)


def _beat_forever(directory: str, pid: int) -> None:
    """Daemon-thread body: refresh this worker's heartbeat file."""
    seq = 0
    while True:
        seq += 1
        try:
            heartbeat_path(directory, pid).write_text(
                Heartbeat(pid=pid, seq=seq).to_json())
        except OSError:
            # Spool removed mid-teardown: nothing left to signal.
            return
        time.sleep(timeutil.HEARTBEAT_INTERVAL_S)


def _ensure_heartbeat(context: WorkerContext) -> None:
    """Register this process in the heartbeat spool, once per process.

    Runs worker-side on the first shard task (never in the parent, which
    dispatches but does not serve tasks) so it works identically under
    fork — where threads do not survive into the child — and spawn.
    """
    global _heartbeat_pid
    if context.heartbeat_dir is None or _heartbeat_pid == os.getpid():
        return
    pid = os.getpid()
    heartbeat_path(context.heartbeat_dir, pid).write_text(
        Heartbeat(pid=pid, seq=0).to_json())
    threading.Thread(target=_beat_forever,
                     args=(context.heartbeat_dir, pid),
                     daemon=True).start()
    _heartbeat_pid = pid


# -- fault injection (supervised runs only) ----------------------------------

def _inject_preflight(stage: str, shard_index: int, attempt: int) -> None:
    """Act on a crash/hang/slow fault the installed plan placed here.

    Crash and hang are destructive-by-construction: ``SIGKILL`` cannot be
    caught and the hang outsleeps any sane deadline, so recovery can only
    come from the supervisor — exactly what the fault matrix must prove.
    """
    plan = _context.fault_plan if _context is not None else None
    if plan is None:
        return
    kind = plan.fault_at(stage, shard_index, attempt)
    if kind == FAULT_WORKER_CRASH:
        os.kill(os.getpid(), signal.SIGKILL)
    elif kind == FAULT_WORKER_HANG:
        time.sleep(timeutil.HOUR)
    elif kind == FAULT_WORKER_SLOW:
        time.sleep(float(getattr(plan, "slow_delay_s", 0.05)))


def _inject_envelope(envelope: ShardResult, stage: str, shard_index: int,
                     attempt: int) -> ShardResult:
    """Flip a payload byte if the plan corrupts this envelope.

    The seal is computed *before* the flip, so the parent-side
    :meth:`ShardResult.open_payload` check is guaranteed to fire — the
    corruption is detectable by construction, never silent.
    """
    plan = _context.fault_plan if _context is not None else None
    if plan is None or not envelope.payload_pickle:
        return envelope
    if plan.fault_at(stage, shard_index, attempt) != FAULT_ENVELOPE_CORRUPT:
        return envelope
    blob = envelope.payload_pickle
    envelope.payload_pickle = blob[:-1] + bytes([blob[-1] ^ 0xFF])
    return envelope


# -- shard kernels (payload = exactly what the serial path computes) ---------

def _columnar_active() -> bool:
    """Whether this process serves shards via the columnar kernels."""
    return _colconn is not None


def _filter_payload(probe_ids: list[int]) -> dict:
    context = _require_context()
    if _columnar_active():
        # Slim verdicts (no entry lists) cross the process boundary;
        # consumers restore entries from the connlog when they need
        # them (repro.core.filtering.restore_entries).
        return colkernels.classify_probes(
            _colconn, context.connlog, context.archive, context.ip2as,
            context.min_connected, probe_ids, with_entries=False)
    return {probe_id: _verdict(probe_id) for probe_id in probe_ids}


def _spans_payload(probe_ids: list[int]) -> dict:
    context = _require_context()
    if _columnar_active():
        return colkernels.probe_spans_col(_colconn, context.connlog,
                                          probe_ids)
    return {probe_id: probe_spans(_verdict(probe_id).entries)
            for probe_id in probe_ids}


def _reboots_payload(probe_ids: list[int]) -> dict:
    context = _require_context()
    if _columnar_active():
        return colkernels.detect_reboots_col(_colup, probe_ids)
    return {probe_id: detect_reboots(context.uptime.records(probe_id))
            for probe_id in probe_ids}


def _gaps_payload(items: list[tuple[int, list[Reboot]]]) -> dict:
    context = _require_context()
    if _columnar_active():
        return colkernels.gap_events_col(_colconn, context.kroot, items)
    return {
        probe_id: probe_gap_events(_verdict(probe_id).entries,
                                   context.kroot.series(probe_id),
                                   reboots)
        for probe_id, reboots in items
    }


#: Task registry: the supervisor dispatches shards by stage name, so the
#: pickled task payload is ``(name, shard, index, attempt)`` instead of a
#: per-stage callable.
SHARD_TASKS = {
    "filter": _filter_payload,
    "spans": _spans_payload,
    "reboots": _reboots_payload,
    "gaps": _gaps_payload,
}


def run_shard(task_name: str, shard: list, shard_index: int = 0,
              attempt: int = 0) -> ShardResult:
    """Serve one shard task: heartbeat, (maybe) fault, compute, seal."""
    context = _require_context()
    _ensure_heartbeat(context)
    _inject_preflight(task_name, shard_index, attempt)
    kernel = SHARD_TASKS[task_name]
    with obs.span("shard:%s" % task_name, category="shard",
                  stage=task_name, items=len(shard), attempt=attempt):
        payload = kernel(shard)
    obs.count("runtime.worker.tasks")
    envelope = ShardResult.sealed(payload, shard_index, attempt)
    return _inject_envelope(envelope, task_name, shard_index, attempt)


# -- legacy per-stage entry points (unsupervised ``pool.map`` path) ----------

def shard_filter(probe_ids: list[int]) -> ShardResult:
    """Stage ``filter``: classify one shard of probes."""
    return run_shard("filter", probe_ids)


def shard_spans(probe_ids: list[int]) -> ShardResult:
    """Stage ``spans``: spans and known durations for one shard."""
    return run_shard("spans", probe_ids)


def shard_reboots(probe_ids: list[int]) -> ShardResult:
    """Stage ``reboots`` (detection half): raw reboots for one shard."""
    return run_shard("reboots", probe_ids)


def shard_gaps(items: list[tuple[int, list[Reboot]]]) -> ShardResult:
    """Stage ``gaps``: classify one shard's connection gaps.

    ``items`` carries each probe's firmware-filtered reboots (computed
    globally by the parent after the reboot barrier); entries and k-root
    series come from the worker context.
    """
    return run_shard("gaps", items)
