"""Content-addressed artifact cache for stage outputs.

An artifact is one stage's output bundle, pickled to disk under a key
derived from everything the output is a function of::

    key = H(bundle fingerprint, stage name, code version, parameters)

*Bundle fingerprint* is the content hash :mod:`repro.sim.io` computes
over the dataset files at load time; *code version* hashes the source of
every package that can influence stage results, so editing an analysis
function invalidates the cache without any manual version bump; the
*parameters* token covers scalar knobs such as ``min_connected``.  Keys
say nothing about ``jobs`` or shard counts — the executor guarantees
those do not change outputs, so a cache written by a parallel run warms
a serial one and vice versa.

The store is a flat directory of ``<key-prefix>/<key>.pkl`` files with
atomic writes (temp file + rename), corrupt-entry self-healing (a
truncated pickle is treated as a miss and deleted), and LRU eviction by
access time once the store exceeds ``max_bytes``.

Columnar sidecars: output values registered with
:mod:`repro.util.colpack` are not pickled at all — each is written as a
``<key>.<name>.col`` container next to the entry's pickle, which holds a
:class:`ColumnarSidecarRef` placeholder instead.  Loads resolve the
placeholders via :func:`colpack.load_object`, memory-mapping the columns
so a warm run faults in only what it touches.  An entry and its sidecars
live and die together: eviction, healing and ``clear`` treat them as one
group, and a missing/corrupt/unreadable sidecar heals the whole entry
into a miss.
"""

from __future__ import annotations

import os
import pickle
from dataclasses import dataclass, field
from functools import lru_cache
from pathlib import Path

import repro
from repro.util import colpack
from repro.util import fingerprint as fp

#: Packages whose source feeds the code-version hash: everything at or
#: below ``core`` in the layer DAG that analysis results flow through,
#: plus this package (executor/merge logic) and ``dist`` (the socket
#: execution tier decides which result envelope resolves each shard, and
#: its checkpoints must not survive a protocol change).
CODE_VERSION_PACKAGES = ("errors.py", "util", "net", "atlas", "core",
                         "runtime", "dist")

#: Default store budget; a paper-scale bundle's artifacts are ~tens of MB.
DEFAULT_MAX_BYTES = 2 * 1024 ** 3

#: Cached artifacts outlive the process that wrote them, and the key
#: semantics are defined by which packages feed the code-version hash —
#: so that set is a wire contract (RPR010): growing or shrinking it
#: changes what invalidates the cache and must be a reviewed, versioned
#: event in ``wire-contracts.json``.
__wire_contract__ = {"cache-entry": ("CODE_VERSION_PACKAGES",)}


class ColumnarSidecarRef:
    """Pickled placeholder for a value stored as a ``.col`` sidecar file.

    Appears inside cached artifact dicts on disk, read back by later
    runs of different processes — a wire contract (RPR010).
    """

    __wire_contract__ = "columnar-sidecar-ref"

    def __init__(self, name: str) -> None:
        #: The output name within the artifact dict (doubles as the
        #: sidecar file-name component).
        self.name = name


@lru_cache(maxsize=1)
def code_version() -> str:
    """Fingerprint of the analysis-relevant source tree.

    Hashed once per process: the set of ``.py`` files (sorted by
    package-relative path) and their contents under
    :data:`CODE_VERSION_PACKAGES`.
    """
    root = Path(repro.__file__).parent
    paths: list[Path] = []
    for name in CODE_VERSION_PACKAGES:
        target = root / name
        if target.is_file():
            paths.append(target)
        else:
            paths.extend(sorted(target.rglob("*.py")))
    return fp.hash_files(paths)


@dataclass
class CacheStats:
    """Hit/miss accounting for one cache handle's lifetime."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    evicted: int = 0
    #: Corrupt entries deleted and served as misses (self-healing).
    healed: int = 0
    #: Cumulative artifact bytes written by this handle.
    bytes_stored: int = 0
    #: Stage names served from cache, in lookup order.
    hit_stages: list[str] = field(default_factory=list)
    miss_stages: list[str] = field(default_factory=list)


class ArtifactCache:
    """Disk-backed, content-addressed store for pickled stage outputs."""

    def __init__(self, directory: str | Path,
                 max_bytes: int = DEFAULT_MAX_BYTES) -> None:
        self.directory = Path(directory)
        self.max_bytes = max_bytes
        self.stats = CacheStats()
        self.directory.mkdir(parents=True, exist_ok=True)

    # -- keys ---------------------------------------------------------------

    @staticmethod
    def key(bundle_fingerprint: str, stage: str, version: str,
            params: str) -> str:
        """Content address of one stage's outputs."""
        return fp.combine(bundle_fingerprint, stage, version, params)

    def _path(self, key: str) -> Path:
        return self.directory / key[:2] / (key + ".pkl")

    def _sidecar(self, key: str, name: str) -> Path:
        return self.directory / key[:2] / ("%s.%s.col" % (key, name))

    @staticmethod
    def _group(path: Path) -> list[Path]:
        """The entry's pickle plus its columnar sidecars, pickle first.

        Keys are hex digests, so ``path.stem`` is glob-safe.
        """
        return [path] + sorted(path.parent.glob(path.stem + ".*.col"))

    def _heal(self, path: Path, stage: str, key: str) -> tuple[bool, object]:
        """Delete a broken entry (with sidecars) and serve a miss."""
        for member in self._group(path):
            member.unlink(missing_ok=True)
        # Same confinement argument as the eviction counter below: each
        # runner owns a private handle, and dist-side loads all run under
        # the coordinator's cluster lock.
        self.stats.healed += 1  # repro: noqa[RPR011] -- per-handle accounting; dist accesses are serialized by the coordinator's cluster lock, runtime handles are main-thread-only
        self.stats.misses += 1
        self.stats.miss_stages.append(stage or key)
        return False, None

    # -- store/load ---------------------------------------------------------

    def load(self, key: str, stage: str = "") -> tuple[bool, object]:
        """Fetch an artifact; ``(False, None)`` on miss or corruption."""
        path = self._path(key)
        try:
            with open(path, "rb") as stream:
                value = pickle.load(stream)
        except FileNotFoundError:
            self.stats.misses += 1
            self.stats.miss_stages.append(stage or key)
            return False, None
        except (pickle.UnpicklingError, EOFError, AttributeError,
                ImportError):
            # A truncated or stale entry (e.g. a class that no longer
            # unpickles) must behave exactly like a miss.
            return self._heal(path, stage, key)
        try:
            value = self._resolve_sidecars(key, value)
        except (colpack.ColpackError, OSError, RuntimeError):
            # Truncated/missing sidecar, or a numpy-free process reading
            # a columnar entry: the whole entry behaves like a miss.
            return self._heal(path, stage, key)
        os.utime(path)  # refresh LRU access time
        self.stats.hits += 1
        self.stats.hit_stages.append(stage or key)
        return True, value

    def _resolve_sidecars(self, key: str, value: object) -> object:
        """Swap :class:`ColumnarSidecarRef` placeholders for mmap'd objects."""
        if not isinstance(value, dict):
            return value
        resolved = None
        for name, item in value.items():
            if isinstance(item, ColumnarSidecarRef):
                if resolved is None:
                    resolved = dict(value)
                resolved[name] = colpack.load_object(
                    self._sidecar(key, item.name))
        return value if resolved is None else resolved

    def store(self, key: str, value: object) -> None:
        """Write an artifact atomically, then enforce the size budget.

        Colpack-registered values inside a dict artifact go to ``.col``
        sidecars (written first — the pickle's rename publishes the
        entry, and healing covers a crash in between).
        """
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        if colpack.HAVE_NUMPY and isinstance(value, dict):
            slim = None
            for name, item in value.items():
                if colpack.schema_of(item) is not None:
                    if slim is None:
                        slim = dict(value)
                    self.stats.bytes_stored += colpack.write_object(
                        self._sidecar(key, name), item)
                    slim[name] = ColumnarSidecarRef(name)
            if slim is not None:
                value = slim
        tmp = path.with_suffix(".tmp.%d" % os.getpid())
        with open(tmp, "wb") as stream:
            pickle.dump(value, stream, protocol=pickle.HIGHEST_PROTOCOL)
        self.stats.bytes_stored += tmp.stat().st_size
        os.replace(tmp, path)
        self.stats.stores += 1
        self.evict()

    # -- maintenance --------------------------------------------------------

    def _entries_with_stats(self) -> list[tuple[Path, os.stat_result]]:
        """Artifact files with their stat results, oldest access first.

        Files that vanish between ``glob`` and ``stat`` (a concurrent
        run evicting) are simply skipped; ties on ``st_mtime`` — common
        on filesystems with coarse timestamp granularity — break on the
        file name so the order stays deterministic.
        """
        found = []
        for path in self.directory.glob("*/*.pkl"):
            try:
                found.append((path, path.stat()))
            except FileNotFoundError:
                continue
        found.sort(key=lambda item: (item[1].st_mtime, item[0].name))
        return found

    def entries(self) -> list[Path]:
        """All artifact files, oldest access first."""
        return [path for path, _ in self._entries_with_stats()]

    def total_bytes(self) -> int:
        """Bytes currently stored (pickles and columnar sidecars)."""
        total = sum(stat.st_size for _, stat in self._entries_with_stats())
        for path in self.directory.glob("*/*.col"):
            try:
                total += path.stat().st_size
            except FileNotFoundError:
                continue
        return total

    def evict(self) -> int:
        """Drop least-recently-used artifacts until under ``max_bytes``.

        "Recently used" is ``st_mtime``, which :meth:`load` refreshes via
        ``os.utime`` on every hit — so an entry a warm run just served is
        the *last* eviction candidate even though it was written first.
        An entry's sidecars count toward its size and are removed with
        it.
        """
        removed = 0
        groups = []
        total = 0
        for path, stat in self._entries_with_stats():
            members = self._group(path)
            size = stat.st_size
            for member in members[1:]:
                try:
                    size += member.stat().st_size
                except FileNotFoundError:
                    continue
            groups.append((members, size))
            total += size
        for members, size in groups:
            if total <= self.max_bytes:
                break
            total -= size
            for member in members:
                member.unlink(missing_ok=True)
            removed += 1
        # Each runner owns a private cache handle: ShardedRunner touches
        # it from the main thread only, and in dist mode every access is
        # inside LeaseServer._on_result, which holds the cluster RLock —
        # the two roles never share one instance.
        self.stats.evicted += removed  # repro: noqa[RPR011] -- per-handle accounting; dist accesses are serialized by the coordinator's cluster lock, runtime handles are main-thread-only
        return removed

    def clear(self) -> int:
        """Remove every artifact (``repro-run --clear-cache``)."""
        removed = 0
        for path in self.entries():
            for member in self._group(path):
                member.unlink(missing_ok=True)
            removed += 1
        # Orphaned sidecars (their pickle healed away separately).
        for path in self.directory.glob("*/*.col"):
            path.unlink(missing_ok=True)
        return removed
