"""Supervised fault-tolerant shard execution.

:class:`ShardSupervisor` sits between :class:`~repro.runtime.executor.
ShardedRunner` and the worker pool and makes one guarantee: a worker
process dying, hanging, or returning a corrupted result envelope does not
abort the run, and when recovery succeeds the merged stage outputs are
*bit-identical* to the serial pipeline's.  It does this with four
mechanisms:

* **crash recovery** — a dead worker breaks the whole
  :class:`~concurrent.futures.ProcessPoolExecutor`
  (``BrokenProcessPool``); the supervisor respawns a fresh pool and
  re-dispatches every unfinished shard.  At most ``jobs`` shards are in
  flight at a time (the rest wait in a ready queue), so a break can only
  implicate the in-flight set: each in-flight shard is charged a failed
  attempt (the culprit is necessarily among them) and re-dispatched.
  Because the break does not say *which* shard killed the worker, such
  an ambiguous charge never quarantines by itself — a shard over its
  retry budget without any individually-attributable failure gets one
  more attempt *in isolation*, where a repeat failure is unambiguous.
* **hang detection** — each dispatched shard carries a deadline
  (:data:`repro.util.timeutil.SHARD_DEADLINE_S` by default).  Bounded
  dispatch means dispatch == execution start, so the deadline measures
  execution, never time spent queued behind other shards.  A shard past
  its deadline is declared hung, but the pool is only torn down — every
  worker ``SIGKILL``\\ ed via the heartbeat-spool registry plus the
  pool's own process table — once *no* pending shard is healthy:
  killing a hung worker breaks the whole pool, so deferring the
  teardown lets live workers keep completing shards and batches co-hung
  shards into one recovery wave instead of one teardown each.
* **envelope verification** — every :class:`~repro.runtime.workers.
  ShardResult` is sealed worker-side with the SHA-256 of its payload
  pickle; a seal mismatch on the parent side is a failed attempt, never
  a poisoned merge.
* **bounded retry with deterministic backoff** — attempt ``n`` waits
  ``backoff_base_s * 2**(n-1)`` (a pure function of the attempt number,
  so reruns behave identically); a shard whose failed attempts exceed
  ``max_retries`` is *abandoned* and its probes quarantined with exact
  accounting (``analyzed + quarantined == total``), which degrades the
  run instead of killing it.

Completed envelopes are also **checkpointed** through the
content-addressed artifact cache (key: fingerprint, ``shard:<stage>``,
code version, params + partition digest), so ``repro-run --resume`` after
a mid-run kill re-dispatches only the shards that never completed; the
:class:`CheckpointManifest` pins the partition the checkpoints belong to.
Stages running downstream of a degraded stage are *tainted* — their
shard inputs differ from a clean run's in ways the size-only partition
digest cannot distinguish — so checkpointing is disabled for them
entirely (the executor applies the same rule to stage artifacts).

Determinism note: payloads are collected into a per-index map and merged
in shard-index order after the stage drains, so neither completion order
nor the retry schedule can perturb the ordered merge (pinned by a
hypothesis property test).  Worker spans/metrics are absorbed in the same
index order, keeping even the merged trace deterministic.
"""

from __future__ import annotations

import multiprocessing
import os
import shutil
import signal
import tempfile
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Callable, Iterable, Mapping

from repro import obs
from repro.errors import EnvelopeCorruptError, SupervisionError
from repro.runtime import workers
from repro.runtime.cache import ArtifactCache
from repro.util import fingerprint as fp
from repro.util import timeutil

#: Failure causes recorded per failed shard attempt.
CAUSE_CRASH = "crash"
CAUSE_HANG = "hang"
CAUSE_CORRUPT = "corrupt"

#: Ceiling on one backoff sleep, whatever the attempt number says.
_BACKOFF_CAP_S = timeutil.MINUTE

#: How long the wait loop sleeps when no deadline is nearer.
_POLL_S = 0.05


@dataclass(frozen=True)
class SupervisionPolicy:
    """Retry/deadline knobs, all defaulting to the timeutil constants."""

    max_retries: int = timeutil.MAX_SHARD_RETRIES
    shard_deadline_s: float = timeutil.SHARD_DEADLINE_S
    backoff_base_s: float = timeutil.BACKOFF_BASE_S

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0, got %r"
                             % (self.max_retries,))
        if self.shard_deadline_s <= 0:
            raise ValueError("shard_deadline_s must be positive, got %r"
                             % (self.shard_deadline_s,))
        if self.backoff_base_s < 0:
            raise ValueError("backoff_base_s must be >= 0, got %r"
                             % (self.backoff_base_s,))

    def backoff_s(self, attempt: int) -> float:
        """Deterministic exponential backoff before attempt ``attempt``."""
        if attempt <= 0 or self.backoff_base_s == 0:
            return 0.0
        return min(self.backoff_base_s * 2 ** (attempt - 1), _BACKOFF_CAP_S)


@dataclass(frozen=True)
class ShardFailure:
    """One failed shard attempt, as observed by the supervisor."""

    stage: str
    shard_index: int
    attempt: int
    cause: str  # crash | hang | corrupt
    detail: str = ""


@dataclass
class StageResilience:
    """Supervision account of one stage's shard fan-out.

    The quarantine invariant holds by construction and is re-asserted by
    the fault-matrix tests: ``analyzed + quarantined == total`` where the
    totals count the stage's work items (probes).
    """

    stage: str
    shards: int
    total_items: int
    analyzed_items: int
    quarantined_items: int
    retries: int = 0
    reassignments: int = 0
    abandoned: tuple[int, ...] = ()
    quarantined_probes: tuple[int, ...] = ()
    failures: tuple[ShardFailure, ...] = ()
    checkpoints_loaded: int = 0
    checkpoints_stored: int = 0

    @property
    def degraded(self) -> bool:
        return bool(self.abandoned)


@dataclass
class StageOutcome:
    """What :meth:`ShardSupervisor.run_stage` hands back to the executor."""

    #: Payloads in shard-index order; abandoned shards are ``None``.
    payloads: list
    resilience: StageResilience


@dataclass(frozen=True)
class CheckpointManifest:
    """Identity of one stage's shard checkpoints in the artifact cache.

    Persisted through the cache itself and re-validated on ``--resume``;
    it crosses a persistence boundary, so its layout is a wire contract
    (RPR010).
    """

    __wire_contract__ = "checkpoint-manifest"

    stage: str
    shard_count: int
    partition_digest: str
    keys: tuple[str, ...]


def partition_digest(stage: str, shards: list[list]) -> str:
    """Fingerprint of a stage's shard partition (count + sizes).

    Shard *contents* are already pinned by the cache key's bundle
    fingerprint / code version / params; what the checkpoint key must
    additionally capture is how the work was cut, so a rerun with a
    different ``--shards`` cannot resume half a foreign partition.
    """
    return fp.combine("partition", stage, str(len(shards)),
                      *[str(len(shard)) for shard in shards])


def shard_checkpoint_key(fingerprint: str, stage: str, index: int,
                         version: str, params: str, partition: str) -> str:
    """Cache key of one shard's checkpointed envelope.

    Module-level so every executor that checkpoints shards — the pool
    supervisor here and the dist coordinator — derives the *same* key
    from the same identity, which is what lets ``repro-run --resume``
    pick up checkpoints a distributed run stored and vice versa.
    """
    return ArtifactCache.key(
        fingerprint, "shard:%s:%d" % (stage, index), version,
        fp.combine(params, partition))


def manifest_checkpoint_key(fingerprint: str, stage: str,
                            version: str, params: str,
                            partition: str) -> str:
    """Cache key of one stage's :class:`CheckpointManifest`."""
    return ArtifactCache.key(
        fingerprint, "manifest:%s" % stage, version,
        fp.combine(params, partition))


def validate_manifest(manifest: object, stage: str, partition: str,
                      shard_count: int) -> None:
    """Reject a manifest recorded for a differently-cut partition.

    The content-addressed keys already embed the partition digest, so
    foreign checkpoints can never silently match — this check exists to
    *surface* the mismatch instead of quietly recomputing everything.
    """
    if isinstance(manifest, CheckpointManifest) and (
            manifest.partition_digest != partition
            or manifest.shard_count != shard_count):
        raise SupervisionError(
            "checkpoint manifest for stage %r does not match the "
            "current shard partition; clear the cache or rerun "
            "without --resume" % (stage,))


def resolve_envelopes(envelopes: Iterable[workers.ShardResult]
                      ) -> dict[int, object]:
    """First verified payload per shard index, whatever the arrival order.

    The pure core of the supervisor's merge discipline: envelopes may
    arrive in any completion order and include corrupt duplicates from
    retried attempts; the first envelope per index that passes its seal
    wins, corrupt ones are skipped.  Exercised directly by a hypothesis
    property test (retry order never perturbs the merge).
    """
    resolved: dict[int, object] = {}
    for envelope in envelopes:
        if envelope.shard_index in resolved:
            continue
        try:
            resolved[envelope.shard_index] = envelope.open_payload()
        except EnvelopeCorruptError:
            continue
    return resolved


def payloads_in_order(resolved: Mapping[int, object],
                      shard_count: int) -> list:
    """Payloads in shard-index order, ``None`` where a shard is missing."""
    return [resolved.get(index) for index in range(shard_count)]


@dataclass
class _Pending:
    """Book-keeping for one dispatched shard."""

    shard_index: int
    attempt: int  # failed attempts so far == attempt number being run
    deadline: float  # monotonic instant after which the shard is hung
    seq: int  # dispatch order; earliest-dispatched == first picked up


class ShardSupervisor:
    """Dispatches shard tasks with crash/hang/corruption recovery.

    One supervisor serves every fan-out stage of one run; it owns the
    worker pool (created lazily, respawned after crashes and hang
    teardowns) and the heartbeat spool directory the workers register in.
    """

    def __init__(self, context: workers.WorkerContext, jobs: int,
                 start_method: str,
                 policy: SupervisionPolicy | None = None,
                 cache: ArtifactCache | None = None,
                 fingerprint: str = "", version: str = "",
                 params: str = "", resume: bool = False) -> None:
        self.jobs = jobs
        self.start_method = start_method
        self.policy = policy or SupervisionPolicy()
        self.cache = cache
        self.fingerprint = fingerprint
        self.version = version
        self.params = params
        self.resume = resume
        #: Injectable for tests: deterministic backoff without real sleeps.
        self.sleep: Callable[[float], None] = time.sleep
        self._context = context
        self._pool: ProcessPoolExecutor | None = None
        self._spool: Path | None = None
        self._generation = 0
        self._respawns = 0
        #: Set per stage by :meth:`run_stage`: True when the stage runs
        #: downstream of a degraded one, which disables checkpointing.
        self._tainted = False

    # -- pool lifecycle -----------------------------------------------------

    def _heartbeat_dir(self) -> Path:
        if self._spool is None:
            self._spool = Path(tempfile.mkdtemp(prefix="repro-supervise-"))
        directory = self._spool / ("gen-%d" % self._generation)
        directory.mkdir(parents=True, exist_ok=True)
        return directory

    def _start_pool(self) -> None:
        """Create a worker pool generation under the resolved start method.

        Mirrors the executor's unsupervised pool setup (fork installs the
        context parent-side for copy-on-write inheritance; spawn ships it
        once per worker via the initializer), plus the heartbeat spool.
        """
        self._generation += 1
        context = replace(self._context,
                          heartbeat_dir=str(self._heartbeat_dir()))
        mp_context = multiprocessing.get_context(self.start_method)
        if self.start_method == "fork":
            workers.init_worker(context)
            self._pool = ProcessPoolExecutor(
                max_workers=self.jobs, mp_context=mp_context)
        else:
            self._pool = ProcessPoolExecutor(
                max_workers=self.jobs, mp_context=mp_context,
                initializer=workers.init_worker, initargs=(context,))

    def _registered_pids(self) -> list[int]:
        """Worker pids that registered a heartbeat this pool generation."""
        if self._spool is None:
            return []
        directory = self._spool / ("gen-%d" % self._generation)
        pids = []
        for path in sorted(directory.glob("hb-*.json")):
            try:
                pids.append(workers.Heartbeat.from_json(
                    path.read_text()).pid)
            except (OSError, ValueError, KeyError):
                continue
        return pids

    def _teardown_pool(self) -> None:
        if self._pool is None:
            return
        # The pool is being discarded on every teardown path (respawn
        # after a break, hang recovery, end of run), so its workers are
        # never worth a graceful join: SIGKILL them all first.  This is
        # load-bearing for the crash path — ``terminate_broken`` only
        # SIGTERMs workers it knows about, and a spawn worker still in
        # interpreter bootstrap can miss that entirely (observed blocked
        # forever on its startup pipe), which would wedge the
        # ``wait=True`` join below.  It is equally load-bearing for hang
        # recovery: ``shutdown(cancel_futures=True)`` cannot stop a task
        # that is already running.
        #
        # The heartbeat spool (workers register on their first task) is
        # the primary pid source; ``_processes`` is the pool's own
        # process table — a private CPython attribute, so it is read
        # through ``getattr`` and covers workers that never served a
        # task.  ``test_pool_process_table_assumption`` pins the
        # attribute so an interpreter upgrade that drops it fails
        # loudly instead of silently weakening this path.  Only
        # processes this supervisor spawned are ever signalled.
        pids = set(self._registered_pids())
        pids.update(getattr(self._pool, "_processes", None) or {})
        for pid in pids:
            try:
                os.kill(pid, signal.SIGKILL)
            except (ProcessLookupError, PermissionError):
                continue
        try:
            # wait=True is load-bearing too: the dying pool's management
            # thread closes its queue/pipe fds during shutdown, and
            # spawning the replacement pool while that close is in
            # flight races on reused fd numbers ("bad value(s) in
            # fds_to_keep" from fork_exec under spawn).  With every
            # worker SIGKILLed above, the join is prompt.
            self._pool.shutdown(wait=True, cancel_futures=True)
        except (OSError, RuntimeError):
            # Shutting down an already-broken pool is best-effort;
            # the replacement pool does not depend on it succeeding.
            pass
        self._pool = None

    def _respawn(self) -> None:
        self._respawns += 1
        self._teardown_pool()
        self._start_pool()
        obs.count("runtime.pool.respawns")

    def shutdown(self) -> None:
        """Release the pool, the worker context, and the heartbeat spool."""
        self._teardown_pool()
        workers.reset_worker()
        if self._spool is not None:
            shutil.rmtree(self._spool, ignore_errors=True)
            self._spool = None

    # -- checkpoints --------------------------------------------------------

    def _checkpointing(self) -> bool:
        # A tainted stage (downstream of a degraded one) must neither
        # store nor load checkpoints: its shard inputs differ from a
        # clean run's — e.g. ``gaps`` items carry ``[]`` where reboots
        # were quarantined — with the same shard *sizes*, which is all
        # the partition digest in the checkpoint key can see.
        return (self.cache is not None and bool(self.fingerprint)
                and not self._tainted)

    def _shard_key(self, stage: str, index: int, partition: str) -> str:
        return shard_checkpoint_key(self.fingerprint, stage, index,
                                    self.version, self.params, partition)

    def _manifest_key(self, stage: str, partition: str) -> str:
        return manifest_checkpoint_key(self.fingerprint, stage,
                                       self.version, self.params, partition)

    def _load_checkpoints(self, stage: str, partition: str,
                          shard_count: int) -> dict[int, object]:
        """Resume: verified payloads for every checkpointed shard.

        Loads go through the normal cache API, so the resumed shards are
        visible as cache *hits* (the counters the resume test gates on).
        A manifest from a different partition means the checkpoints
        belong to a differently-cut run; the content-addressed keys
        already embed the partition digest, so such entries simply never
        match — the manifest check exists to surface the situation.
        """
        if not (self.resume and self._checkpointing()):
            return {}
        hit, manifest = self.cache.load(
            self._manifest_key(stage, partition),
            stage="manifest:%s" % stage)
        if hit:
            validate_manifest(manifest, stage, partition, shard_count)
        resolved: dict[int, object] = {}
        for index in range(shard_count):
            hit, envelope = self.cache.load(
                self._shard_key(stage, index, partition),
                stage="shard:%s" % stage)
            if not hit or not isinstance(envelope, workers.ShardResult):
                continue
            try:
                resolved[index] = envelope.open_payload()
            except EnvelopeCorruptError:
                continue
        return resolved

    def _store_manifest(self, stage: str, partition: str,
                        shard_count: int) -> None:
        if not self._checkpointing():
            return
        keys = tuple(self._shard_key(stage, index, partition)
                     for index in range(shard_count))
        self.cache.store(
            self._manifest_key(stage, partition),
            CheckpointManifest(stage=stage, shard_count=shard_count,
                               partition_digest=partition, keys=keys))

    def _store_checkpoint(self, stage: str, partition: str,
                          envelope: workers.ShardResult) -> bool:
        """Persist one verified envelope; True only if it was written."""
        if not self._checkpointing():
            return False
        self.cache.store(
            self._shard_key(stage, envelope.shard_index, partition),
            envelope)
        return True

    # -- the supervision loop -----------------------------------------------

    def run_stage(self, stage: str, task_name: str,
                  shards: list[list],
                  probe_of: Callable[[object], int] = lambda item: item,
                  tainted: bool = False) -> StageOutcome:
        """Run one fan-out stage under supervision.

        ``probe_of`` extracts the probe id from one shard item (identity
        for probe-id shards, first element for the ``gaps`` stage's
        ``(probe_id, reboots)`` tuples) — it is only used to account
        quarantined probes for abandoned shards.

        ``tainted`` marks a stage computed downstream of a degraded one:
        its inputs are missing quarantined work, so its checkpoints are
        neither stored nor loaded (see :meth:`_checkpointing`).
        """
        self._tainted = bool(tainted)
        partition = partition_digest(stage, shards)
        row = StageResilience(
            stage=stage, shards=len(shards),
            total_items=sum(len(shard) for shard in shards),
            analyzed_items=0, quarantined_items=0)

        with obs.span("supervise:%s" % stage, category="supervisor",
                      stage=stage, shards=len(shards)) as handle:
            resolved = self._load_checkpoints(stage, partition, len(shards))
            row.checkpoints_loaded = len(resolved)
            if len(resolved) < len(shards):
                self._store_manifest(stage, partition, len(shards))
                envelopes = self._supervise(stage, task_name, shards,
                                            resolved, partition, row)
                for index in sorted(envelopes):
                    envelope = envelopes[index]
                    obs.absorb_spans(span.with_attrs(shard=index)
                                     for span in envelope.spans)
                    obs.metrics().absorb(envelope.metrics)
            abandoned = tuple(index for index in range(len(shards))
                              if index not in resolved)
            row.abandoned = abandoned
            row.quarantined_probes = tuple(
                probe_of(item) for index in abandoned
                for item in shards[index])
            row.quarantined_items = len(row.quarantined_probes)
            row.analyzed_items = row.total_items - row.quarantined_items
            handle.set(retries=row.retries,
                       reassignments=row.reassignments,
                       abandoned=len(abandoned),
                       checkpoints_loaded=row.checkpoints_loaded,
                       checkpoints_stored=row.checkpoints_stored)
            if row.checkpoints_loaded:
                obs.count("runtime.checkpoints.loaded",
                          row.checkpoints_loaded)
            if row.checkpoints_stored:
                obs.count("runtime.checkpoints.stored",
                          row.checkpoints_stored)

        return StageOutcome(
            payloads=payloads_in_order(resolved, len(shards)),
            resilience=row)

    def _supervise(self, stage: str, task_name: str, shards: list[list],
                   resolved: dict[int, object], partition: str,
                   row: StageResilience
                   ) -> dict[int, workers.ShardResult]:
        """Dispatch-and-recover until every shard resolves or abandons.

        At most ``jobs`` shards are in flight at once; the rest wait in
        a ready queue.  The pool has no backlog to hide tasks in, so a
        dispatch-time deadline measures *execution* (a shard queued
        behind slow siblings can never be declared hung without having
        run), and a pool break can only implicate the in-flight set.

        Returns the verified envelopes (for deterministic span/metric
        absorption in index order); payloads land in ``resolved``.
        """
        failures: list[ShardFailure] = []
        envelopes: dict[int, workers.ShardResult] = {}
        abandoned: set[int] = set()
        #: Shards with at least one individually-attributable failure:
        #: a hang, a corrupt envelope, a kernel exception, or a pool
        #: break while they were the only shard in flight.
        solo_failed: set[int] = set()
        attempts = {index: 0 for index in range(len(shards))
                    if index not in resolved}
        pending: dict[Future, _Pending] = {}
        ready: deque[int] = deque(sorted(attempts))
        #: Shards over their retry budget on ambiguous (blast-radius)
        #: charges alone.  Each gets one more attempt *in isolation* —
        #: dispatched only into an otherwise-empty pool — so its next
        #: failure, if any, is individually attributable.
        suspects: deque[int] = deque()
        dispatched = 0

        def dispatch(index: int) -> None:
            nonlocal dispatched
            delay = self.policy.backoff_s(attempts[index])
            if delay:
                self.sleep(delay)
            if self._pool is None:
                self._start_pool()
            try:
                future = self._pool.submit(
                    workers.run_shard, task_name, shards[index], index,
                    attempts[index])
            except BrokenProcessPool as error:
                # A sibling crashed while we were still submitting: park
                # the failure on a pre-failed future so the wait loop's
                # broken-pool branch handles it like every other one.
                future = Future()
                future.set_exception(error)
            except (OSError, ValueError):
                # Spawning a worker tripped over fds the previous pool
                # generation was still releasing.  The pool is unusable
                # but no worker ran anything, so treat it exactly like a
                # broken pool: the recovery branch respawns and charges
                # the in-flight shards.
                future = Future()
                future.set_exception(BrokenProcessPool(
                    "worker spawn failed; pool replaced"))
            pending[future] = _Pending(
                shard_index=index, attempt=attempts[index],
                deadline=time.monotonic() + self.policy.shard_deadline_s,
                seq=dispatched)
            dispatched += 1

        def fail(entry: _Pending, cause: str, detail: str = "",
                 ambiguous: bool = False) -> None:
            failures.append(ShardFailure(
                stage=stage, shard_index=entry.shard_index,
                attempt=entry.attempt, cause=cause, detail=detail))
            obs.count("runtime.shard.failures.%s" % cause)
            attempts[entry.shard_index] += 1
            if not ambiguous:
                solo_failed.add(entry.shard_index)
            if (attempts[entry.shard_index] > self.policy.max_retries
                    and entry.shard_index in solo_failed):
                # Quarantine requires both an exhausted budget and at
                # least one failure that is provably the shard's own —
                # a blast-radius charge alone never abandons a shard
                # that may simply have shared a pool with the culprit.
                abandoned.add(entry.shard_index)
                obs.count("runtime.quarantined_shards")
            else:
                row.retries += 1
                obs.count("runtime.retries")

        def requeue(index: int) -> None:
            """Queue a failed shard's next attempt (unless abandoned)."""
            if index in abandoned:
                return
            if attempts[index] > self.policy.max_retries:
                suspects.append(index)
            else:
                ready.append(index)

        def fill() -> None:
            while ready and len(pending) < self.jobs:
                dispatch(ready.popleft())
            if not pending and suspects:
                dispatch(suspects.popleft())

        while True:
            fill()
            if not pending:
                break
            now = time.monotonic()
            upcoming = [entry.deadline for entry in pending.values()
                        if entry.deadline > now]
            timeout = max(min(upcoming, default=now + _POLL_S) - now,
                          _POLL_S)
            done, _ = wait(set(pending), timeout=timeout,
                           return_when=FIRST_COMPLETED)

            broken: list[_Pending] = []
            for future in done:
                entry = pending.pop(future)
                try:
                    envelope = future.result()
                    resolved[entry.shard_index] = envelope.open_payload()
                except EnvelopeCorruptError as error:
                    fail(entry, CAUSE_CORRUPT, str(error))
                    requeue(entry.shard_index)
                except BrokenProcessPool:
                    broken.append(entry)
                # The whole point of supervision is that NO task failure
                # — whatever type the kernel raised — may take the run
                # down; it becomes a charged attempt instead.
                except Exception as error:  # repro: noqa[RPR004]
                    fail(entry, CAUSE_CRASH,
                         "%s: %s" % (type(error).__name__, error))
                    requeue(entry.shard_index)
                else:
                    envelopes[entry.shard_index] = envelope
                    if self._store_checkpoint(stage, partition, envelope):
                        row.checkpoints_stored += 1

            if broken:
                # A dead worker breaks the whole pool: every in-flight
                # future resolves to BrokenProcessPool at once, and the
                # exception does not say which shard was actually running
                # on the dead process.  With dispatch bounded to ``jobs``
                # the in-flight set is exactly the suspect set: charge
                # them all (culprit necessarily among them), but mark the
                # charge ambiguous unless the set has one member — an
                # ambiguous charge can exhaust a budget, never quarantine
                # (see ``fail``/``suspects``).
                charged = sorted(broken + list(pending.values()),
                                 key=lambda entry: entry.seq)
                pending.clear()
                ambiguous = len(charged) > 1
                for entry in charged:
                    fail(entry, CAUSE_CRASH, "worker pool broke",
                         ambiguous=ambiguous)
                self._respawn()
                requeued = [entry for entry in charged
                            if entry.shard_index not in abandoned]
                if requeued:
                    # Re-dispatched onto the respawned pool generation.
                    row.reassignments += len(requeued)
                    obs.count("runtime.reassignments", len(requeued))
                for entry in requeued:
                    requeue(entry.shard_index)
                continue

            # A hung worker wedges its slot until SIGKILL, but killing
            # it costs the *whole* pool (any worker death breaks a
            # ProcessPoolExecutor), destroying every innocent in-flight
            # shard's work and restarting its deadline from zero.  So
            # teardown waits until NO pending shard is healthy: a shard
            # is declared hung only by individually exceeding its own
            # execution deadline (bounded dispatch: the clock never
            # covers queue time), healthy shards keep completing — and
            # new ones keep dispatching — on the remaining live workers
            # meanwhile, and co-hung shards batch into one wave, each
            # paying one deadline instead of one teardown apiece.
            moment = time.monotonic()
            if pending and all(moment >= entry.deadline
                               for entry in pending.values()):
                wave = sorted(pending.values(),
                              key=lambda entry: entry.seq)
                pending.clear()
                for entry in wave:
                    fail(entry, CAUSE_HANG,
                         "no result within %.1fs"
                         % self.policy.shard_deadline_s)
                self._respawn()
                requeued = [entry for entry in wave
                            if entry.shard_index not in abandoned]
                if requeued:
                    row.reassignments += len(requeued)
                    obs.count("runtime.reassignments", len(requeued))
                for entry in requeued:
                    requeue(entry.shard_index)

        row.failures = tuple(failures)
        return envelopes
