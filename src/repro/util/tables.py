"""Plain-text table rendering for experiment and benchmark output.

Every experiment driver prints its table or figure series through
:func:`render_table`, so ``pytest benchmarks/`` output lines up with the
rows the paper reports.
"""

from __future__ import annotations

from typing import Sequence


def _cell(value: object) -> str:
    if isinstance(value, float):
        return "%.4g" % value
    return str(value)


def render_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 title: str | None = None) -> str:
    """Render rows as an aligned, pipe-separated text table."""
    text_rows = [[_cell(value) for value in row] for row in rows]
    for row in text_rows:
        if len(row) != len(headers):
            raise ValueError(
                "row width %d does not match %d headers" % (len(row), len(headers))
            )
    widths = [len(header) for header in headers]
    for row in text_rows:
        for column, value in enumerate(row):
            widths[column] = max(widths[column], len(value))

    def fmt(row: Sequence[str]) -> str:
        return " | ".join(value.ljust(width) for value, width in zip(row, widths))

    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append(fmt(headers))
    lines.append("-+-".join("-" * width for width in widths))
    lines.extend(fmt(row) for row in text_rows)
    return "\n".join(lines)


def percent(value: float, digits: int = 0) -> str:
    """Format a fraction as a percentage string, e.g. ``0.757 -> '76%'``."""
    return "%.*f%%" % (digits, value * 100.0)
