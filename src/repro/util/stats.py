"""Small statistics helpers: empirical CDFs, histograms, summary stats.

The paper's figures are mostly cumulative distributions (Figures 1-3, 7-8)
and histograms (Figures 4-6, 9).  These helpers compute them from plain
Python sequences so the analysis core stays dependency-light; benchmarks
render the resulting series as text.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence


@dataclass(frozen=True)
class CdfPoint:
    """One step of an empirical CDF: ``fraction`` of mass at values <= ``value``."""

    value: float
    fraction: float


def empirical_cdf(values: Iterable[float]) -> list[CdfPoint]:
    """Return the empirical CDF of ``values`` as sorted step points.

    Duplicate values collapse into a single step carrying their combined
    mass, which makes modes (the paper's "vertical segments in the CDF")
    easy to spot programmatically.
    """
    ordered = sorted(values)
    if not ordered:
        return []
    total = len(ordered)
    points: list[CdfPoint] = []
    index = 0
    while index < total:
        value = ordered[index]
        run = index
        while run < total and ordered[run] == value:
            run += 1
        points.append(CdfPoint(value, run / total))
        index = run
    return points


def weighted_cdf(pairs: Iterable[tuple[float, float]]) -> list[CdfPoint]:
    """Return a CDF over ``(value, weight)`` pairs.

    This is the form used for total-time-fraction CDFs, where each distinct
    address duration carries the fraction of total time it accounts for.
    Weights must be non-negative; zero-total input yields an empty CDF.
    """
    accumulated: dict[float, float] = {}
    for value, weight in pairs:
        if weight < 0:
            raise ValueError("negative weight %r for value %r" % (weight, value))
        accumulated[value] = accumulated.get(value, 0.0) + weight
    total = sum(accumulated.values())
    if total == 0:
        return []
    points: list[CdfPoint] = []
    running = 0.0
    for value in sorted(accumulated):
        running += accumulated[value]
        points.append(CdfPoint(value, running / total))
    return points


def cdf_fraction_at(points: Sequence[CdfPoint], value: float) -> float:
    """Evaluate a step CDF at ``value`` (fraction of mass <= value)."""
    best = 0.0
    for point in points:
        if point.value <= value:
            best = point.fraction
        else:
            break
    return best


def cdf_mass_at(points: Sequence[CdfPoint], value: float,
                rel_tol: float = 1e-9) -> float:
    """Return the mass of the single step at ``value`` (0 when absent)."""
    previous = 0.0
    for point in points:
        if math.isclose(point.value, value, rel_tol=rel_tol):
            return point.fraction - previous
        if point.value > value:
            break
        previous = point.fraction
    return 0.0


@dataclass(frozen=True)
class HistogramBin:
    """A histogram bin over ``[low, high)`` with an integer count."""

    low: float
    high: float
    count: int


def histogram(values: Iterable[float], edges: Sequence[float]) -> list[HistogramBin]:
    """Histogram ``values`` into bins delimited by sorted ``edges``.

    Values outside ``[edges[0], edges[-1])`` are ignored; the paper's
    bucketed plots (Figure 9) define their own catch-all edges explicitly.
    """
    if len(edges) < 2:
        raise ValueError("need at least two edges")
    if any(b <= a for a, b in zip(edges, edges[1:])):
        raise ValueError("edges must be strictly increasing")
    counts = [0] * (len(edges) - 1)
    for value in values:
        if value < edges[0] or value >= edges[-1]:
            continue
        lo, hi = 0, len(edges) - 1
        while lo + 1 < hi:
            mid = (lo + hi) // 2
            if value >= edges[mid]:
                lo = mid
            else:
                hi = mid
        counts[lo] += 1
    return [
        HistogramBin(edges[i], edges[i + 1], counts[i])
        for i in range(len(counts))
    ]


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; raises on empty input."""
    if not values:
        raise ValueError("mean of empty sequence")
    return sum(values) / len(values)


def median(values: Sequence[float]) -> float:
    """Median; raises on empty input."""
    if not values:
        raise ValueError("median of empty sequence")
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2


def quantile(values: Sequence[float], q: float) -> float:
    """Linear-interpolated quantile ``q`` in [0, 1]; raises on empty input."""
    if not values:
        raise ValueError("quantile of empty sequence")
    if not 0.0 <= q <= 1.0:
        raise ValueError("quantile must be in [0, 1], got %r" % (q,))
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    position = q * (len(ordered) - 1)
    lower = int(math.floor(position))
    upper = int(math.ceil(position))
    if lower == upper:
        return ordered[lower]
    weight = position - lower
    return ordered[lower] * (1 - weight) + ordered[upper] * weight


def fraction(numerator: int, denominator: int) -> float:
    """Safe ratio: 0.0 when the denominator is zero."""
    if denominator == 0:
        return 0.0
    return numerator / denominator
