"""Deterministic random-number substreams.

Every stochastic component of the simulator (per-probe outage processes,
per-ISP pool allocation, confounder assignment) draws from its own named
substream derived from a single scenario seed.  This keeps runs reproducible
and, importantly, keeps one component's draw count from perturbing another's
sequence when the scenario is edited.
"""

from __future__ import annotations

import hashlib
import math
import random
from typing import Sequence, TypeVar

T = TypeVar("T")


def substream(seed: int, *names: object) -> random.Random:
    """Return a :class:`random.Random` keyed on ``seed`` and a name path.

    The name path is hashed, so ``substream(7, "probe", 12, "power")`` is
    stable across runs and independent of every other path.
    """
    digest = hashlib.sha256(
        ("%d|" % seed + "|".join(str(name) for name in names)).encode("utf-8")
    ).digest()
    return random.Random(int.from_bytes(digest[:8], "big"))


def poisson_arrivals(rng: random.Random, rate_per_second: float,
                     start: float, end: float) -> list[float]:
    """Sample a homogeneous Poisson process on ``[start, end)``.

    ``rate_per_second`` is the arrival intensity; a zero rate yields no
    arrivals.  Used for outage arrival times.
    """
    if rate_per_second < 0:
        raise ValueError("negative rate %r" % (rate_per_second,))
    arrivals: list[float] = []
    if rate_per_second == 0:
        return arrivals
    cursor = start
    while True:
        cursor += rng.expovariate(rate_per_second)
        if cursor >= end:
            return arrivals
        arrivals.append(cursor)


def lognormal_from_median(rng: random.Random, median: float,
                          sigma: float) -> float:
    """Sample a lognormal given its median and log-space sigma.

    Outage durations are heavy-tailed; parameterizing by the median keeps
    scenario configuration intuitive (e.g. "median outage 4 minutes").
    """
    if median <= 0:
        raise ValueError("median must be positive, got %r" % (median,))
    return math.exp(math.log(median) + sigma * rng.gauss(0.0, 1.0))


def weighted_choice(rng: random.Random, items: Sequence[T],
                    weights: Sequence[float]) -> T:
    """Pick one item with the given non-negative weights."""
    if len(items) != len(weights):
        raise ValueError("items and weights differ in length")
    if not items:
        raise ValueError("cannot choose from empty sequence")
    total = float(sum(weights))
    if total <= 0:
        raise ValueError("weights must sum to a positive value")
    point = rng.random() * total
    running = 0.0
    for item, weight in zip(items, weights):
        if weight < 0:
            raise ValueError("negative weight %r" % (weight,))
        running += weight
        if point < running:
            return item
    return items[-1]
