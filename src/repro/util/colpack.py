"""Columnar artifact codec: named numpy columns <-> packed bytes / files.

The columnar refactor (DESIGN.md §16) stores hot artifacts as parallel
arrays instead of per-record object graphs.  This module is the codec
those artifacts share: a deterministic binary container holding named,
dtype-tagged columns plus a JSON metadata block, with three access
paths of increasing laziness::

    blob  = pack(schema, meta, columns)        # bytes (for pickling/IPC)
    obj   = unpack(blob)                       # zero-copy views into blob
    obj   = load(path, use_mmap=True)          # columns are mmap views

Layout (all little-endian, offsets relative to file start)::

    magic "RCOL" | u16 format version | u16 reserved | u64 header length
    header JSON (schema, meta, column table with dtype/shape/offset)
    zero padding to a 64-byte boundary
    column payloads, each padded to a 64-byte boundary

The format is consumed by later runs of *different* processes (cache
artifacts on disk), so it is a wire contract (RPR010): bump
:data:`FORMAT_VERSION` on any layout change — readers reject versions
they do not know rather than misparse them.

Object round-tripping goes through a registry keyed by schema name:
classes declare ``__columnar__`` plus ``to_columns()`` /
``from_columns()`` and call :func:`register`.  Loading never imports
arbitrary classes — only registered schemas resolve.

Everything degrades gracefully without numpy: :data:`HAVE_NUMPY` is the
gate callers check before choosing the columnar path.
"""

from __future__ import annotations

import json
import mmap as _mmap
import os
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Mapping

try:  # numpy is an accelerator, not a hard dependency
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on numpy-free hosts
    _np = None

if TYPE_CHECKING:  # pragma: no cover
    import numpy as np

#: Whether the columnar fast paths are available at all.
HAVE_NUMPY = _np is not None

MAGIC = b"RCOL"

#: Container layout version; readers reject anything newer or older.
FORMAT_VERSION = 1

#: Column payloads start and stay aligned to this many bytes, so mmap'd
#: views are safely aligned for every dtype we allow.
ALIGNMENT = 64

#: Dtype kinds a column may use: signed/unsigned ints, floats, bools.
#: (No object/str columns — those would smuggle pickle back in.)
ALLOWED_KINDS = frozenset("iufb")

__wire_contract__ = {"colpack-format": ("MAGIC", "FORMAT_VERSION",
                                        "ALIGNMENT", "ALLOWED_KINDS")}


class ColpackError(ValueError):
    """A blob or file that is not a valid colpack container."""


def _require_numpy() -> None:
    if _np is None:
        raise RuntimeError(
            "repro.util.colpack requires numpy; gate callers on "
            "colpack.HAVE_NUMPY")


def _pad(length: int) -> int:
    """Bytes needed to advance ``length`` to the next aligned boundary."""
    return (ALIGNMENT - length % ALIGNMENT) % ALIGNMENT


@dataclass
class Columnar:
    """One decoded container: schema tag, JSON-safe meta, named columns."""

    schema: str
    meta: dict
    columns: "dict[str, np.ndarray]"

    def column(self, name: str) -> "np.ndarray":
        try:
            return self.columns[name]
        except KeyError:
            raise ColpackError("container %r has no column %r (have: %s)"
                               % (self.schema, name,
                                  ", ".join(sorted(self.columns)))) from None


def _check_column(name: str, array: "np.ndarray") -> None:
    if not isinstance(array, _np.ndarray):
        raise ColpackError("column %r is not an ndarray" % (name,))
    if array.dtype.kind not in ALLOWED_KINDS:
        raise ColpackError("column %r dtype %s not allowed (kinds: %s)"
                           % (name, array.dtype, "".join(sorted(ALLOWED_KINDS))))
    if array.dtype.byteorder not in ("<", "=", "|"):
        raise ColpackError("column %r must be little/native endian" % (name,))


def pack(schema: str, meta: Mapping, columns: "Mapping[str, np.ndarray]"
         ) -> bytes:
    """Encode columns into one deterministic byte blob.

    Columns are laid out in sorted-name order and the header JSON uses
    sorted keys, so identical inputs produce identical bytes regardless
    of the order the caller assembled its dict in (RPR009).
    """
    _require_numpy()
    names = sorted(columns)
    payloads: list[bytes] = []
    table: list[dict] = []
    offset = 0  # relative to the payload region
    for name in names:
        array = _np.ascontiguousarray(columns[name])
        _check_column(name, array)
        blob = array.astype(array.dtype.newbyteorder("<"),
                            copy=False).tobytes()
        table.append({"name": name,
                      "dtype": array.dtype.newbyteorder("<").str,
                      "shape": list(array.shape),
                      "offset": offset,
                      "nbytes": len(blob)})
        payloads.append(blob)
        offset += len(blob) + _pad(len(blob))
    header = json.dumps({"schema": schema, "meta": dict(meta),
                         "columns": table},
                        sort_keys=True, separators=(",", ":")).encode("utf-8")
    prefix_len = len(MAGIC) + 2 + 2 + 8
    payload_base = prefix_len + len(header)
    payload_base += _pad(payload_base)
    parts = [MAGIC,
             FORMAT_VERSION.to_bytes(2, "little"),
             b"\x00\x00",
             len(header).to_bytes(8, "little"),
             header,
             b"\x00" * _pad(prefix_len + len(header))]
    for blob in payloads:
        parts.append(blob)
        parts.append(b"\x00" * _pad(len(blob)))
    return b"".join(parts)


def unpack(buf) -> Columnar:
    """Decode a blob produced by :func:`pack`.

    ``buf`` may be ``bytes`` or any buffer (an ``mmap.mmap`` included);
    column arrays are zero-copy views into it — the caller keeps the
    buffer alive as long as the arrays are used (numpy holds a reference
    via ``.base``, so ordinary usage is safe).
    """
    _require_numpy()
    view = memoryview(buf)
    if len(view) < 16 or bytes(view[:4]) != MAGIC:
        raise ColpackError("not a colpack container (bad magic)")
    version = int.from_bytes(view[4:6], "little")
    if version != FORMAT_VERSION:
        raise ColpackError("colpack format version %d not supported "
                           "(expected %d)" % (version, FORMAT_VERSION))
    header_len = int.from_bytes(view[8:16], "little")
    prefix_len = 16
    if prefix_len + header_len > len(view):
        raise ColpackError("truncated colpack header")
    try:
        header = json.loads(bytes(view[prefix_len:prefix_len + header_len]))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ColpackError("corrupt colpack header: %s" % (error,)) from None
    payload_base = prefix_len + header_len
    payload_base += _pad(payload_base)
    columns: dict = {}
    for spec in header["columns"]:
        dtype = _np.dtype(spec["dtype"])
        if dtype.kind not in ALLOWED_KINDS:
            raise ColpackError("column %r dtype %s not allowed"
                               % (spec["name"], dtype))
        start = payload_base + spec["offset"]
        end = start + spec["nbytes"]
        if end > len(view):
            raise ColpackError("truncated column %r" % (spec["name"],))
        array = _np.frombuffer(view[start:end], dtype=dtype)
        columns[spec["name"]] = array.reshape(spec["shape"])
    return Columnar(schema=header["schema"], meta=header["meta"],
                    columns=columns)


def write(path: str | Path, schema: str, meta: Mapping,
          columns: "Mapping[str, np.ndarray]") -> int:
    """Atomically write a container file; returns bytes written."""
    blob = pack(schema, meta, columns)
    path = Path(path)
    tmp = path.with_suffix(".tmp.%d" % os.getpid())
    tmp.write_bytes(blob)
    os.replace(tmp, path)
    return len(blob)


def load(path: str | Path, use_mmap: bool = True) -> Columnar:
    """Read a container file, memory-mapping the columns by default.

    With ``use_mmap`` the file's pages are faulted in lazily as columns
    are touched — a warm-cache run that only consults a few columns
    never reads the rest.  The map is closed by the garbage collector
    once no column view references it.
    """
    _require_numpy()
    if not use_mmap:
        return unpack(Path(path).read_bytes())
    with open(path, "rb") as stream:
        try:
            mapped = _mmap.mmap(stream.fileno(), 0, access=_mmap.ACCESS_READ)
        except ValueError:  # zero-length file: nothing to map
            raise ColpackError("empty colpack file %s" % (path,)) from None
    return unpack(mapped)


# -- object registry ---------------------------------------------------------

_REGISTRY: dict[str, type] = {}


def register(cls: type) -> type:
    """Register a columnar-capable class under its ``__columnar__`` tag.

    The class must define ``__columnar__`` (schema name), an instance
    method ``to_columns() -> (meta, columns)`` and a classmethod
    ``from_columns(meta, columns)``.  Usable as a decorator.
    """
    schema = getattr(cls, "__columnar__", None)
    if not schema:
        raise ValueError("%r has no __columnar__ schema tag" % (cls,))
    existing = _REGISTRY.get(schema)
    if existing is not None and existing is not cls:
        raise ValueError("schema %r already registered to %r"
                         % (schema, existing))
    _REGISTRY[schema] = cls
    return cls


def schema_of(value: object) -> str | None:
    """The registered schema tag of ``value``, or None."""
    schema = getattr(type(value), "__columnar__", None)
    if schema is not None and _REGISTRY.get(schema) is type(value):
        return schema
    return None


def pack_object(value: object) -> bytes:
    """Pack a registered columnar-capable object."""
    schema = schema_of(value)
    if schema is None:
        raise ColpackError("%r is not a registered columnar class"
                           % (type(value),))
    meta, columns = value.to_columns()
    return pack(schema, meta, columns)


def _resolve(container: Columnar) -> object:
    cls = _REGISTRY.get(container.schema)
    if cls is None:
        raise ColpackError("no columnar class registered for schema %r"
                           % (container.schema,))
    return cls.from_columns(container.meta, container.columns)


def unpack_object(buf) -> object:
    """Decode a blob back into its registered class instance."""
    return _resolve(unpack(buf))


def write_object(path: str | Path, value: object) -> int:
    """Atomically write a registered object as a container file."""
    schema = schema_of(value)
    if schema is None:
        raise ColpackError("%r is not a registered columnar class"
                           % (type(value),))
    meta, columns = value.to_columns()
    return write(path, schema, meta, columns)


def load_object(path: str | Path, use_mmap: bool = True) -> object:
    """Load a container file back into its registered class instance."""
    return _resolve(load(path, use_mmap=use_mmap))
