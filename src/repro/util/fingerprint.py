"""Content fingerprints for datasets and cache keys.

A *fingerprint* is a hex SHA-256 digest that changes whenever the bytes it
covers change.  :mod:`repro.sim.io` stamps every dataset bundle with the
fingerprint of its files at write/load time, and the runtime artifact
cache (:mod:`repro.runtime.cache`) keys stage outputs on that fingerprint
plus the stage name, code version and parameters — so a single edited
connlog line invalidates exactly the artifacts derived from it.

Lives in :mod:`repro.util` (rank 1) because both ``sim`` (rank 6, the
producer) and ``runtime`` (rank 9, the consumer) need it and neither may
import the other.
"""

from __future__ import annotations

import hashlib
from pathlib import Path
from typing import Iterable

#: Read granularity for file hashing; 1 MiB keeps memory flat on big files.
_CHUNK_BYTES = 1 << 20

#: Length of the abbreviated digest used in filenames and log lines.
SHORT_LENGTH = 12


def hash_bytes(payload: bytes) -> str:
    """Hex SHA-256 of a byte string."""
    return hashlib.sha256(payload).hexdigest()


def hash_text(text: str) -> str:
    """Hex SHA-256 of a string's UTF-8 encoding."""
    return hash_bytes(text.encode("utf-8"))


def hash_file(path: str | Path) -> str:
    """Hex SHA-256 of one file's contents, streamed."""
    digest = hashlib.sha256()
    with open(path, "rb") as stream:
        while True:
            chunk = stream.read(_CHUNK_BYTES)
            if not chunk:
                break
            digest.update(chunk)
    return digest.hexdigest()


def hash_files(paths: Iterable[str | Path]) -> str:
    """Combined fingerprint of several files.

    Each file contributes its (repo-relative caller-chosen) name and its
    content digest, in the order given; callers must pass a canonical
    ordering (sorted paths) for the result to be stable.
    """
    digest = hashlib.sha256()
    for path in paths:
        path = Path(path)
        digest.update(path.name.encode("utf-8"))
        digest.update(b"\x00")
        digest.update(hash_file(path).encode("ascii"))
        digest.update(b"\x00")
    return digest.hexdigest()


def combine(*parts: object) -> str:
    """Fingerprint of an ordered sequence of printable parts.

    Parts are separated by an unambiguous delimiter so ``("ab", "c")`` and
    ``("a", "bc")`` cannot collide.
    """
    digest = hashlib.sha256()
    for part in parts:
        digest.update(str(part).encode("utf-8"))
        digest.update(b"\x1f")
    return digest.hexdigest()


def short(fingerprint: str, length: int = SHORT_LENGTH) -> str:
    """Abbreviate a fingerprint for filenames and human-facing output."""
    return fingerprint[:length]
