"""Ingestion policy and accounting for dataset readers.

The paper's pipeline ran over scraped operational data: truncated
connection logs, wrapped uptime counters, months missing from CAIDA's
pfx2as archive.  Every dataset reader therefore takes a
:class:`ReadPolicy`:

* ``STRICT`` (the default) keeps the historical all-or-nothing contract —
  the first malformed record raises :class:`~repro.errors.ParseError` /
  :class:`~repro.errors.DatasetError`;
* ``REPAIR`` survives dirty input — malformed records are *quarantined*,
  tolerably out-of-order records are re-sorted, wrapped counters are
  unwrapped — and every decision is accounted in an :class:`IngestReport`
  so results computed from a repaired load are auditable, never silently
  shaped by dropped data.

The invariant the fault-injection suite enforces: for every dataset,
``parsed + repaired + quarantined`` equals the number of record lines
actually presented to the reader.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class ReadPolicy(enum.Enum):
    """How a dataset reader treats malformed or inconsistent input."""

    #: Raise on the first bad record (historical behaviour, the default).
    STRICT = "strict"
    #: Quarantine bad records, repair recoverable ones, keep loading.
    REPAIR = "repair"


class IngestAction(enum.Enum):
    """What the reader did about one problematic record."""

    #: The record was recovered (re-ordered, counter unwrapped, ...).
    REPAIRED = "repaired"
    #: The record was dropped as unrecoverable.
    QUARANTINED = "quarantined"
    #: A dataset-level observation that is not tied to one record
    #: (missing month, missing file); does not enter record counts.
    NOTE = "note"


def format_line_error(source: str, line_number: int, message: object) -> str:
    """The unified location prefix for parser diagnostics.

    Every dataset parser (connlog, sosuptime, pfx2as, archive, kroot
    state) renders failures as ``<source>: line N: <message>`` so a
    failure inside a multi-file bundle is attributable to its file.
    """
    return "%s: line %d: %s" % (source, line_number, message)


@dataclass(frozen=True)
class IngestIssue:
    """One repaired/quarantined record or dataset-level note."""

    dataset: str
    source: str
    line: int | None
    action: IngestAction
    message: str

    def format(self) -> str:
        """Render as ``dataset source:line action message``."""
        location = self.source if self.line is None else (
            "%s:%d" % (self.source, self.line))
        return "[%s] %s %s: %s" % (
            self.dataset, self.action.value, location, self.message)

    def to_dict(self) -> dict[str, object]:
        """JSON-friendly representation."""
        return {
            "dataset": self.dataset,
            "source": self.source,
            "line": self.line,
            "action": self.action.value,
            "message": self.message,
        }


@dataclass
class DatasetIngest:
    """Record-level accounting for one dataset of a load."""

    name: str
    parsed: int = 0
    repaired: int = 0
    quarantined: int = 0

    @property
    def total(self) -> int:
        """All record lines presented to the reader."""
        return self.parsed + self.repaired + self.quarantined

    def to_dict(self) -> dict[str, object]:
        """JSON-friendly representation."""
        return {
            "name": self.name,
            "parsed": self.parsed,
            "repaired": self.repaired,
            "quarantined": self.quarantined,
            "total": self.total,
        }


@dataclass
class IngestReport:
    """Structured outcome of loading one bundle (or one stream).

    Readers call :meth:`parsed` / :meth:`repaired` / :meth:`quarantined`
    per record and :meth:`note` for dataset-level observations; callers
    render with :meth:`render` (text) or :meth:`to_dict` (JSON).
    """

    issues: list[IngestIssue] = field(default_factory=list)
    _datasets: dict[str, DatasetIngest] = field(default_factory=dict)

    def dataset(self, name: str) -> DatasetIngest:
        """Get-or-create the accounting row for one dataset."""
        if name not in self._datasets:
            self._datasets[name] = DatasetIngest(name)
        return self._datasets[name]

    def datasets(self) -> list[DatasetIngest]:
        """All dataset rows in first-touched order."""
        return list(self._datasets.values())

    # -- recording ---------------------------------------------------------

    def parsed(self, dataset: str, count: int = 1) -> None:
        """Count ``count`` clean records for a dataset."""
        self.dataset(dataset).parsed += count

    def repaired(self, dataset: str, source: str, line: int | None,
                 message: str) -> None:
        """Count one recovered record and remember why."""
        self.dataset(dataset).repaired += 1
        self.issues.append(IngestIssue(dataset, source, line,
                                       IngestAction.REPAIRED, message))

    def quarantined(self, dataset: str, source: str, line: int | None,
                    message: str) -> None:
        """Count one dropped record and remember why."""
        self.dataset(dataset).quarantined += 1
        self.issues.append(IngestIssue(dataset, source, line,
                                       IngestAction.QUARANTINED, message))

    def note(self, dataset: str, source: str, message: str) -> None:
        """Record a dataset-level observation outside the record counts."""
        self.dataset(dataset)
        self.issues.append(IngestIssue(dataset, source, None,
                                       IngestAction.NOTE, message))

    # -- queries -----------------------------------------------------------

    def issues_for(self, dataset: str) -> list[IngestIssue]:
        """All issues recorded against one dataset."""
        return [issue for issue in self.issues if issue.dataset == dataset]

    @property
    def clean(self) -> bool:
        """True when nothing was repaired, quarantined or noted."""
        return not self.issues

    # -- rendering ---------------------------------------------------------

    def render(self, max_issues: int = 20) -> str:
        """Human-readable summary table plus the first diagnostics."""
        lines = ["dataset      parsed  repaired  quarantined"]
        for ingest in self.datasets():
            lines.append("%-12s %6d  %8d  %11d" % (
                ingest.name, ingest.parsed, ingest.repaired,
                ingest.quarantined))
        if self.issues:
            lines.append("issues (%d total):" % len(self.issues))
            for issue in self.issues[:max_issues]:
                lines.append("  " + issue.format())
            if len(self.issues) > max_issues:
                lines.append("  ... %d more" % (len(self.issues) - max_issues))
        return "\n".join(lines)

    def to_dict(self) -> dict[str, object]:
        """JSON-friendly representation for ``--json`` style output."""
        return {
            "datasets": [ingest.to_dict() for ingest in self.datasets()],
            "issues": [issue.to_dict() for issue in self.issues],
        }
