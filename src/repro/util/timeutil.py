"""Time helpers for the address-change analysis.

All timestamps in this project are Unix epoch seconds in UTC, expressed as
``float``.  The paper studies the calendar year 2015; :data:`YEAR_2015_START`
and :data:`YEAR_2015_END` bound that window.  Durations are in seconds unless
a function name says otherwise (``hours``, ``days``).

The RIPE Atlas connection logs render timestamps like ``Jan  1 03:22:16``;
:func:`format_log_time` and :func:`parse_log_time` implement that format so
our simulated logs are byte-compatible with the paper's Table 1 examples.
"""

from __future__ import annotations

import calendar
import datetime as _dt

SECOND = 1.0
MINUTE = 60.0
HOUR = 3600.0
DAY = 86400.0
WEEK = 7 * DAY

#: Wall-clock budget one shard task gets before the supervisor declares
#: it hung and reassigns it (:mod:`repro.runtime.supervisor`).  Generous:
#: a paper-scale shard computes in well under a second, so only a truly
#: wedged worker ever reaches this.
SHARD_DEADLINE_S = 5 * MINUTE
#: How often a live worker process refreshes its heartbeat file.
HEARTBEAT_INTERVAL_S = 5 * SECOND
#: First retry delay; attempt ``n`` waits ``BACKOFF_BASE_S * 2**(n-1)``.
BACKOFF_BASE_S = 0.05 * SECOND
#: Maximum failed attempts per shard before its probes are quarantined.
#: A count, not a duration — it lives here with the supervisor's other
#: retry knobs so none of them is a magic number at the call site.
MAX_SHARD_RETRIES = 3

#: Wall-clock budget one distributed lease gets before the coordinator
#: declares it hung and reassigns the shard (:mod:`repro.dist`).  The
#: same execution-only semantics as :data:`SHARD_DEADLINE_S`: the clock
#: starts at grant time, and a shard waiting ungranted never ages.
LEASE_DEADLINE_S = SHARD_DEADLINE_S
#: How often the coordinator's stage loop sweeps for expired leases and
#: how long a worker sleeps on an empty-handed DRAIN before re-pulling.
DIST_POLL_S = 0.05 * SECOND
#: Socket receive timeout on the worker side of the dist protocol; a
#: reply that never arrives (dropped by a faulty transport) surfaces as
#: a timeout and triggers a reconnect instead of wedging the worker.
DIST_SOCKET_TIMEOUT_S = 30 * SECOND
#: Delay between a worker's connection attempts to the coordinator.
DIST_RECONNECT_DELAY_S = 0.1 * SECOND
#: How long the coordinator keeps answering DRAIN(done) after the run
#: completes, so connected workers learn the run is over and exit.
DIST_DRAIN_GRACE_S = 5 * SECOND

#: Inclusive start of the study window (2015-01-01 00:00:00 UTC).
YEAR_2015_START = float(
    calendar.timegm(_dt.datetime(2015, 1, 1, tzinfo=_dt.timezone.utc).timetuple())
)
#: Exclusive end of the study window (2016-01-01 00:00:00 UTC).
YEAR_2015_END = float(
    calendar.timegm(_dt.datetime(2016, 1, 1, tzinfo=_dt.timezone.utc).timetuple())
)

_MONTH_ABBR = [
    "Jan", "Feb", "Mar", "Apr", "May", "Jun",
    "Jul", "Aug", "Sep", "Oct", "Nov", "Dec",
]


def utc_datetime(timestamp: float) -> _dt.datetime:
    """Return the aware UTC datetime for an epoch timestamp."""
    return _dt.datetime.fromtimestamp(timestamp, tz=_dt.timezone.utc)


def epoch(year: int, month: int, day: int, hour: int = 0,
          minute: int = 0, second: int = 0) -> float:
    """Return the epoch timestamp of a UTC calendar instant."""
    moment = _dt.datetime(year, month, day, hour, minute, second,
                          tzinfo=_dt.timezone.utc)
    return float(calendar.timegm(moment.timetuple()))


def hours(value: float) -> float:
    """Convert hours to seconds."""
    return value * HOUR


def days(value: float) -> float:
    """Convert days to seconds."""
    return value * DAY


def to_hours(seconds: float) -> float:
    """Convert seconds to hours."""
    return seconds / HOUR


def hour_of_day(timestamp: float) -> int:
    """Return the GMT hour-of-day (0..23) for a timestamp.

    Figures 4 and 5 of the paper histogram address changes by the GMT hour
    in which a periodic address duration ended.
    """
    return utc_datetime(timestamp).hour


def day_of_year(timestamp: float) -> int:
    """Return the 1-based day of the year for a timestamp (Figure 6 x-axis)."""
    return utc_datetime(timestamp).timetuple().tm_yday


def month_of(timestamp: float) -> tuple[int, int]:
    """Return ``(year, month)`` for a timestamp.

    Used to select the monthly pfx2as snapshot matching an address
    assignment, per Section 3.3 of the paper.
    """
    moment = utc_datetime(timestamp)
    return moment.year, moment.month


def format_log_time(timestamp: float) -> str:
    """Render a timestamp in connection-log style, e.g. ``Jan  1 03:22:16``."""
    moment = utc_datetime(timestamp)
    return "%s %2d %02d:%02d:%02d" % (
        _MONTH_ABBR[moment.month - 1], moment.day,
        moment.hour, moment.minute, moment.second,
    )


def parse_log_time(text: str, year: int = 2015) -> float:
    """Parse a connection-log style timestamp back to epoch seconds.

    The log format omits the year, so the caller supplies it (the study
    window is 2015).  Raises :class:`ValueError` on malformed input.
    """
    fields = text.split()
    if len(fields) != 3:
        raise ValueError("malformed log time: %r" % (text,))
    month_name, day_text, clock = fields
    try:
        month = _MONTH_ABBR.index(month_name) + 1
    except ValueError:
        raise ValueError("unknown month in log time: %r" % (text,)) from None
    clock_fields = clock.split(":")
    if len(clock_fields) != 3:
        raise ValueError("malformed clock in log time: %r" % (text,))
    hour_v, minute_v, second_v = (int(part) for part in clock_fields)
    return epoch(year, month, int(day_text), hour_v, minute_v, second_v)


def iter_month_starts(start: float, end: float):
    """Yield ``(year, month, epoch_start)`` for each month touching [start, end)."""
    year, month = month_of(start)
    while True:
        month_start = epoch(year, month, 1)
        if month_start >= end:
            return
        if epoch(year + (month == 12), month % 12 + 1, 1) > start:
            yield year, month, max(month_start, 0.0)
        month += 1
        if month == 13:
            month = 1
            year += 1
