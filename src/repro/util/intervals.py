"""Half-open interval algebra used throughout the simulator and analysis.

Outage processes, connection sessions and dataset window queries all reason
about half-open time intervals ``[start, end)``.  :class:`IntervalSet` keeps
a normalized (sorted, disjoint) list of such intervals and supports the small
set of operations the pipeline needs: insertion with coalescing, membership,
overlap queries, intersection, and total measure.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Iterable, Iterator


@dataclass(frozen=True, order=True)
class Interval:
    """A half-open interval ``[start, end)`` with ``start <= end``."""

    start: float
    end: float

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(
                "interval end %r precedes start %r" % (self.end, self.start)
            )

    @property
    def length(self) -> float:
        """Measure of the interval."""
        return self.end - self.start

    def is_empty(self) -> bool:
        """True when the interval has zero measure."""
        return self.end == self.start

    def contains(self, point: float) -> bool:
        """True when ``start <= point < end``."""
        return self.start <= point < self.end

    def overlaps(self, other: "Interval") -> bool:
        """True when the two intervals share positive measure."""
        return self.start < other.end and other.start < self.end

    def intersect(self, other: "Interval") -> "Interval | None":
        """Return the overlapping part, or None when disjoint."""
        start = max(self.start, other.start)
        end = min(self.end, other.end)
        if start >= end:
            return None
        return Interval(start, end)

    def shift(self, offset: float) -> "Interval":
        """Return the interval translated by ``offset``."""
        return Interval(self.start + offset, self.end + offset)


class IntervalSet:
    """A normalized set of disjoint half-open intervals.

    Intervals that touch (``a.end == b.start``) are coalesced on insertion,
    so the set is always minimal.  Empty intervals are ignored.
    """

    def __init__(self, intervals: Iterable[Interval] = ()) -> None:
        self._starts: list[float] = []
        self._intervals: list[Interval] = []
        for interval in intervals:
            self.add(interval)

    def __len__(self) -> int:
        return len(self._intervals)

    def __iter__(self) -> Iterator[Interval]:
        return iter(self._intervals)

    def __repr__(self) -> str:
        inner = ", ".join(
            "[%g, %g)" % (iv.start, iv.end) for iv in self._intervals
        )
        return "IntervalSet(%s)" % inner

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IntervalSet):
            return NotImplemented
        return self._intervals == other._intervals

    def add(self, interval: Interval) -> None:
        """Insert an interval, coalescing with any neighbours it touches."""
        if interval.is_empty():
            return
        lo = bisect.bisect_left(self._starts, interval.start)
        # Merge with the predecessor when it reaches interval.start.
        if lo > 0 and self._intervals[lo - 1].end >= interval.start:
            lo -= 1
        start = interval.start
        end = interval.end
        hi = lo
        while hi < len(self._intervals) and self._intervals[hi].start <= end:
            start = min(start, self._intervals[hi].start)
            end = max(end, self._intervals[hi].end)
            hi += 1
        merged = Interval(start, end)
        self._intervals[lo:hi] = [merged]
        self._starts[lo:hi] = [merged.start]

    def add_span(self, start: float, end: float) -> None:
        """Convenience for ``add(Interval(start, end))``."""
        self.add(Interval(start, end))

    def contains(self, point: float) -> bool:
        """True when some member interval contains ``point``."""
        return self.at(point) is not None

    def at(self, point: float) -> Interval | None:
        """Return the member interval containing ``point``, if any."""
        idx = bisect.bisect_right(self._starts, point) - 1
        if idx >= 0 and self._intervals[idx].contains(point):
            return self._intervals[idx]
        return None

    def overlapping(self, window: Interval) -> list[Interval]:
        """Return member intervals overlapping ``window`` in order."""
        if window.is_empty():
            return []
        idx = bisect.bisect_right(self._starts, window.start) - 1
        if idx < 0:
            idx = 0
        found: list[Interval] = []
        while idx < len(self._intervals):
            member = self._intervals[idx]
            if member.start >= window.end:
                break
            if member.overlaps(window):
                found.append(member)
            idx += 1
        return found

    def intersect_span(self, start: float, end: float) -> "IntervalSet":
        """Return the intersection of the set with ``[start, end)``."""
        window = Interval(start, end)
        clipped = IntervalSet()
        for member in self.overlapping(window):
            part = member.intersect(window)
            if part is not None:
                clipped.add(part)
        return clipped

    def total_measure(self) -> float:
        """Return the summed length of all member intervals."""
        return sum(member.length for member in self._intervals)

    def gaps_within(self, start: float, end: float) -> list[Interval]:
        """Return the complement of the set inside ``[start, end)``."""
        cursor = start
        holes: list[Interval] = []
        for member in self.overlapping(Interval(start, end)):
            if member.start > cursor:
                holes.append(Interval(cursor, min(member.start, end)))
            cursor = max(cursor, member.end)
        if cursor < end:
            holes.append(Interval(cursor, end))
        return holes
