"""Deterministic-iteration helpers.

Reproducibility demands that anything feeding a digest, a cached
artifact, or a wire payload iterates in a stable order.  These helpers
are the sanctioned way to restore that order after an inherently
unordered step (a ``set``, a shard fan-in, a directory listing) — and
the static analyzer treats them as sanitizing barriers, so values passed
through here are trusted downstream by RPR009 (DESIGN.md §12).
"""

from __future__ import annotations

from typing import Callable, Iterable, Mapping, TypeVar

T = TypeVar("T")
K = TypeVar("K")
V = TypeVar("V")


def ordered(iterable: Iterable[T],
            key: Callable[[T], object] | None = None) -> list[T]:
    """``sorted()`` under a name that states *why*: determinism."""
    return sorted(iterable, key=key)  # type: ignore[type-var, arg-type]


def ordered_items(mapping: Mapping[K, V]) -> list[tuple[K, V]]:
    """A mapping's items in sorted-key order."""
    return sorted(mapping.items())  # type: ignore[type-var]


def ordered_merge(*mappings: Mapping[K, V]) -> dict[K, V]:
    """Merge mappings into one dict with sorted-key iteration order.

    Later mappings win on key collisions (plain ``update`` semantics),
    but the *result's* insertion order is sorted keys — so downstream
    iteration, serialization, and digests are independent of the order
    the inputs arrived in (e.g. shard completion order).
    """
    merged: dict[K, V] = {}
    for mapping in mappings:
        merged.update(mapping)
    return {key: merged[key] for key in sorted(merged)}  # type: ignore[type-var]
