"""Shared utilities: time, intervals, statistics, RNG substreams, tables."""

from repro.util import intervals, rng, stats, tables, timeutil

__all__ = ["intervals", "rng", "stats", "tables", "timeutil"]
