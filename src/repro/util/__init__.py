"""Shared utilities: time, intervals, statistics, RNG substreams, tables."""

from repro.util import intervals, ordering, rng, stats, tables, timeutil

__all__ = ["intervals", "ordering", "rng", "stats", "tables", "timeutil"]
