"""Extension experiments beyond the paper's tables and figures.

Section 8 of the paper sketches two follow-ups that we implement:

* ``ext-admin`` — attribute observed churn to *administrative renumbering*
  by detecting per-AS days of synchronized migration into never-before-seen
  prefixes;
* ``ext-churn`` — the Richter-style day-over-day active-address churn
  series the paper cites as context (~8%/day at a large CDN).

``ext-lease`` implements the paper's Section 5.4 aside that LGI's
behaviour "is consistent with a DHCP lease duration on the order of a few
hours": it infers an upper bound on each DHCP ISP's lease from the outage
duration at which renumbering becomes likely.
"""

from __future__ import annotations

from repro.core.association import GapCause
from repro.core.pipeline import AnalysisResults
from repro.experiments.registry import ExperimentOutput, experiment
from repro.util import timeutil
from repro.util.tables import percent, render_table
from repro.util.timeutil import HOUR


@experiment("ext-admin")
def ext_admin(results: AnalysisResults) -> ExperimentOutput:
    """Detect administrative (mass prefix) renumbering events."""
    events = results.administrative_renumberings(timeutil.YEAR_2015_START)
    rows = [
        [results.as_names.get(event.asn, "AS%d" % event.asn),
         event.day_index + 1,
         "%d/%d" % (event.probes_changed, event.probes_total),
         ", ".join(str(p) for p in event.novel_prefixes)]
        for event in events
    ]
    text = render_table(
        ["AS", "Day of year", "Probes migrated", "Novel prefixes"],
        rows, title="Extension: administrative renumbering events")
    return ExperimentOutput("ext-admin", "Administrative renumbering",
                            text, data={"events": events})


@experiment("ext-churn")
def ext_churn(results: AnalysisResults) -> ExperimentOutput:
    """Daily active-address churn across the analyzable population."""
    series = results.churn_series(timeutil.YEAR_2015_START,
                                  timeutil.YEAR_2015_END)
    from repro.core.churn import mean_churn
    average = mean_churn(series)
    spikes = sorted(series, key=lambda p: -p.churn_fraction)[:5]
    rows = [[p.day_index, p.active, p.appeared, p.disappeared,
             percent(p.churn_fraction)] for p in sorted(
                 spikes, key=lambda p: p.day_index)]
    text = render_table(
        ["Day", "Active", "Appeared", "Disappeared", "Churn"],
        rows, title="Extension: top daily address churn (mean %s)"
        % percent(average, 1))
    return ExperimentOutput("ext-churn", "Daily address churn", text,
                            data={"series": series, "mean": average})


@experiment("ext-lease")
def ext_lease(results: AnalysisResults) -> ExperimentOutput:
    """Infer DHCP lease upper bounds from outage-duration behaviour.

    For each DHCP-looking AS (low renumbering on short outages), the lease
    cannot be much longer than the shortest outage duration at which
    renumbering becomes common: a client renews half-way through the lease,
    so an outage that loses the address must have outlived the residual.
    """
    from repro.core.outage_buckets import bucket_outages
    rows = []
    estimates: dict[int, float | None] = {}
    for asn in sorted(set(results.asn_by_probe.values())):
        events = [event
                  for pid, gaps in results.gap_events_by_probe.items()
                  if results.asn_by_probe.get(pid) == asn
                  for event in gaps if event.cause is not GapCause.NONE]
        buckets = bucket_outages(events)
        total = sum(b.total for b in buckets)
        if total < 30:
            continue
        short = [b for b in buckets if b.high <= HOUR]
        short_total = sum(b.total for b in short)
        short_changed = sum(b.renumbered for b in short)
        if short_total == 0 or short_changed / short_total > 0.3:
            continue  # PPP-style: renumbers on any outage, no lease signal
        threshold = None
        for bucket in buckets:
            if bucket.total >= 3 and bucket.renumbered_fraction > 0.5:
                threshold = bucket.low
                break
        estimates[asn] = threshold
        rows.append([
            results.as_names.get(asn, "AS%d" % asn), total,
            percent(short_changed / short_total),
            ("<= %.0f h" % (threshold / HOUR)
             if threshold else "no bound observed"),
        ])
    text = render_table(
        ["AS", "Outages", "Short-outage renumbering", "Inferred lease bound"],
        rows, title="Extension: DHCP lease upper bounds")
    return ExperimentOutput("ext-lease", "Lease inference", text,
                            data={"estimates": estimates})
