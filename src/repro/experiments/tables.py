"""Drivers for the paper's tables (1-7).

Tables 1, 3 and 4 are illustrative samples (a connection log, a k-root
trace around an outage, an SOS-uptime trace around a reboot); we regenerate
equivalents from purpose-built miniature scenarios.  Tables 2, 5, 6 and 7
are aggregate results computed from the shared paper world.
"""

from __future__ import annotations

from repro.atlas.kroot import KRootSeries
from repro.atlas.types import UptimeRecord
from repro.core import report
from repro.core.changes import extract_spans, known_durations
from repro.core.outages import detect_network_outages
from repro.core.pipeline import AnalysisResults
from repro.core.reboots import detect_reboots
from repro.experiments.registry import ExperimentOutput, experiment
from repro.isp.pool import PoolPolicy
from repro.isp.profiles import IspProfile
from repro.isp.spec import AccessTechnology, IspSpec
from repro.net.bgpgen import AddressSpacePlan
from repro.sim.scenario import ScenarioConfig
from repro.sim.world import build_world
from repro.util import timeutil
from repro.util.intervals import Interval, IntervalSet
from repro.util.timeutil import DAY, HOUR, MINUTE


@experiment("table1")
def table1() -> ExperimentOutput:
    """Table 1: a daily-renumbered probe's connection log with durations."""
    plan = AddressSpacePlan(num_prefixes=2, prefix_length=20,
                            slash16_groups=1, slash8_groups=1)
    spec = IspSpec(
        name="DTAG-like", asn=64496, country="DE",
        access=AccessTechnology.PPP, plan=plan, pool_policy=PoolPolicy(),
        period=DAY, periodic_fraction=1.0, skip_prob=0.0,
        offschedule_prob=0.0,
        power_outages_per_year=60.0, network_outages_per_year=120.0)
    config = ScenarioConfig(
        profiles=(IspProfile(spec, 1),), seed=206,
        start=timeutil.YEAR_2015_START,
        end=timeutil.YEAR_2015_START + 6 * DAY,
        firmware_campaigns=())
    world = build_world(config)
    probe_id = world.archive.probe_ids()[0]
    entries = world.connlog.entries(probe_id)
    spans = extract_spans(entries)
    durations = known_durations(spans)
    lines = [world.connlog.render_paper_style(probe_id, limit=10)]
    lines.append("")
    lines.append("Known address durations (hours): %s"
                 % ["%.1f" % (d / HOUR) for d in durations])
    return ExperimentOutput(
        "table1", "Connection log sample with address durations",
        "\n".join(lines),
        data={"entries": len(entries), "durations_hours":
              [d / HOUR for d in durations]})


@experiment("table2")
def table2(results: AnalysisResults) -> ExperimentOutput:
    """Table 2: probe filtering summary."""
    rows = results.table2_rows()
    return ExperimentOutput("table2", "Probe filtering",
                            report.render_table2(rows),
                            data={"rows": dict(rows)})


@experiment("table3")
def table3() -> ExperimentOutput:
    """Table 3: k-root ping records across a network outage."""
    start = timeutil.epoch(2015, 1, 27, 9, 0, 0)
    outage = Interval(start + 5 * MINUTE, start + 25 * MINUTE)
    series = KRootSeries(16893, start - HOUR, start + 3 * HOUR,
                         network_down=IntervalSet([outage]), phase=102.0)
    records = series.records(start, start + 30 * MINUTE)
    detected = detect_network_outages(records)
    lines = ["ID\tTimestamp\tN sent\tN success\tLTS"]
    for record in records:
        lines.append("%d\t%s\t%d\t%d\t%d" % (
            record.probe_id, timeutil.format_log_time(record.timestamp),
            record.sent, record.success, record.lts))
    lines.append("")
    for event in detected:
        lines.append("Detected network outage: %s .. %s (%.0f s)" % (
            timeutil.format_log_time(event.start),
            timeutil.format_log_time(event.end), event.duration))
    return ExperimentOutput(
        "table3", "k-root ping sample around a network outage",
        "\n".join(lines),
        data={"records": len(records), "detected": len(detected),
              "detected_duration": detected[0].duration if detected else 0})


@experiment("table4")
def table4() -> ExperimentOutput:
    """Table 4: SOS-uptime records across a reboot."""
    base = timeutil.epoch(2015, 1, 1, 3, 15, 18)
    records = [
        UptimeRecord(206, base, 262531.0),
        UptimeRecord(206, timeutil.epoch(2015, 1, 1, 17, 50, 26), 315038.0),
        UptimeRecord(206, timeutil.epoch(2015, 1, 1, 17, 50, 55), 19.0),
        UptimeRecord(206, timeutil.epoch(2015, 1, 1, 17, 53, 59), 203.0),
        UptimeRecord(206, timeutil.epoch(2015, 1, 1, 18, 59, 44), 4147.0),
    ]
    reboots = detect_reboots(records)
    lines = ["ID\tTimestamp\tUptime counter value"]
    for record in records:
        lines.append("%d\t%s\t%d" % (
            record.probe_id, timeutil.format_log_time(record.timestamp),
            record.uptime))
    lines.append("")
    for reboot in reboots:
        lines.append("Inferred reboot at %s"
                     % timeutil.format_log_time(reboot.time))
    return ExperimentOutput(
        "table4", "SOS-uptime sample around a reboot", "\n".join(lines),
        data={"reboots": len(reboots),
              "reboot_time": reboots[0].time if reboots else None})


@experiment("table5")
def table5(results: AnalysisResults) -> ExperimentOutput:
    """Table 5: ISPs that renumber periodically."""
    rows = results.table5_rows()
    all_rows = results.table5_all_rows()
    return ExperimentOutput(
        "table5", "Periodic renumbering per AS",
        report.render_table5(rows, all_rows),
        data={"rows": rows, "all_rows": all_rows})


@experiment("table6")
def table6(results: AnalysisResults) -> ExperimentOutput:
    """Table 6: ASes that renumber upon outages."""
    rows = results.table6_rows()
    return ExperimentOutput(
        "table6", "Address changes upon outages",
        report.render_table6(rows), data={"rows": rows})


@experiment("table7")
def table7(results: AnalysisResults) -> ExperimentOutput:
    """Table 7: address changes across prefixes."""
    overall, rows = results.table7(top=10)
    return ExperimentOutput(
        "table7", "Address changes across prefixes",
        report.render_table7(overall, rows),
        data={"overall": overall, "rows": rows})
