"""Experiment drivers: one per paper table and figure, plus scenarios."""

from repro.experiments import (  # noqa: F401  (registration)
    extensions,
    figures,
    tables,
)
from repro.experiments.registry import (
    ExperimentOutput,
    experiment_ids,
    get_experiment,
)
from repro.experiments.scenarios import (
    DEFAULT_SCALE,
    paper_results,
    paper_world,
    small_world,
)

__all__ = [
    "DEFAULT_SCALE",
    "ExperimentOutput",
    "experiment_ids",
    "get_experiment",
    "paper_results",
    "paper_world",
    "small_world",
]
