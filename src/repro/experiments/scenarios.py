"""Shared scenario construction for experiments and benchmarks.

:func:`paper_world` / :func:`paper_results` build (and cache, per process)
the year-2015 world mirroring the paper's probe populations, so that every
table and figure driver works off the same simulated dataset — just as the
paper's sections all analyze one 2015 capture.

Well-known ASNs from the paper are exposed as constants so experiment code
reads like the paper ("Orange", "DTAG", ...) rather than magic numbers.
"""

from __future__ import annotations

from functools import lru_cache

from repro.core.pipeline import AnalysisResults, pipeline_for_world
from repro.isp.pool import PoolPolicy
from repro.isp.profiles import IspProfile
from repro.isp.spec import AccessTechnology, IspSpec
from repro.net.bgpgen import AddressSpacePlan
from repro.sim.scenario import ScenarioConfig, paper_scenario
from repro.sim.world import WorldData, build_world
from repro.util import timeutil
from repro.util.timeutil import DAY

#: Default scenario scale for experiments: the full paper scenario takes
#: minutes; 0.5 keeps every per-AS population large enough for the paper's
#: thresholds while staying fast.
DEFAULT_SCALE = 0.5

# ASNs from the paper's tables.
ORANGE = 3215
DTAG = 3320
BT = 2856
LGI = 6830
VERIZON = 701
COMCAST = 7922
PROXIMUS = 5432
TELECOM_ITALIA = 3269
VODAFONE_DE = 3209
TELEFONICA_DE_1 = 13184
TELEFONICA_DE_2 = 6805
KABEL_DE = 31334
KABEL_BW = 29562

#: The five ASes of Figures 2, 7 and 8.
TOP_FIVE = (ORANGE, DTAG, BT, LGI, VERIZON)

#: The German ASes of Figure 3.
GERMAN_ASES = (DTAG, VODAFONE_DE, TELEFONICA_DE_1, TELEFONICA_DE_2,
               KABEL_DE, KABEL_BW)


@lru_cache(maxsize=4)
def paper_world(scale: float = DEFAULT_SCALE,
                seed: int = 2015) -> WorldData:
    """Build (once per process) the paper-mirroring world."""
    return build_world(paper_scenario(scale=scale, seed=seed))


@lru_cache(maxsize=4)
def paper_results(scale: float = DEFAULT_SCALE,
                  seed: int = 2015) -> AnalysisResults:
    """Run (once per process) the full pipeline over the paper world."""
    return pipeline_for_world(paper_world(scale=scale, seed=seed)).run()


def small_world(seed: int = 7, days: int = 40) -> WorldData:
    """A compact world for quickstarts and integration tests.

    One periodic PPP ISP, one reactive PPP ISP and one stable DHCP ISP with
    a handful of probes each, plus a sprinkle of confounders.
    """
    plan = AddressSpacePlan(num_prefixes=4, prefix_length=20,
                            slash16_groups=2, slash8_groups=2)
    periodic = IspSpec(
        name="Daily-DSL", asn=64496, country="DE",
        access=AccessTechnology.PPP, plan=plan,
        pool_policy=PoolPolicy(stay_bgp_prob=0.4, stay_slash16_prob=0.6),
        period=DAY, periodic_fraction=1.0, skip_prob=0.002)
    reactive = IspSpec(
        name="Reactive-DSL", asn=64497, country="FR",
        access=AccessTechnology.PPP, plan=plan,
        pool_policy=PoolPolicy(stay_bgp_prob=0.3, stay_slash16_prob=0.5),
        network_outages_per_year=30.0)
    stable = IspSpec(
        name="Stable-Cable", asn=64498, country="US",
        access=AccessTechnology.DHCP, plan=plan,
        pool_policy=PoolPolicy(stay_bgp_prob=0.7, stay_slash16_prob=0.8),
        churn_rate_per_hour=0.02, dhcp_change_prob=0.01)
    config = ScenarioConfig(
        profiles=(IspProfile(periodic, 8), IspProfile(reactive, 8),
                  IspProfile(stable, 8)),
        seed=seed,
        start=timeutil.YEAR_2015_START,
        end=timeutil.YEAR_2015_START + days * DAY,
        static_probes=4, dual_stack_probes=4, ipv6_probes=2,
        tagged_probes=2, multihomed_probes=2, testing_only_probes=2,
        mover_probes=2,
    )
    return build_world(config)
