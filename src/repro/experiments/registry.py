"""Experiment registry: one driver per paper table/figure.

Each driver is a function taking an :class:`AnalysisResults` (or nothing,
for the sample-log tables) and returning an :class:`ExperimentOutput` with
rendered text plus the structured data the benchmarks assert on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable


@dataclass
class ExperimentOutput:
    """Result of running one experiment driver."""

    experiment_id: str
    title: str
    text: str
    data: dict = field(default_factory=dict)


_REGISTRY: dict[str, Callable[..., ExperimentOutput]] = {}


def experiment(experiment_id: str):
    """Decorator registering a driver under an experiment id."""

    def wrap(func: Callable[..., ExperimentOutput]):
        if experiment_id in _REGISTRY:
            raise ValueError("duplicate experiment id %r" % experiment_id)
        _REGISTRY[experiment_id] = func
        return func

    return wrap


def get_experiment(experiment_id: str) -> Callable[..., ExperimentOutput]:
    """Look up a driver; raises KeyError with the known ids on miss."""
    try:
        return _REGISTRY[experiment_id]
    except KeyError:
        raise KeyError(
            "unknown experiment %r; known: %s"
            % (experiment_id, ", ".join(sorted(_REGISTRY)))
        ) from None


def experiment_ids() -> list[str]:
    """All registered experiment ids, sorted."""
    return sorted(_REGISTRY)
