"""Drivers for the paper's figures (1-9).

Each driver renders the figure's underlying series as text rows and
returns the structured series for benchmark assertions.
"""

from __future__ import annotations

from repro.core import report
from repro.core.hourofday import concentration
from repro.core.pipeline import AnalysisResults
from repro.experiments import scenarios
from repro.experiments.registry import ExperimentOutput, experiment
from repro.util.timeutil import HOUR


def _as_label(results: AnalysisResults, asn: int) -> str:
    return results.as_names.get(asn, "AS%d" % asn)


@experiment("figure1")
def figure1(results: AnalysisResults) -> ExperimentOutput:
    """Figure 1: total-time-fraction CDF by continent."""
    groups = results.figure1_groups()
    text = report.render_group_durations(
        groups, title="Figure 1: duration CDF by continent")
    return ExperimentOutput("figure1", "Durations by continent", text,
                            data={"groups": groups})


@experiment("figure2")
def figure2(results: AnalysisResults) -> ExperimentOutput:
    """Figure 2: duration CDFs for the five largest probe deployments."""
    groups = [results.as_group_durations(asn) for asn in scenarios.TOP_FIVE]
    text = report.render_group_durations(
        groups, title="Figure 2: duration CDF for top ASes")
    return ExperimentOutput(
        "figure2", "Durations for top ASes", text,
        data={"groups": {g.label: g for g in groups}})


@experiment("figure3")
def figure3(results: AnalysisResults) -> ExperimentOutput:
    """Figure 3: duration CDFs for German ISPs."""
    groups = results.figure3_groups("DE")
    text = report.render_group_durations(
        groups, title="Figure 3: duration CDF for German ASes")
    return ExperimentOutput(
        "figure3", "Durations for German ISPs", text,
        data={"groups": {g.label: g for g in groups}})


@experiment("figure4")
def figure4(results: AnalysisResults) -> ExperimentOutput:
    """Figure 4: Orange's weekly changes spread across the day."""
    counts = results.figure45_histogram(scenarios.ORANGE, 168 * HOUR)
    text = report.render_hour_histogram(
        counts, title="Figure 4: Orange periodic changes per GMT hour")
    return ExperimentOutput(
        "figure4", "Orange change hours", text,
        data={"counts": counts,
              "night_fraction": concentration(counts, (0, 6))})


@experiment("figure5")
def figure5(results: AnalysisResults) -> ExperimentOutput:
    """Figure 5: DTAG's daily changes concentrate in night hours."""
    counts = results.figure45_histogram(scenarios.DTAG, 24 * HOUR)
    text = report.render_hour_histogram(
        counts, title="Figure 5: DTAG periodic changes per GMT hour")
    return ExperimentOutput(
        "figure5", "DTAG change hours", text,
        data={"counts": counts,
              "night_fraction": concentration(counts, (0, 6))})


@experiment("figure6")
def figure6(results: AnalysisResults) -> ExperimentOutput:
    """Figure 6: probes rebooting per day, with firmware spikes."""
    day_counts, firmware_days = results.figure6_series()
    text = report.render_figure6(day_counts, firmware_days)
    return ExperimentOutput(
        "figure6", "Reboots per day and firmware campaigns", text,
        data={"day_counts": day_counts, "firmware_days": firmware_days})


@experiment("figure7")
def figure7(results: AnalysisResults) -> ExperimentOutput:
    """Figure 7: CDF of P(ac|nw) for the five top ASes."""
    series = {_as_label(results, asn): results.figure7_cdf(asn)
              for asn in scenarios.TOP_FIVE}
    text = report.render_probability_cdfs(
        series, title="Figure 7: P(address change | network outage)")
    return ExperimentOutput("figure7", "P(ac|nw) CDFs", text,
                            data={"series": series})


@experiment("figure8")
def figure8(results: AnalysisResults) -> ExperimentOutput:
    """Figure 8: CDF of P(ac|pw) for the five top ASes (v3 probes)."""
    series = {_as_label(results, asn): results.figure8_cdf(asn)
              for asn in scenarios.TOP_FIVE}
    text = report.render_probability_cdfs(
        series, title="Figure 8: P(address change | power outage)")
    return ExperimentOutput("figure8", "P(ac|pw) CDFs", text,
                            data={"series": series})


@experiment("figure9")
def figure9(results: AnalysisResults) -> ExperimentOutput:
    """Figure 9: renumbering by outage duration for LGI and Orange."""
    lgi = results.figure9_buckets(scenarios.LGI)
    orange = results.figure9_buckets(scenarios.ORANGE)
    text = "\n\n".join([
        report.render_figure9(lgi, title="Figure 9 (left): LGI"),
        report.render_figure9(orange, title="Figure 9 (right): Orange"),
    ])
    return ExperimentOutput("figure9", "Renumbering by outage duration",
                            text, data={"LGI": lgi, "Orange": orange})
