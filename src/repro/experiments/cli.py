"""Command-line entry point: run any table/figure experiment.

Usage::

    repro-experiment table5
    repro-experiment figure9 --scale 0.3 --seed 11
    repro-experiment table5 --data data/ --jobs 4 --cache-dir .repro-cache
    repro-experiment --list

``--jobs``, ``--cache-dir`` and ``--no-cache`` route the analysis through
the sharded executor (:mod:`repro.runtime`); output is identical for any
job count, and a warm cache skips every unchanged stage.
"""

from __future__ import annotations

import argparse
import inspect
import sys

from repro.experiments import (  # noqa: F401  (registration)
    extensions,
    figures,
    tables,
)
from repro import obs
from repro.experiments.registry import experiment_ids, get_experiment
from repro.experiments.scenarios import DEFAULT_SCALE, paper_results
from repro.runtime.cli import (
    add_runtime_arguments,
    runtime_config,
    write_run_trace,
)


def main(argv: list[str] | None = None) -> int:
    """Run one experiment and print its rendered output."""
    parser = argparse.ArgumentParser(
        description="Reproduce a table or figure from "
                    "'Reasons Dynamic Addresses Change' (IMC 2016)")
    parser.add_argument("experiment", nargs="?",
                        help="experiment id, e.g. table5 or figure9")
    parser.add_argument("--list", action="store_true",
                        help="list available experiment ids")
    parser.add_argument("--scale", type=float, default=DEFAULT_SCALE,
                        help="scenario scale factor (default %(default)s)")
    parser.add_argument("--seed", type=int, default=2015,
                        help="scenario seed (default %(default)s)")
    parser.add_argument("--data", metavar="DIR", default=None,
                        help="analyze a dataset bundle written by "
                             "repro-simulate instead of simulating inline")
    parser.add_argument("--read-policy", choices=["strict", "repair"],
                        default="strict",
                        help="with --data: 'strict' aborts on the first "
                             "malformed record, 'repair' quarantines bad "
                             "records and degrades gracefully, printing an "
                             "ingest summary to stderr (default "
                             "%(default)s)")
    add_runtime_arguments(parser)
    args = parser.parse_args(argv)

    if args.list or not args.experiment:
        for experiment_id in experiment_ids():
            print(experiment_id)
        return 0

    try:
        driver = get_experiment(args.experiment)
    except KeyError as error:
        print(error, file=sys.stderr)
        return 2

    # --jobs/--cache-dir/--trace route through the sharded executor; the
    # plain serial path keeps the per-process lru_cache of paper_results.
    use_runtime = (args.jobs != 1 or args.cache_dir is not None
                   or args.trace is not None)
    runner = None
    if inspect.signature(driver).parameters:
        if args.data is not None:
            from repro.sim.io import load_bundle
            from repro.util.ingest import IngestReport, ReadPolicy
            policy = ReadPolicy(args.read_policy)
            report = IngestReport()
            bundle = load_bundle(args.data, policy=policy, report=report)
            obs.record_ingest(report)
            if policy is ReadPolicy.REPAIR and not report.clean:
                print(report.render(), file=sys.stderr)
            if use_runtime:
                from repro.runtime.executor import runner_for_bundle
                runner = runner_for_bundle(bundle, runtime_config(args))
                results = runner.run()
            else:
                from repro.core.pipeline import pipeline_for_bundle
                results = pipeline_for_bundle(bundle).run()
        elif use_runtime:
            from repro.experiments.scenarios import paper_world
            from repro.runtime.executor import runner_for_world
            world = paper_world(scale=args.scale, seed=args.seed)
            runner = runner_for_world(world, runtime_config(args))
            results = runner.run()
        else:
            results = paper_results(scale=args.scale, seed=args.seed)
        output = driver(results)
    else:
        output = driver()
    print(output.text)
    if args.trace is not None and runner is not None:
        from repro.runtime.digest import results_digest
        write_run_trace(args.trace, runner, results_digest(results))
        print("trace written to %s" % args.trace, file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
