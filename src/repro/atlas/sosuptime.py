"""The SOS-uptime dataset (Section 3.5 of the paper).

Probes report their uptime counter — seconds since boot — every time they
establish a new TCP connection to the controller.  A counter value smaller
than the previous one means the probe rebooted; the reboot instant is the
report timestamp minus the counter value (the paper's Table 4 example).
"""

from __future__ import annotations

from typing import Iterable, Iterator, TextIO

from repro.atlas.types import UptimeRecord
from repro.errors import DatasetError, ParseError


class UptimeDataset:
    """Per-probe, time-ordered SOS-uptime records."""

    def __init__(self, records: Iterable[UptimeRecord] = ()) -> None:
        self._by_probe: dict[int, list[UptimeRecord]] = {}
        for record in records:
            self.add(record)

    def add(self, record: UptimeRecord) -> None:
        """Append a record, enforcing per-probe time order."""
        log = self._by_probe.setdefault(record.probe_id, [])
        if log and record.timestamp < log[-1].timestamp:
            raise DatasetError(
                "probe %d: uptime record at %s out of order"
                % (record.probe_id, record.timestamp)
            )
        log.append(record)

    def probe_ids(self) -> list[int]:
        """All probe ids present, sorted."""
        return sorted(self._by_probe)

    def records(self, probe_id: int) -> list[UptimeRecord]:
        """All records for a probe in time order."""
        return list(self._by_probe.get(probe_id, ()))

    def records_in(self, probe_id: int, window_start: float,
                   window_end: float) -> list[UptimeRecord]:
        """Records with timestamps inside ``[window_start, window_end)``."""
        return [r for r in self._by_probe.get(probe_id, ())
                if window_start <= r.timestamp < window_end]

    def __iter__(self) -> Iterator[UptimeRecord]:
        for probe_id in self.probe_ids():
            yield from self._by_probe[probe_id]

    def write(self, stream: TextIO) -> None:
        """Serialize as ``probe_id<TAB>timestamp<TAB>uptime`` lines."""
        for record in self:
            stream.write("%d\t%.0f\t%.0f\n"
                         % (record.probe_id, record.timestamp, record.uptime))

    @classmethod
    def read(cls, stream: TextIO) -> "UptimeDataset":
        """Parse the text format produced by :meth:`write`."""
        dataset = cls()
        for line_number, line in enumerate(stream, start=1):
            text = line.strip()
            if not text or text.startswith("#"):
                continue
            fields = text.split("\t")
            if len(fields) != 3:
                raise ParseError(
                    "uptime line %d: expected 3 fields, got %d"
                    % (line_number, len(fields))
                )
            try:
                dataset.add(UptimeRecord(int(fields[0]), float(fields[1]),
                                         float(fields[2])))
            except ValueError:
                raise ParseError(
                    "uptime line %d: malformed numbers" % line_number
                ) from None
        return dataset
