"""The SOS-uptime dataset (Section 3.5 of the paper).

Probes report their uptime counter — seconds since boot — every time they
establish a new TCP connection to the controller.  A counter value smaller
than the previous one means the probe rebooted; the reboot instant is the
report timestamp minus the counter value (the paper's Table 4 example).
"""

from __future__ import annotations

from typing import Iterable, Iterator, TextIO

from repro.atlas.types import UptimeRecord
from repro.errors import DatasetError, ParseError
from repro.util.ingest import (
    IngestReport,
    ReadPolicy,
    format_line_error,
)

#: Dataset label used in ingest accounting and diagnostics.
DATASET_NAME = "uptime"

#: Uptime counters are 32-bit seconds on the probe; a raw value at or
#: beyond this bound can only be a wrapped/corrupted read-out, since it
#: would mean more than 136 years since boot.
UPTIME_WRAP_MODULUS = float(2 ** 32)


class UptimeDataset:
    """Per-probe, time-ordered SOS-uptime records."""

    def __init__(self, records: Iterable[UptimeRecord] = ()) -> None:
        self._by_probe: dict[int, list[UptimeRecord]] = {}
        for record in records:
            self.add(record)

    def add(self, record: UptimeRecord) -> None:
        """Append a record, enforcing per-probe time order."""
        log = self._by_probe.setdefault(record.probe_id, [])
        if log and record.timestamp < log[-1].timestamp:
            raise DatasetError(
                "probe %d: uptime record at %s out of order"
                % (record.probe_id, record.timestamp)
            )
        log.append(record)

    def probe_ids(self) -> list[int]:
        """All probe ids present, sorted."""
        return sorted(self._by_probe)

    def records(self, probe_id: int) -> list[UptimeRecord]:
        """All records for a probe in time order."""
        return list(self._by_probe.get(probe_id, ()))

    def records_in(self, probe_id: int, window_start: float,
                   window_end: float) -> list[UptimeRecord]:
        """Records with timestamps inside ``[window_start, window_end)``."""
        return [r for r in self._by_probe.get(probe_id, ())
                if window_start <= r.timestamp < window_end]

    def __iter__(self) -> Iterator[UptimeRecord]:
        for probe_id in self.probe_ids():
            yield from self._by_probe[probe_id]

    def write(self, stream: TextIO) -> None:
        """Serialize as ``probe_id<TAB>timestamp<TAB>uptime`` lines."""
        for record in self:
            stream.write("%d\t%.0f\t%.0f\n"
                         % (record.probe_id, record.timestamp, record.uptime))

    @staticmethod
    def _parse_line(text: str) -> UptimeRecord:
        """Parse one record line; raises :class:`ParseError` sans location."""
        fields = text.split("\t")
        if len(fields) != 3:
            raise ParseError("expected 3 fields, got %d" % len(fields))
        try:
            # UptimeRecord itself rejects negative counters (ParseError).
            return UptimeRecord(int(fields[0]), float(fields[1]),
                                float(fields[2]))
        except ValueError:
            raise ParseError("malformed numbers") from None

    @classmethod
    def read(cls, stream: TextIO,
             policy: ReadPolicy = ReadPolicy.STRICT,
             report: IngestReport | None = None,
             source: str | None = None) -> "UptimeDataset":
        """Parse the text format produced by :meth:`write`.

        ``STRICT`` raises on malformed lines, wrapped counters and
        out-of-order records; ``REPAIR`` quarantines garbage, unwraps
        counters modulo 2**32 and re-sorts per-probe timestamps,
        accounting every decision in ``report``.
        """
        source = source or getattr(stream, "name", "<uptime>")
        report = report if report is not None else IngestReport()
        rows: list[tuple[int, UptimeRecord]] = []
        for line_number, line in enumerate(stream, start=1):
            text = line.strip()
            if not text or text.startswith("#"):
                continue
            try:
                record = cls._parse_line(text)
            except ParseError as error:
                if policy is ReadPolicy.STRICT:
                    raise ParseError(
                        format_line_error(source, line_number, error)
                    ) from None
                report.quarantined(DATASET_NAME, source, line_number,
                                   str(error))
                continue
            if record.uptime >= UPTIME_WRAP_MODULUS:
                if policy is ReadPolicy.STRICT:
                    raise ParseError(format_line_error(
                        source, line_number,
                        "uptime counter %r beyond the 32-bit wrap"
                        % record.uptime))
                record = UptimeRecord(record.probe_id, record.timestamp,
                                      record.uptime % UPTIME_WRAP_MODULUS)
                report.repaired(DATASET_NAME, source, line_number,
                                "wrapped uptime counter reduced modulo 2**32")
                rows.append((-line_number, record))
                continue
            rows.append((line_number, record))
        if policy is ReadPolicy.STRICT:
            dataset = cls()
            for line_number, record in rows:
                try:
                    dataset.add(record)
                except DatasetError as error:
                    raise DatasetError(
                        format_line_error(source, line_number, error)
                    ) from None
                report.parsed(DATASET_NAME)
            return dataset
        return cls._assemble_repaired(rows, report, source)

    @classmethod
    def _assemble_repaired(cls, rows: list[tuple[int, UptimeRecord]],
                           report: IngestReport,
                           source: str) -> "UptimeDataset":
        """REPAIR assembly: sort timestamps per probe, count re-orderings.

        Rows carrying a negative line number were already accounted as
        repaired (counter unwrap) and are not double-counted.
        """
        by_probe: dict[int, list[tuple[int, UptimeRecord]]] = {}
        for line_number, record in rows:
            by_probe.setdefault(record.probe_id, []).append((line_number,
                                                             record))
        dataset = cls()
        for probe_id in sorted(by_probe):
            items = by_probe[probe_id]
            ordered = sorted(items, key=lambda item: item[1].timestamp)
            displaced = {ordered[i][0] for i in range(len(items))
                         if ordered[i][0] != items[i][0]}
            for line_number, record in ordered:
                dataset.add(record)
                if line_number < 0:
                    continue  # already accounted as a counter-wrap repair
                if line_number in displaced:
                    report.repaired(
                        DATASET_NAME, source, line_number,
                        "probe %d: out-of-order record re-sorted" % probe_id)
                else:
                    report.parsed(DATASET_NAME)
        return dataset
