"""Simulated RIPE Atlas web API and the scraping client.

The paper's connection logs were acquired by (1) listing active probes via
the probe-archive API and (2) scraping each probe's per-month
``connection-history/<yyyy>/<mm>`` page (Section 3.1).  This module
recreates both sides offline:

* :class:`AtlasApi` serves paginated probe-archive records and per-month
  connection-history pages out of simulated datasets;
* :func:`scrape_connection_log` is the client the paper effectively wrote —
  it walks the archive, fetches every month, parses the pages and
  reassembles a :class:`~repro.atlas.connlog.ConnectionLog`.

Running the analysis on a scraped log and on the in-memory log must agree
exactly; a test asserts that.
"""

from __future__ import annotations

from typing import Iterable

from repro.atlas.archive import ProbeArchive
from repro.atlas.connlog import ConnectionLog
from repro.atlas.types import ConnectionLogEntry, ProbeMeta
from repro.errors import DatasetError, ParseError
from repro.net.ipv4 import IPv4Address
from repro.util import timeutil

DEFAULT_PAGE_SIZE = 100


class AtlasApi:
    """Read-only API over a world's archive and connection log."""

    def __init__(self, archive: ProbeArchive, connlog: ConnectionLog) -> None:
        self._archive = archive
        self._connlog = connlog

    # -- probe archive (paginated) ----------------------------------------

    def probe_archive_page(self, page: int = 1,
                           page_size: int = DEFAULT_PAGE_SIZE) -> dict:
        """Return one page of probe-archive records.

        Mirrors the RIPE API shape: ``count``, ``next`` (the next page
        number or None), and ``results`` with probe metadata dicts.
        """
        if page < 1 or page_size < 1:
            raise DatasetError("page and page_size must be positive")
        probe_ids = self._archive.probe_ids()
        start = (page - 1) * page_size
        chunk = probe_ids[start:start + page_size]
        results = [self._meta_dict(self._archive.get(pid)) for pid in chunk]
        has_next = start + page_size < len(probe_ids)
        return {
            "count": len(probe_ids),
            "next": page + 1 if has_next else None,
            "results": results,
        }

    @staticmethod
    def _meta_dict(meta: ProbeMeta) -> dict:
        return {
            "id": meta.probe_id,
            "country_code": meta.country,
            "continent": meta.continent,
            "firmware": "v%d" % meta.version.value,
            "tags": list(meta.tags),
        }

    # -- per-month connection history ---------------------------------------

    def connection_history(self, probe_id: int, year: int,
                           month: int) -> str:
        """Return the probe's connection-history page for one month.

        An entry is listed in the month containing its start time; the
        page format is ``start<TAB>end<TAB>address`` per line.
        """
        if not 1 <= month <= 12:
            raise DatasetError("month out of range: %r" % (month,))
        if not self._archive.has_probe(probe_id):
            raise DatasetError("unknown probe %d" % probe_id)
        lines = []
        for entry in self._connlog.entries(probe_id):
            if timeutil.month_of(entry.start) != (year, month):
                continue
            address = (entry.ipv6_address if entry.is_ipv6
                       else str(entry.address))
            lines.append("%.0f\t%.0f\t%s" % (entry.start, entry.end, address))
        return "\n".join(lines)


def scrape_probe_ids(api: AtlasApi,
                     page_size: int = DEFAULT_PAGE_SIZE) -> list[int]:
    """Walk the probe archive pagination and collect every probe id."""
    probe_ids: list[int] = []
    page: int | None = 1
    while page is not None:
        payload = api.probe_archive_page(page, page_size)
        probe_ids.extend(record["id"] for record in payload["results"])
        page = payload["next"]
    return probe_ids


def parse_history_page(probe_id: int, text: str) -> list[ConnectionLogEntry]:
    """Parse one connection-history page into entries."""
    entries: list[ConnectionLogEntry] = []
    for line_number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        fields = line.split("\t")
        if len(fields) != 3:
            raise ParseError(
                "history line %d: expected 3 fields" % line_number)
        try:
            start = float(fields[0])
            end = float(fields[1])
        except ValueError:
            raise ParseError(
                "history line %d: malformed timestamps" % line_number
            ) from None
        if ":" in fields[2]:
            entries.append(ConnectionLogEntry(probe_id, start, end, None,
                                              ipv6_address=fields[2]))
        else:
            entries.append(ConnectionLogEntry(
                probe_id, start, end, IPv4Address.parse(fields[2])))
    return entries


def scrape_connection_log(api: AtlasApi, probe_ids: Iterable[int],
                          start: float, end: float) -> ConnectionLog:
    """Fetch and reassemble connection logs for a window of months."""
    log = ConnectionLog()
    months = [(year, month) for year, month, _ in
              timeutil.iter_month_starts(start, end)]
    for probe_id in probe_ids:
        for year, month in months:
            page = api.connection_history(probe_id, year, month)
            for entry in parse_history_page(probe_id, page):
                log.add(entry)
    return log
