"""The k-root ping dataset (Section 3.4 of the paper).

Every ~4 minutes a probe sends three pings to the k-root DNS server and
reports the result together with its LTS ("last time synchronised") value.
The paper detects a *network outage* as a run of all-pings-lost rounds with
growing LTS; a *power outage* shows up as rounds missing entirely (the
probe was off) bracketing an uptime-counter reset.

Storing a year of 4-minute rounds for thousands of probes is infeasible, so
:class:`KRootSeries` stores the generative state — the power-off and
network-down interval sets — and materializes
:class:`~repro.atlas.types.KRootPingRecord` rounds on demand for any query
window.  The analysis code consumes only the materialized records, exactly
as it would consume the real dataset.
"""

from __future__ import annotations

from typing import Iterator

from repro.atlas.types import KRootPingRecord
from repro.errors import DatasetError
from repro.util.intervals import IntervalSet

#: Measurement/reporting cadence in seconds (the paper's ~4 minutes).
DEFAULT_CADENCE = 240.0

#: Baseline LTS for a healthy probe, comfortably under the 240 s bound.
HEALTHY_LTS = 120.0


class KRootSeries:
    """Generative k-root ping timeline for one probe."""

    def __init__(self, probe_id: int, observed_start: float,
                 observed_end: float,
                 power_off: IntervalSet | None = None,
                 network_down: IntervalSet | None = None,
                 cadence: float = DEFAULT_CADENCE,
                 phase: float | None = None,
                 pings_per_round: int = 3) -> None:
        if observed_end <= observed_start:
            raise DatasetError("observation window is empty")
        if cadence <= 0:
            raise DatasetError("cadence must be positive")
        self.probe_id = probe_id
        self.observed_start = observed_start
        self.observed_end = observed_end
        self.power_off = power_off or IntervalSet()
        self.network_down = network_down or IntervalSet()
        self.cadence = cadence
        # Deterministic per-probe phase so probes are not tick-aligned.
        self.phase = (probe_id * 37.0) % cadence if phase is None else phase
        self.pings_per_round = pings_per_round

    def _tick_index(self, timestamp: float) -> int:
        """Index of the last tick at or before ``timestamp``."""
        return int((timestamp - self.observed_start - self.phase)
                   // self.cadence)

    def _tick_time(self, index: int) -> float:
        return self.observed_start + self.phase + index * self.cadence

    def _record_at(self, tick: float) -> KRootPingRecord | None:
        """Materialize the round at tick time, or None while powered off."""
        if self.power_off.contains(tick):
            return None
        outage = self.network_down.at(tick)
        if outage is not None:
            # All pings lost and the probe cannot sync: LTS grows from the
            # start of the outage.
            return KRootPingRecord(
                self.probe_id, tick, self.pings_per_round, 0,
                lts=HEALTHY_LTS + (tick - outage.start),
            )
        return KRootPingRecord(
            self.probe_id, tick, self.pings_per_round, self.pings_per_round,
            lts=HEALTHY_LTS,
        )

    def records(self, window_start: float,
                window_end: float) -> list[KRootPingRecord]:
        """Materialize all rounds with tick times in the window."""
        start = max(window_start, self.observed_start)
        end = min(window_end, self.observed_end)
        if end <= start:
            return []
        first = self._tick_index(start)
        if self._tick_time(first) < start:
            first += 1
        out: list[KRootPingRecord] = []
        index = first
        while True:
            tick = self._tick_time(index)
            if tick >= end:
                break
            record = self._record_at(tick)
            if record is not None:
                out.append(record)
            index += 1
        return out

    def iter_all_records(self) -> Iterator[KRootPingRecord]:
        """Iterate every round in the observation window (small sims only)."""
        index = 0
        while True:
            tick = self._tick_time(index)
            if tick >= self.observed_end:
                return
            if tick >= self.observed_start:
                record = self._record_at(tick)
                if record is not None:
                    yield record
            index += 1

    def ping_gap_around(self, timestamp: float,
                        max_scan: int = 10_000) -> tuple[float | None, float | None]:
        """Return timestamps of the reported rounds bracketing ``timestamp``.

        The paper estimates a power outage's duration as the difference
        between the successive ping rounds around the reboot; rounds during
        the power-off window are missing, so the bracketing rounds straddle
        the outage.  Scanning is bounded by ``max_scan`` ticks each way.
        """
        base = self._tick_index(timestamp)
        previous: float | None = None
        index = base
        for _ in range(max_scan):
            tick = self._tick_time(index)
            if tick < self.observed_start:
                break
            if tick <= timestamp and not self.power_off.contains(tick):
                previous = tick
                break
            index -= 1
        following: float | None = None
        index = base + 1
        for _ in range(max_scan):
            tick = self._tick_time(index)
            if tick >= self.observed_end:
                break
            if tick > timestamp and not self.power_off.contains(tick):
                following = tick
                break
            index += 1
        return previous, following


class KRootDataset:
    """All probes' k-root series, addressable by probe id."""

    def __init__(self) -> None:
        self._series: dict[int, KRootSeries] = {}

    def add_series(self, series: KRootSeries) -> None:
        """Register a probe's series (one per probe)."""
        if series.probe_id in self._series:
            raise DatasetError("probe %d already present" % series.probe_id)
        self._series[series.probe_id] = series

    def probe_ids(self) -> list[int]:
        """All probe ids present, sorted."""
        return sorted(self._series)

    def series(self, probe_id: int) -> KRootSeries:
        """Return the series for a probe; raises when absent."""
        try:
            return self._series[probe_id]
        except KeyError:
            raise DatasetError("no k-root series for probe %d" % probe_id) from None

    def has_probe(self, probe_id: int) -> bool:
        """True when the probe has a series."""
        return probe_id in self._series

    def records(self, probe_id: int, window_start: float,
                window_end: float) -> list[KRootPingRecord]:
        """Materialized rounds for a probe inside a window."""
        return self.series(probe_id).records(window_start, window_end)
