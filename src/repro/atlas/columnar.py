"""Columnar (structure-of-arrays) views of the hot Atlas datasets.

The per-record dataclass containers (:class:`~repro.atlas.connlog
.ConnectionLog`, :class:`~repro.atlas.sosuptime.UptimeDataset`) are the
source of truth; these classes are derived, array-backed *views* the
vectorized stage kernels (:mod:`repro.core.colkernels`) operate on.
Layout is CSR-style: one row per probe in sorted-id order, with
``offsets[i]:offsets[i+1]`` slicing the flat per-entry columns.

Invariants (DESIGN.md §16):

* ``probe_ids`` is strictly increasing; ``offsets`` is non-decreasing
  with ``offsets[0] == 0`` and ``offsets[-1] == len(starts)``;
* within a probe's slice, entries keep the container's time order;
* ``addrs[k]`` is the IPv4 address as a host-order ``uint32`` and is 0
  where ``v6[k]`` is set — IPv6 payloads (textual addresses) stay in
  the record containers, the kernels only need the *flag*.

Everything here is gated on numpy being importable
(:data:`repro.util.colpack.HAVE_NUMPY`); the legacy record kernels
remain the fallback (and the differential-testing oracle).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.util import colpack
from repro.util.colpack import HAVE_NUMPY

if HAVE_NUMPY:
    import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from repro.atlas.connlog import ConnectionLog
    from repro.atlas.sosuptime import UptimeDataset


def _require_numpy() -> None:
    if not HAVE_NUMPY:
        raise RuntimeError("columnar datasets require numpy; gate callers "
                           "on repro.util.colpack.HAVE_NUMPY")


class _ProbeIndexed:
    """Shared CSR plumbing: sorted probe ids + offsets into flat columns."""

    def __init__(self, probe_ids, offsets) -> None:
        self.probe_ids = probe_ids
        self.offsets = offsets
        self._row: dict[int, int] = {
            int(pid): row for row, pid in enumerate(probe_ids.tolist())}

    def __len__(self) -> int:
        return len(self.probe_ids)

    def has_probe(self, probe_id: int) -> bool:
        return probe_id in self._row

    def slice_of(self, probe_id: int) -> tuple[int, int]:
        """``(lo, hi)`` bounds of one probe's rows in the flat columns."""
        row = self._row[probe_id]
        return int(self.offsets[row]), int(self.offsets[row + 1])


@colpack.register
class ColumnarConnlog(_ProbeIndexed):
    """Array-backed view of a :class:`ConnectionLog`."""

    __columnar__ = "connlog-columnar"

    def __init__(self, probe_ids, offsets, starts, ends, addrs, v6) -> None:
        _require_numpy()
        super().__init__(probe_ids, offsets)
        self.starts = starts
        self.ends = ends
        self.addrs = addrs
        self.v6 = v6
        self._durations = None
        self._durations_list: list[float] | None = None
        self._run_starts = None

    @classmethod
    def from_connlog(cls, connlog: "ConnectionLog") -> "ColumnarConnlog":
        """Build the columnar view (one pass over the record container)."""
        _require_numpy()
        probe_ids = connlog.probe_ids()
        offsets = [0]
        starts: list[float] = []
        ends: list[float] = []
        addrs: list[int] = []
        v6: list[int] = []
        for probe_id in probe_ids:
            for entry in connlog.entries(probe_id):
                starts.append(entry.start)
                ends.append(entry.end)
                if entry.is_ipv6:
                    addrs.append(0)
                    v6.append(1)
                else:
                    addrs.append(entry.address.value)
                    v6.append(0)
            offsets.append(len(starts))
        return cls(
            probe_ids=np.asarray(probe_ids, dtype=np.int64),
            offsets=np.asarray(offsets, dtype=np.int64),
            starts=np.asarray(starts, dtype=np.float64),
            ends=np.asarray(ends, dtype=np.float64),
            addrs=np.asarray(addrs, dtype=np.uint32),
            v6=np.asarray(v6, dtype=np.uint8))

    @property
    def entry_count(self) -> int:
        return len(self.starts)

    def durations(self):
        """Per-entry ``end - start`` (IEEE-identical to the scalar path)."""
        if self._durations is None:
            self._durations = self.ends - self.starts
        return self._durations

    def durations_list(self) -> list[float]:
        """The durations as native floats (for order-sensitive ``sum``)."""
        if self._durations_list is None:
            self._durations_list = self.durations().tolist()
        return self._durations_list

    def run_starts(self):
        """Boolean column: entry opens a new address run within its probe.

        An entry is a run start when it is the first entry of its probe
        or its address value differs from the previous entry's.  Only
        meaningful for pure-IPv4 slices (IPv6 entries share the 0
        placeholder value); the kernels consult it exclusively for
        probes that passed the dual-stack filter.
        """
        if self._run_starts is None:
            mask = np.ones(len(self.addrs), dtype=bool)
            if len(self.addrs):
                mask[1:] = self.addrs[1:] != self.addrs[:-1]
                firsts = self.offsets[:-1]
                mask[firsts[firsts < len(self.addrs)]] = True
            self._run_starts = mask
        return self._run_starts

    # -- codec ---------------------------------------------------------------

    def to_columns(self):
        return {}, {"probe_ids": self.probe_ids, "offsets": self.offsets,
                    "starts": self.starts, "ends": self.ends,
                    "addrs": self.addrs, "v6": self.v6}

    @classmethod
    def from_columns(cls, meta, columns) -> "ColumnarConnlog":
        return cls(probe_ids=columns["probe_ids"],
                   offsets=columns["offsets"],
                   starts=columns["starts"], ends=columns["ends"],
                   addrs=columns["addrs"], v6=columns["v6"])


@colpack.register
class ColumnarUptime(_ProbeIndexed):
    """Array-backed view of an :class:`UptimeDataset`."""

    __columnar__ = "uptime-columnar"

    def __init__(self, probe_ids, offsets, timestamps, uptimes) -> None:
        _require_numpy()
        super().__init__(probe_ids, offsets)
        self.timestamps = timestamps
        self.uptimes = uptimes

    @classmethod
    def from_uptime(cls, uptime: "UptimeDataset") -> "ColumnarUptime":
        _require_numpy()
        probe_ids = uptime.probe_ids()
        offsets = [0]
        timestamps: list[float] = []
        uptimes: list[float] = []
        for probe_id in probe_ids:
            for record in uptime.records(probe_id):
                timestamps.append(record.timestamp)
                uptimes.append(record.uptime)
            offsets.append(len(timestamps))
        return cls(
            probe_ids=np.asarray(probe_ids, dtype=np.int64),
            offsets=np.asarray(offsets, dtype=np.int64),
            timestamps=np.asarray(timestamps, dtype=np.float64),
            uptimes=np.asarray(uptimes, dtype=np.float64))

    def to_columns(self):
        return {}, {"probe_ids": self.probe_ids, "offsets": self.offsets,
                    "timestamps": self.timestamps, "uptimes": self.uptimes}

    @classmethod
    def from_columns(cls, meta, columns) -> "ColumnarUptime":
        return cls(probe_ids=columns["probe_ids"],
                   offsets=columns["offsets"],
                   timestamps=columns["timestamps"],
                   uptimes=columns["uptimes"])
