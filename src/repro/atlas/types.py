"""Record types for the three RIPE Atlas datasets the paper uses.

Connection-log entries (Section 3.1), k-root ping records (Section 3.4) and
SOS-uptime records (Section 3.5) are plain frozen dataclasses; the dataset
containers in sibling modules enforce ordering and provide queries.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import ParseError
from repro.net.ipv4 import IPv4Address


class ProbeVersion(enum.Enum):
    """RIPE Atlas probe hardware versions.

    v1/v2 probes are vulnerable to memory fragmentation and may reboot when
    they create new TCP connections (Section 5.1), so the paper discards
    them from power-outage analysis; v3 is the ~75% majority.
    """

    V1 = 1
    V2 = 2
    V3 = 3


#: Probe tags the paper filters on (Section 3.2).
FILTERED_TAGS = frozenset({"multihomed", "datacentre", "core"})


@dataclass(frozen=True)
class ConnectionLogEntry:
    """One TCP connection from a probe to its central controller.

    ``address`` is the publicly visible peer address (the CPE's address).
    Dual-stack probes sometimes connect over IPv6; those entries carry
    ``ipv6_address`` text instead of an IPv4 ``address``.
    """

    probe_id: int
    start: float
    end: float
    address: IPv4Address | None
    ipv6_address: str | None = None

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ParseError(
                "connection for probe %d ends before it starts" % self.probe_id
            )
        if (self.address is None) == (self.ipv6_address is None):
            raise ParseError(
                "entry must carry exactly one of IPv4 or IPv6 address"
            )

    @property
    def is_ipv6(self) -> bool:
        """True for connections made over IPv6."""
        return self.ipv6_address is not None

    @property
    def duration(self) -> float:
        """Length of the connection in seconds."""
        return self.end - self.start


@dataclass(frozen=True)
class KRootPingRecord:
    """One built-in measurement round: pings to the k-root DNS server.

    ``lts`` is the probe's "last time synchronised" in seconds; in healthy
    operation it stays below ~240 s (the reporting interval).
    """

    probe_id: int
    timestamp: float
    sent: int
    success: int
    lts: float

    def __post_init__(self) -> None:
        if not 0 <= self.success <= self.sent:
            raise ParseError(
                "ping record success %d outside 0..%d" % (self.success, self.sent)
            )
        if self.lts < 0:
            raise ParseError("negative LTS %r" % (self.lts,))

    @property
    def all_lost(self) -> bool:
        """True when every ping in the round was lost."""
        return self.sent > 0 and self.success == 0


@dataclass(frozen=True)
class UptimeRecord:
    """One SOS-uptime report: seconds since the probe last booted."""

    probe_id: int
    timestamp: float
    uptime: float

    def __post_init__(self) -> None:
        if self.uptime < 0:
            raise ParseError("negative uptime %r" % (self.uptime,))

    @property
    def boot_time(self) -> float:
        """The boot instant implied by the counter value."""
        return self.timestamp - self.uptime


@dataclass(frozen=True)
class ProbeMeta:
    """Probe metadata from the (simulated) RIPE Atlas probe archive."""

    probe_id: int
    country: str
    continent: str
    version: ProbeVersion = ProbeVersion.V3
    tags: tuple[str, ...] = field(default=())

    def __post_init__(self) -> None:
        if len(self.country) != 2 or not self.country.isupper():
            raise ParseError(
                "country must be an ISO 3166 alpha-2 code, got %r"
                % (self.country,)
            )

    @property
    def has_filtered_tag(self) -> bool:
        """True when tagged multihomed / datacentre / core (Section 3.2)."""
        return any(tag in FILTERED_TAGS for tag in self.tags)
